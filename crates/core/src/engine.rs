//! The Digest engine: scheduler × estimator × sampling operator.
//!
//! Each node runs its own engine instance per continuous query (paper
//! §III, Figure 2). Per tick the engine either *holds* the running result
//! (zero cost) or — when the scheduler says the aggregate may have drifted
//! by `δ` — executes a snapshot query through its estimator, refreshes the
//! result, and asks the scheduler for the next occasion.
//!
//! `SUM` and `COUNT` scale the sampled `AVG` by a relation-size estimate
//! `N̂` obtained with the capture–recapture machinery over uniform node
//! samples (drawn by a second, uniform-weight instance of the sampling
//! operator), refreshed periodically; the extra estimator variance is the
//! price of the unstructured setting, where nobody knows `N`.

use crate::indep::IndependentEstimator;
use crate::query::{AggregateOp, ContinuousQuery};
use crate::rpt::{RepeatedEstimator, RptConfig};
use crate::scheduler::{AllScheduler, PredScheduler, SnapshotScheduler};
use crate::system::{QuerySystem, TickContext, TickOutcome};
use crate::Result;
use digest_sampling::{uniform_weight, SamplingConfig, SamplingOperator, SizeEstimator};
use digest_telemetry::{registry as telemetry, Field, Stage};
use rand::RngCore;

/// Which continual-querying policy to run (paper §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Snapshot every tick (`ALL`).
    All,
    /// Taylor extrapolation over the last `k` results (`PRED-k`).
    Pred(usize),
}

/// Which approximate-querying policy to run (paper §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    /// Fresh CLT-sized panel every occasion (`INDEP`).
    Independent,
    /// Retained panel + regression estimation (`RPT`).
    Repeated,
}

/// Engine configuration: the scheduler × estimator pairing of paper §III,
/// Figure 2.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// The continual-querying policy.
    pub scheduler: SchedulerKind,
    /// The approximate-querying policy.
    pub estimator: EstimatorKind,
    /// Bottom-tier sampling operator tuning.
    pub sampling: SamplingConfig,
    /// Estimator tuning (pilot sizes, caps, revisit costs).
    pub rpt: RptConfig,
    /// For `SUM`/`COUNT`: snapshots between relation-size refreshes.
    pub size_refresh_interval: u64,
    /// For `SUM`/`COUNT`: uniform node samples per size estimation round.
    pub size_sample_target: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            scheduler: SchedulerKind::Pred(3),
            estimator: EstimatorKind::Repeated,
            sampling: SamplingConfig::default(),
            rpt: RptConfig::default(),
            size_refresh_interval: 10,
            size_sample_target: 256,
        }
    }
}

enum EstimatorImpl {
    Indep(IndependentEstimator),
    Rpt(RepeatedEstimator),
    /// `MEDIAN` queries ignore the configured estimator kind: regression
    /// estimation corrects means, not order statistics.
    Quantile(crate::quantile_est::QuantileEstimator),
    /// Sketch-served kinds (`PERCENTILE`/`COUNT DISTINCT`/`TOPK`) sweep
    /// per-node mergeable sketches instead of sampling (DESIGN.md §17).
    Sketch(crate::sketch_est::SketchSweepEstimator),
}

/// The Digest query engine for one continuous query (paper §III,
/// Figure 2: scheduler + estimator + sampling operator on one node).
pub struct DigestEngine {
    query: ContinuousQuery,
    config: EngineConfig,
    name: String,
    scheduler: Box<dyn SnapshotScheduler + Send>,
    estimator: EstimatorImpl,
    operator: SamplingOperator,
    /// Dedicated uniform-weight operator for size estimation, so the main
    /// operator's persistent content-weighted walk is not disturbed.
    size_operator: SamplingOperator,

    started: bool,
    next_snapshot_tick: u64,
    /// Causal trace id of the current reporting occasion (0 before the
    /// first snapshot). Allocated from the deterministic global counter
    /// at each occasion start so every telemetry event downstream of the
    /// scheduler decision carries the same id.
    trace: u64,
    current_estimate: f64,
    last_reported: f64,
    size_estimate: Option<f64>,
    snapshots_since_size_refresh: u64,
    /// Exponentially decayed (qualifying, drawn) fresh-sample counts for a
    /// stable selectivity estimate across occasions — one occasion's few
    /// fresh draws are far too noisy to scale COUNT/SUM by.
    selectivity_counts: (f64, f64),

    total_messages: u64,
    total_samples: u64,
    total_fresh_samples: u64,
    total_snapshots: u64,
}

impl std::fmt::Debug for DigestEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DigestEngine")
            .field("name", &self.name)
            .field("query", &self.query.to_string())
            .field("snapshots", &self.total_snapshots)
            .finish_non_exhaustive()
    }
}

impl DigestEngine {
    /// Builds an engine for `query`.
    ///
    /// # Errors
    ///
    /// [`crate::CoreError::InvalidConfig`] for invalid scheduler/
    /// estimator/sampling settings.
    pub fn new(query: ContinuousQuery, config: EngineConfig) -> Result<Self> {
        let scheduler: Box<dyn SnapshotScheduler + Send> = match config.scheduler {
            SchedulerKind::All => Box::new(AllScheduler::new()),
            SchedulerKind::Pred(k) => Box::new(PredScheduler::new(k)?),
        };
        let estimator = if query.op.is_sketch() {
            EstimatorImpl::Sketch(crate::sketch_est::SketchSweepEstimator::for_query(&query)?)
        } else if matches!(query.op, AggregateOp::Median) {
            EstimatorImpl::Quantile(crate::quantile_est::QuantileEstimator::new(
                0.5,
                config.rpt.pilot_size.max(2),
                config.rpt.max_samples,
            )?)
        } else {
            match config.estimator {
                EstimatorKind::Independent => EstimatorImpl::Indep(IndependentEstimator::new(
                    config.rpt.pilot_size,
                    config.rpt.max_samples,
                    false,
                )?),
                EstimatorKind::Repeated => EstimatorImpl::Rpt(RepeatedEstimator::new(config.rpt)?),
            }
        };
        let operator = SamplingOperator::new(config.sampling)?;
        // Size estimation targets the *uniform* node distribution, which
        // the Metropolis walk reaches more slowly than the content-biased
        // one on skewed topologies — and capture–recapture is biased (it
        // over-counts collisions, under-estimating N̂) if the walks are
        // under-mixed. Give the size walks 4× the budget.
        let size_operator = SamplingOperator::new(SamplingConfig {
            walk_length: config.sampling.walk_length.saturating_mul(4),
            reset_length: config.sampling.reset_length.saturating_mul(2),
            ..config.sampling
        })?;
        let est_name = match &estimator {
            EstimatorImpl::Sketch(s) => s.name(),
            EstimatorImpl::Quantile(_) => "QUANTILE",
            EstimatorImpl::Indep(_) => "INDEP",
            EstimatorImpl::Rpt(_) => "RPT",
        };
        let name = format!("{}+{}", scheduler.name(), est_name);
        Ok(Self {
            query,
            config,
            name,
            scheduler,
            estimator,
            operator,
            size_operator,
            started: false,
            next_snapshot_tick: 0,
            trace: 0,
            current_estimate: 0.0,
            last_reported: f64::NAN,
            size_estimate: None,
            snapshots_since_size_refresh: 0,
            selectivity_counts: (0.0, 0.0),
            total_messages: 0,
            total_samples: 0,
            total_fresh_samples: 0,
            total_snapshots: 0,
        })
    }

    /// The query this engine answers.
    #[must_use]
    pub fn query(&self) -> &ContinuousQuery {
        &self.query
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The most recent relation-size estimate `N̂` (only maintained for
    /// `SUM`/`COUNT` queries).
    #[must_use]
    pub fn size_estimate(&self) -> Option<f64> {
        self.size_estimate
    }

    /// Runs one size-estimation round: uniform node samples until the
    /// capture–recapture estimator stabilises or the sample budget is
    /// spent. Returns messages used.
    fn refresh_size_estimate(
        &mut self,
        ctx: &TickContext<'_>,
        rng: &mut dyn RngCore,
    ) -> Result<u64> {
        let _span = digest_telemetry::span(Stage::SizeEstimate);
        telemetry::CORE_SIZE_REFRESHES.inc();
        let mut est = SizeEstimator::new();
        let mut messages = 0u64;
        let w = uniform_weight();
        self.size_operator.begin_occasion();
        for _ in 0..self.config.size_sample_target {
            let (node, cost) = self
                .size_operator
                .sample_node(ctx.graph, &w, ctx.origin, rng)?;
            messages += cost.total();
            est.add_sample(node, ctx.db.content_size(node));
            // Enough collisions for a stable estimate → stop early.
            // (var(r̂)/r̂² ≈ 1/C, so C = 32 gives ~18 % relative error.)
            if est.collisions() >= 32 {
                break;
            }
        }
        if let Ok(n_hat) = est.estimate_tuple_count() {
            // Blend with the previous estimate: capture–recapture rounds
            // are noisy (relative error ~1/√C) but the relation size moves
            // slowly, so averaging across refreshes pays off.
            self.size_estimate = Some(match self.size_estimate {
                Some(old) => old + 0.5 * (n_hat - old),
                None => n_hat,
            });
        } else if self.size_estimate.is_none() {
            // Too few collisions (network larger than the budget can
            // resolve): fall back to distinct·mean as a floor estimate.
            let mean_content = if est.samples() > 0 {
                est.distinct() as f64
            } else {
                0.0
            };
            self.size_estimate = Some(mean_content.max(1.0));
        }
        self.snapshots_since_size_refresh = 0;
        Ok(messages)
    }

    /// Scales the sampled AVG into the query's aggregate.
    /// Folds one occasion's fresh-draw counts into the decayed selectivity
    /// tally and returns the smoothed selectivity.
    fn update_selectivity(&mut self, qualifying: f64, drawn: f64) -> f64 {
        const DECAY: f64 = 0.75;
        let (q, d) = self.selectivity_counts;
        self.selectivity_counts = (q * DECAY + qualifying, d * DECAY + drawn);
        let (q, d) = self.selectivity_counts;
        if d > 0.0 {
            q / d
        } else {
            1.0
        }
    }

    /// Scales the sampled qualifying-AVG into the query's aggregate.
    /// With a `WHERE` predicate, `SUM`/`COUNT` additionally scale by the
    /// measured selectivity: the qualifying population is `N̂ · sel`.
    fn scale(&self, avg: f64, selectivity: f64) -> f64 {
        match self.query.op {
            // Sketch kinds finalize to their scalar directly — no
            // scaling by N̂ (DESIGN.md §17).
            AggregateOp::Avg
            | AggregateOp::Median
            | AggregateOp::Percentile { .. }
            | AggregateOp::Distinct
            | AggregateOp::TopK { .. } => avg,
            AggregateOp::Sum => avg * selectivity * self.size_estimate.unwrap_or(0.0),
            AggregateOp::Count => selectivity * self.size_estimate.unwrap_or(0.0),
        }
    }
}

impl QuerySystem for DigestEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_due(&mut self, now: u64) -> Option<u64> {
        // Before the first snapshot the engine fires on its next tick
        // (dense); afterwards every tick below `next_snapshot_tick` is
        // the idle early-return in `on_tick` — no samples, no RNG — so
        // the event-driven runner may jump straight to the deadline.
        if self.started && self.next_snapshot_tick > now {
            Some(self.next_snapshot_tick)
        } else {
            None
        }
    }

    fn on_tick(&mut self, ctx: &TickContext<'_>, rng: &mut dyn RngCore) -> Result<TickOutcome> {
        // Keep the telemetry clock in sync even when the engine is driven
        // directly (unit tests, library embedding) rather than by a
        // tick-stamping driver.
        digest_telemetry::set_tick(ctx.tick);
        if self.started && ctx.tick < self.next_snapshot_tick {
            return Ok(TickOutcome::idle(self.current_estimate));
        }

        // --- Execute a snapshot query. ---
        // A new reporting occasion begins: allocate its causal trace id so
        // every event from the scheduler decision through snapshot, walk
        // batches, estimate, and report carries the same envelope. The
        // counter is bumped in deterministic engine order regardless of
        // telemetry enablement or worker count, so tracing never perturbs
        // a replay.
        self.trace = digest_telemetry::begin_trace();
        let _tick_span = digest_telemetry::span(Stage::EngineTick);
        let mut messages = 0u64;

        // Relation size, if the aggregate needs it. Sketch sweeps never
        // do: their scalar needs no N̂ scaling (DESIGN.md §17), and a
        // capture–recapture round would cost messages and RNG draws for
        // nothing.
        if !matches!(self.query.op, AggregateOp::Avg)
            && !self.query.op.is_sketch()
            && (self.size_estimate.is_none()
                || self.snapshots_since_size_refresh >= self.config.size_refresh_interval)
        {
            messages += self.refresh_size_estimate(ctx, rng)?;
        }

        // Sketch-served kinds bypass the sampling estimators entirely:
        // one deterministic sweep over the overlay (DESIGN.md §17).
        if let EstimatorImpl::Sketch(est) = &mut self.estimator {
            let eval_span = digest_telemetry::span(Stage::EstimatorEval);
            let sweep = est.sweep(ctx.db, &self.query.expr, &self.query.predicate)?;
            drop(eval_span);
            messages += sweep.messages;
            let Some(scaled) = sweep.estimate else {
                // Nothing qualified (e.g. quantile over an empty set):
                // hold the current result and retry next tick.
                self.next_snapshot_tick = ctx.tick + 1;
                self.total_messages += messages;
                self.total_snapshots += 1;
                return Ok(TickOutcome {
                    estimate: self.current_estimate,
                    updated: false,
                    snapshot_executed: true,
                    samples_this_tick: 0,
                    fresh_samples_this_tick: 0,
                    messages_this_tick: messages,
                });
            };
            self.current_estimate = scaled;
            self.started = true;
            let updated = self.last_reported.is_nan()
                || (scaled - self.last_reported).abs() >= self.query.precision.delta;
            if updated {
                self.last_reported = scaled;
            }
            self.scheduler.observe(ctx.tick as f64, scaled);
            let delay = {
                let _span = digest_telemetry::span(Stage::SchedulerDecide);
                self.scheduler.next_delay(self.query.precision.delta)?
            };
            self.next_snapshot_tick = ctx.tick + delay;
            self.total_messages += messages;
            self.total_samples += sweep.qualifying;
            self.total_fresh_samples += sweep.fresh_nodes;
            self.total_snapshots += 1;
            telemetry::CORE_ENGINE_SNAPSHOTS.inc();
            telemetry::CORE_ENGINE_MESSAGES.add(messages);
            telemetry::CORE_ENGINE_SAMPLES.add(sweep.qualifying);
            if digest_telemetry::events_enabled() {
                digest_telemetry::emit(
                    "engine.snapshot",
                    &[
                        ("system", Field::Str(&self.name)),
                        ("estimate", Field::F64(scaled)),
                        ("messages", Field::U64(messages)),
                        ("samples", Field::U64(sweep.qualifying)),
                    ],
                );
            }
            return Ok(TickOutcome {
                estimate: scaled,
                updated,
                snapshot_executed: true,
                samples_this_tick: sweep.qualifying,
                fresh_samples_this_tick: sweep.fresh_nodes,
                messages_this_tick: messages,
            });
        }

        let eval_span = digest_telemetry::span(Stage::EstimatorEval);
        let evaluated = match &mut self.estimator {
            EstimatorImpl::Indep(e) => e.evaluate(
                ctx,
                &self.query.expr,
                &self.query.predicate,
                &self.query.precision,
                &mut self.operator,
                rng,
            ),
            EstimatorImpl::Rpt(e) => e.evaluate(
                ctx,
                &self.query.expr,
                &self.query.predicate,
                &self.query.precision,
                &mut self.operator,
                rng,
            ),
            EstimatorImpl::Quantile(e) => e.evaluate(
                ctx,
                &self.query.expr,
                &self.query.predicate,
                &self.query.precision,
                &mut self.operator,
                rng,
            ),
            // Handled by the early-return sweep path above.
            EstimatorImpl::Sketch(_) => Err(crate::error::CoreError::InvalidConfig {
                reason: "sketch estimators take the sweep path",
            }),
        };
        drop(eval_span);
        let snapshot = match evaluated {
            Ok(snapshot) => snapshot,
            // A transiently empty relation (every content-bearing node
            // left at once) is a live condition, not a programming error:
            // hold the current result and retry next tick.
            Err(crate::error::CoreError::Sampling(
                digest_sampling::SamplingError::EmptyDatabase,
            )) => {
                self.next_snapshot_tick = ctx.tick + 1;
                self.total_messages += messages;
                self.total_snapshots += 1;
                return Ok(TickOutcome {
                    estimate: self.current_estimate,
                    updated: false,
                    snapshot_executed: true,
                    samples_this_tick: 0,
                    fresh_samples_this_tick: 0,
                    messages_this_tick: messages,
                });
            }
            Err(other) => return Err(other),
        };
        messages += snapshot.messages;

        // A nontrivial predicate can transiently match nothing; hold the
        // previous result rather than reporting a meaningless mean, but
        // still count the probe (COUNT/SUM legitimately report 0).
        if snapshot.qualifying_samples == 0
            && !self.query.predicate.is_trivial()
            && matches!(self.query.op, AggregateOp::Avg)
            && self.started
        {
            self.scheduler
                .observe(ctx.tick as f64, self.current_estimate);
            let delay = self.scheduler.next_delay(self.query.precision.delta)?;
            self.next_snapshot_tick = ctx.tick + delay;
            self.total_messages += messages;
            self.total_samples += snapshot.total_samples();
            self.total_fresh_samples += snapshot.fresh_samples;
            self.total_snapshots += 1;
            return Ok(TickOutcome {
                estimate: self.current_estimate,
                updated: false,
                snapshot_executed: true,
                samples_this_tick: snapshot.total_samples(),
                fresh_samples_this_tick: snapshot.fresh_samples,
                messages_this_tick: messages,
            });
        }

        let selectivity = if self.query.predicate.is_trivial() {
            1.0
        } else {
            self.update_selectivity(
                snapshot.selectivity * snapshot.fresh_samples as f64,
                snapshot.fresh_samples as f64,
            )
        };
        let scaled = self.scale(snapshot.estimate, selectivity);
        self.current_estimate = scaled;
        self.started = true;
        self.snapshots_since_size_refresh += 1;

        // δ-semantics: the user-visible result updates only when the
        // aggregate moved at least δ since the last reported update.
        let updated = self.last_reported.is_nan()
            || (scaled - self.last_reported).abs() >= self.query.precision.delta;
        if updated {
            self.last_reported = scaled;
        }

        // Schedule the next occasion.
        self.scheduler.observe(ctx.tick as f64, scaled);
        let delay = {
            let _span = digest_telemetry::span(Stage::SchedulerDecide);
            self.scheduler.next_delay(self.query.precision.delta)?
        };
        self.next_snapshot_tick = ctx.tick + delay;

        let samples = snapshot.total_samples();
        self.total_messages += messages;
        self.total_samples += samples;
        self.total_fresh_samples += snapshot.fresh_samples;
        self.total_snapshots += 1;

        telemetry::CORE_ENGINE_SNAPSHOTS.inc();
        telemetry::CORE_ENGINE_MESSAGES.add(messages);
        telemetry::CORE_ENGINE_SAMPLES.add(samples);
        if digest_telemetry::events_enabled() {
            digest_telemetry::emit(
                "engine.snapshot",
                &[
                    ("system", Field::Str(&self.name)),
                    ("estimate", Field::F64(scaled)),
                    ("messages", Field::U64(messages)),
                    ("samples", Field::U64(samples)),
                ],
            );
        }

        Ok(TickOutcome {
            estimate: scaled,
            updated,
            snapshot_executed: true,
            samples_this_tick: samples,
            fresh_samples_this_tick: snapshot.fresh_samples,
            messages_this_tick: messages,
        })
    }

    fn total_messages(&self) -> u64 {
        self.total_messages
    }

    fn set_sampling_workers(&mut self, workers: usize) {
        self.config.sampling.workers = workers;
        self.operator.set_workers(workers);
        self.size_operator.set_workers(workers);
    }

    fn total_samples(&self) -> u64 {
        self.total_samples
    }

    fn total_snapshots(&self) -> u64 {
        self.total_snapshots
    }

    fn oracle_truth(&self, ctx: &TickContext<'_>) -> Option<f64> {
        self.query.oracle(ctx.db)
    }

    fn trace_id(&self) -> u64 {
        self.trace
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use crate::query::Precision;
    use digest_db::{Expr, P2PDatabase, Schema, Tuple, TupleHandle};
    use digest_net::{topology, Graph, NodeId};
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    struct World {
        graph: Graph,
        db: P2PDatabase,
        handles: Vec<TupleHandle>,
    }

    fn world(seed: u64) -> World {
        let graph = topology::complete(8).unwrap();
        let mut db = P2PDatabase::new(Schema::single("a"));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut handles = Vec::new();
        for v in 0..8 {
            db.register_node(NodeId(v));
            for _ in 0..25 {
                let value = 50.0 + rng.gen_range(-8.0..8.0);
                handles.push(db.insert(NodeId(v), Tuple::single(value)).unwrap());
            }
        }
        World { graph, db, handles }
    }

    fn avg_query(delta: f64, eps: f64) -> ContinuousQuery {
        let schema = Schema::single("a");
        ContinuousQuery::avg(
            Expr::first_attr(&schema),
            Precision::new(delta, eps, 0.95).unwrap(),
        )
    }

    fn drift(w: &mut World, shift: f64) {
        for &h in &w.handles {
            let x = w.db.read(h).unwrap().value(0).unwrap();
            w.db.update(h, &[x + shift]).unwrap();
        }
    }

    #[test]
    fn engine_name_reflects_configuration() {
        let q = avg_query(2.0, 2.0);
        let e = DigestEngine::new(
            q.clone(),
            EngineConfig {
                scheduler: SchedulerKind::Pred(3),
                estimator: EstimatorKind::Repeated,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(e.name(), "PRED3+RPT");
        let e = DigestEngine::new(
            q,
            EngineConfig {
                scheduler: SchedulerKind::All,
                estimator: EstimatorKind::Independent,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(e.name(), "ALL+INDEP");
    }

    #[test]
    fn all_scheduler_snapshots_every_tick() {
        let w = world(1);
        let mut engine = DigestEngine::new(
            avg_query(2.0, 2.0),
            EngineConfig {
                scheduler: SchedulerKind::All,
                estimator: EstimatorKind::Independent,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for t in 0..5 {
            let ctx = TickContext {
                tick: t,
                graph: &w.graph,
                db: &w.db,
                origin: NodeId(0),
            };
            let o = engine.on_tick(&ctx, &mut rng).unwrap();
            assert!(o.snapshot_executed, "tick {t}");
        }
        assert_eq!(engine.total_snapshots(), 5);
    }

    #[test]
    fn pred_scheduler_skips_ticks_on_steady_aggregate() {
        let w = world(3);
        let mut engine = DigestEngine::new(
            avg_query(4.0, 1.0),
            EngineConfig {
                scheduler: SchedulerKind::Pred(3),
                estimator: EstimatorKind::Repeated,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut snapshots = 0;
        let ticks = 40;
        for t in 0..ticks {
            let ctx = TickContext {
                tick: t,
                graph: &w.graph,
                db: &w.db,
                origin: NodeId(0),
            };
            if engine.on_tick(&ctx, &mut rng).unwrap().snapshot_executed {
                snapshots += 1;
            }
        }
        assert!(
            snapshots < ticks / 2,
            "steady aggregate should skip most ticks: {snapshots}/{ticks}"
        );
    }

    #[test]
    fn estimate_tracks_truth_and_updates_on_delta() {
        let mut w = world(5);
        let mut engine = DigestEngine::new(
            avg_query(3.0, 1.0),
            EngineConfig {
                scheduler: SchedulerKind::All,
                estimator: EstimatorKind::Repeated,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let expr = Expr::first_attr(w.db.schema());

        // First few ticks: steady.
        let mut updates = 0;
        for t in 0..3 {
            let ctx = TickContext {
                tick: t,
                graph: &w.graph,
                db: &w.db,
                origin: NodeId(0),
            };
            let o = engine.on_tick(&ctx, &mut rng).unwrap();
            if o.updated {
                updates += 1;
            }
            let truth = w.db.exact_avg(&expr).unwrap();
            assert!(
                (o.estimate - truth).abs() < 1.5,
                "estimate off: {} vs {truth}",
                o.estimate
            );
        }
        assert_eq!(updates, 1, "only the initial report before any drift");

        // Shift everything by 2δ: the next snapshot must report an update.
        drift(&mut w, 6.0);
        let ctx = TickContext {
            tick: 3,
            graph: &w.graph,
            db: &w.db,
            origin: NodeId(0),
        };
        let o = engine.on_tick(&ctx, &mut rng).unwrap();
        assert!(o.updated, "a 2δ jump must be reported");
    }

    #[test]
    fn sum_query_scales_by_size_estimate() {
        let w = world(7);
        let schema = Schema::single("a");
        let q = ContinuousQuery::new(
            AggregateOp::Sum,
            Expr::first_attr(&schema),
            Precision::new(500.0, 200.0, 0.95).unwrap(),
        );
        let mut engine = DigestEngine::new(
            q,
            EngineConfig {
                scheduler: SchedulerKind::All,
                estimator: EstimatorKind::Independent,
                size_sample_target: 2000,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let ctx = TickContext {
            tick: 0,
            graph: &w.graph,
            db: &w.db,
            origin: NodeId(0),
        };
        let o = engine.on_tick(&ctx, &mut rng).unwrap();
        let expr = Expr::first_attr(w.db.schema());
        let truth = w.db.exact_sum(&expr).unwrap();
        // Size estimation is rough (200 tuples, capture–recapture): accept
        // a generous band but demand the right order of magnitude.
        assert!(
            (o.estimate - truth).abs() / truth < 0.5,
            "SUM estimate {} vs truth {truth}",
            o.estimate
        );
        assert!(engine.size_estimate().is_some());
    }

    #[test]
    fn count_query_returns_size_estimate() {
        let w = world(9);
        let schema = Schema::single("a");
        let q = ContinuousQuery::new(
            AggregateOp::Count,
            Expr::first_attr(&schema),
            Precision::new(50.0, 30.0, 0.95).unwrap(),
        );
        let mut engine = DigestEngine::new(
            q,
            EngineConfig {
                scheduler: SchedulerKind::All,
                estimator: EstimatorKind::Independent,
                size_sample_target: 2000,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let ctx = TickContext {
            tick: 0,
            graph: &w.graph,
            db: &w.db,
            origin: NodeId(0),
        };
        let o = engine.on_tick(&ctx, &mut rng).unwrap();
        let truth = w.db.exact_count() as f64;
        assert!(
            (o.estimate - truth).abs() / truth < 0.5,
            "COUNT estimate {} vs truth {truth}",
            o.estimate
        );
    }

    #[test]
    fn idle_ticks_cost_nothing() {
        let w = world(11);
        let mut engine = DigestEngine::new(
            avg_query(8.0, 2.0),
            EngineConfig {
                scheduler: SchedulerKind::Pred(2),
                estimator: EstimatorKind::Repeated,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let mut idle_seen = false;
        for t in 0..20 {
            let ctx = TickContext {
                tick: t,
                graph: &w.graph,
                db: &w.db,
                origin: NodeId(0),
            };
            let o = engine.on_tick(&ctx, &mut rng).unwrap();
            if !o.snapshot_executed {
                idle_seen = true;
                assert_eq!(o.messages_this_tick, 0);
                assert_eq!(o.samples_this_tick, 0);
            }
        }
        assert!(idle_seen, "a steady run should have idle ticks");
    }
}
