//! `QueryMux` — serving many continuous queries from one overlay.
//!
//! The paper prices a *single* `(δ, ε, p)` contract in messages per
//! guarantee (§VI); this module amortises that price across N concurrent
//! contracts. Two observations make the amortisation sound:
//!
//! 1. **Panels are expression-agnostic.** The two-stage sampling operator
//!    (§V) draws node `v` with probability proportional to its content
//!    size `m_v` and then a uniform local tuple, which is uniform over
//!    *tuples* regardless of the aggregated expression or predicate. One
//!    drawn panel therefore serves every registered query whose target
//!    distribution coincides — captured by [`PanelKey`].
//! 2. **PRED-k deadlines coalesce.** Each query's extrapolating scheduler
//!    (§IV-A) produces a next-occasion deadline; the [`RoundPlanner`]
//!    fires a *round* at the earliest member deadline, pulls in queries
//!    due within a small horizon, and — because reading an already-paid
//!    panel costs zero extra messages — lets every other compatible query
//!    piggyback on the round for free.
//!
//! Each round draws one CLT-sized batch (Eq. 6 per member, sized at the
//! maximum member requirement) through the parallel executor — one
//! occasion seed, one join — then every member consumes the shared panel,
//! applies its own predicate, δ-semantics, and scheduling, and receives
//! its own causal trace id parented to the round's.
//!
//! With sharing disabled the mux degrades to N independent
//! [`DigestEngine`]s driven in registration order — byte-identical to
//! running the engines standalone, which `tests/mux_equivalence.rs` pins.

use crate::engine::{DigestEngine, EngineConfig, EstimatorKind, SchedulerKind};
use crate::query::{AggregateOp, ContinuousQuery};
use crate::rpt::RptConfig;
use crate::scheduler::{AllScheduler, PredScheduler, SnapshotScheduler};
use crate::sketch_est::SketchSweepEstimator;
use crate::system::{QuerySystem, TickContext, TickOutcome};
use crate::Result;
use digest_sampling::{uniform_weight, SamplingConfig, SamplingOperator, SizeEstimator};
use digest_stats::{required_sample_size, RunningMoments};
use digest_telemetry::{Field, Stage};
use rand::RngCore;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Smoothing factor for the per-query decayed selectivity tally (same
/// role as the engine's; keeps COUNT/SUM scaling stable across the few
/// fresh draws of one occasion — §IV-B).
const SELECTIVITY_DECAY: f64 = 0.75;

/// Floor on the smoothed selectivity used to convert a qualifying-sample
/// deficit into a draw request (Eq. 6 sizing counts *qualifying*
/// samples); bounds the rejection-sampling inflation at 8×.
const SELECTIVITY_FLOOR: f64 = 0.125;

/// Whether a shared-mode member is served by the per-member node sweep
/// (DESIGN.md §17) instead of the shared CLT-sized tuple panel (Eq. 6).
/// `MEDIAN` joins the sweep family here: order statistics cannot reuse
/// the shared CLT sizing, but the mergeable UDDSketch sweep answers them
/// at rank 0.5 (in unshared mode `MEDIAN` keeps its standalone
/// [`crate::QuantileEstimator`] engine, byte-identical to before).
fn sweep_served(op: &AggregateOp) -> bool {
    op.is_sketch() || matches!(op, AggregateOp::Median)
}

/// The sampling weight a panel was drawn under — stage one of the
/// two-stage operator (§V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PanelWeight {
    /// Node `v` with probability `∝ m_v`, then a uniform local tuple:
    /// uniform over tuples (§V) — the distribution every tuple-expression
    /// aggregate consumes.
    ContentSize,
    /// Uniform over *nodes* — the distribution capture–recapture size
    /// estimation consumes (§V-B); never interchangeable with tuple
    /// panels.
    UniformNode,
    /// An ascending sweep of every live node with fingerprint-validated
    /// retained members (DESIGN.md §17): the deterministic "panel" the
    /// sketch kinds consume. It is not a sample from any distribution,
    /// so it is never interchangeable with sampled panels.
    NodeSweep,
}

/// Identifies the target distribution of a sample panel (§V): two queries
/// may share a panel iff their keys are equal. Key equality is an
/// equivalence relation (reflexive, symmetric, transitive) — pinned by
/// property tests — because a panel drawn from one target distribution is
/// a valid i.i.d. sample for exactly the queries that need that same
/// distribution, irrespective of their expressions or predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PanelKey {
    /// The stage-one sampling weight of the panel's target distribution.
    pub weight: PanelWeight,
}

impl PanelKey {
    /// The key of the panel `query`'s estimator consumes. Every
    /// *mean-like* aggregate over tuple expressions — `AVG`, `SUM`,
    /// `COUNT`, `MEDIAN`, with or without predicates — consumes the
    /// uniform-over-tuples distribution of the two-stage operator (§V),
    /// so those queries map to the same key and may share panels. The
    /// sketch kinds (`PERCENTILE`/`COUNT DISTINCT`/`TOPK` — DESIGN.md
    /// §17) consume deterministic node sweeps instead and never share
    /// with sampled panels.
    #[must_use]
    pub fn for_query(query: &ContinuousQuery) -> Self {
        if query.op.is_sketch() {
            Self {
                weight: PanelWeight::NodeSweep,
            }
        } else {
            Self {
                weight: PanelWeight::ContentSize,
            }
        }
    }

    /// The key of relation-size estimation panels (§V-B): uniform node
    /// samples, deliberately distinct from every tuple-panel key.
    #[must_use]
    pub fn size_estimation() -> Self {
        Self {
            weight: PanelWeight::UniformNode,
        }
    }

    /// Whether two panels are interchangeable — identical target
    /// distributions (§V). Equivalent to `self == other`.
    #[must_use]
    pub fn shares_panel(&self, other: &Self) -> bool {
        self == other
    }
}

/// The membership of one coalesced sampling round (§IV-A deadlines over
/// N queries): queries at or past their deadline, plus queries pulled in
/// early because their deadline falls within the coalescing horizon.
#[derive(Debug, Clone, Default)]
pub struct RoundPlan {
    /// Queries whose deadline is `≤` the round tick (must fire now).
    pub due: Vec<u64>,
    /// Queries pulled forward: deadline within `(tick, tick + horizon]`.
    pub pulled: Vec<u64>,
}

impl RoundPlan {
    /// Whether no round fires this tick (no member is due). A plan never
    /// pulls queries forward without at least one due member (§IV-A:
    /// pulling alone would waste an occasion).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.due.is_empty()
    }

    /// Due and pulled members, ascending by query id.
    #[must_use]
    pub fn members(&self) -> Vec<u64> {
        let mut all = self.due.clone();
        all.extend_from_slice(&self.pulled);
        all.sort_unstable();
        all
    }
}

/// The coalescing scheduler over per-query PRED-k deadlines (§IV-A): a
/// round fires at tick `t` whenever some member's deadline is `≤ t`, and
/// a member is never served *later* than its own deadline — coalescing
/// only ever pulls occasions earlier (within the horizon), which keeps
/// every member's `δ`-resolution contract intact.
///
/// Planning is heap-driven: scheduled deadlines live in a min-heap keyed
/// by `(tick, id)` with lazy deletion (entries are validated against the
/// authoritative deadline map on pop), and never-scheduled members live
/// in an ordered set. [`RoundPlanner::plan`] therefore costs
/// `O(due · log Q)` per tick instead of a full `O(Q)` member scan — the
/// difference between a mux of a thousand idle queries costing a
/// thousand comparisons per tick and costing one heap peek.
#[derive(Debug, Clone)]
pub struct RoundPlanner {
    /// Authoritative schedule: `None` = never scheduled (due
    /// immediately). Heap entries are valid only while they match this.
    deadlines: BTreeMap<u64, Option<u64>>,
    /// Members with no deadline yet (due immediately), ascending id.
    unscheduled: BTreeSet<u64>,
    /// Min-heap of `(deadline, id)`; may hold stale entries for
    /// deadlines that were since overwritten or removed (lazy deletion).
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    horizon: u64,
}

impl RoundPlanner {
    /// Creates a planner with the given pull-forward horizon (§IV-A;
    /// horizon 0 disables pulling).
    #[must_use]
    pub fn new(horizon: u64) -> Self {
        Self {
            deadlines: BTreeMap::new(),
            unscheduled: BTreeSet::new(),
            heap: BinaryHeap::new(),
            horizon,
        }
    }

    /// Registers a query as immediately due (a fresh query must snapshot
    /// at its arrival tick — §II: answers start at arrival time).
    pub fn register(&mut self, id: u64) {
        self.deadlines.insert(id, None);
        self.unscheduled.insert(id);
    }

    /// Removes a departed query from the schedule (§II: the contract ends
    /// with the query). Any heap entry it left behind goes stale and is
    /// dropped on its next pop.
    pub fn remove(&mut self, id: u64) {
        self.deadlines.remove(&id);
        self.unscheduled.remove(&id);
    }

    /// Records `id`'s next PRED-k deadline (§IV-A `next_delay` output,
    /// absolute tick). The previous heap entry, if any, goes stale.
    pub fn set_deadline(&mut self, id: u64, tick: u64) {
        if let Some(slot) = self.deadlines.get_mut(&id) {
            *slot = Some(tick);
            self.unscheduled.remove(&id);
            self.heap.push(Reverse((tick, id)));
        }
    }

    /// The currently recorded deadline (`None` = immediately due), or
    /// `None` for unknown ids (§IV-A bookkeeping accessor).
    #[must_use]
    pub fn deadline(&self, id: u64) -> Option<Option<u64>> {
        self.deadlines.get(&id).copied()
    }

    /// The earliest live deadline: `Some(None)` when some member is due
    /// immediately (never scheduled), `Some(Some(t))` for the smallest
    /// scheduled deadline, `None` when nothing is queued. Takes `&mut
    /// self` to discard stale heap heads as a side effect.
    pub fn next_deadline(&mut self) -> Option<Option<u64>> {
        if !self.unscheduled.is_empty() {
            return Some(None);
        }
        while let Some(&Reverse((d, id))) = self.heap.peek() {
            if self.deadlines.get(&id).copied() == Some(Some(d)) {
                return Some(Some(d));
            }
            self.heap.pop();
        }
        None
    }

    /// Plans the round for `tick`: all queries with deadline `≤ tick` are
    /// due; if any are, queries with deadlines within `(tick, tick +
    /// horizon]` are pulled forward (§IV-A coalescing — early occasions
    /// are always contract-safe, late ones never happen).
    ///
    /// Heap pops validate against the deadline map (lazy deletion), and
    /// live entries up to the horizon are re-pushed — a planned member
    /// stays due until [`RoundPlanner::set_deadline`] reschedules it, so
    /// repeated calls at the same tick return the same plan.
    #[must_use]
    pub fn plan(&mut self, tick: u64) -> RoundPlan {
        let limit = tick.saturating_add(self.horizon);
        let mut due: BTreeSet<u64> = self.unscheduled.clone();
        let mut pulled: BTreeSet<u64> = BTreeSet::new();
        let mut keep: Vec<(u64, u64)> = Vec::new();
        while let Some(&Reverse((d, id))) = self.heap.peek() {
            if d > limit {
                break;
            }
            self.heap.pop();
            // Lazy deletion: only entries matching the authoritative map
            // are live; stale ones (rescheduled or deregistered ids) are
            // dropped for good. The set-inserts double as dedup, so a
            // re-pushed duplicate never survives a second pop.
            if self.deadlines.get(&id).copied() == Some(Some(d)) {
                let fresh = if d <= tick {
                    due.insert(id)
                } else {
                    pulled.insert(id)
                };
                if fresh {
                    keep.push((d, id));
                }
            }
        }
        for (d, id) in keep {
            self.heap.push(Reverse((d, id)));
        }
        if due.is_empty() {
            return RoundPlan::default();
        }
        RoundPlan {
            due: due.into_iter().collect(),
            pulled: pulled.into_iter().collect(),
        }
    }
}

/// Multiplexer configuration: scheduler × estimator defaults for member
/// queries plus the sharing/coalescing policy (§IV-A, §V).
#[derive(Debug, Clone, Copy)]
pub struct MuxConfig {
    /// Share walk batches and panels across compatible queries. When
    /// `false` the mux runs one full [`DigestEngine`] per query —
    /// byte-identical to standalone engines (§IV baseline).
    pub sharing: bool,
    /// Pull-forward horizon of the coalescing scheduler (§IV-A), in
    /// ticks.
    pub coalesce_horizon: u64,
    /// Let queries that are not yet due consume an already-paid round
    /// panel for free (§V: reading a drawn panel costs no messages).
    pub piggyback: bool,
    /// Scheduler for member queries (§IV-A).
    pub scheduler: SchedulerKind,
    /// Estimator for member queries in unshared mode (§IV-B; shared
    /// rounds always use independent CLT-sized panels, Eq. 6).
    pub estimator: EstimatorKind,
    /// Bottom-tier sampling operator tuning (§V).
    pub sampling: SamplingConfig,
    /// Estimator tuning: pilot size and sample caps (§IV-B).
    pub rpt: RptConfig,
    /// For `SUM`/`COUNT`: rounds between shared relation-size refreshes
    /// (§V-B capture–recapture).
    pub size_refresh_rounds: u64,
    /// For `SUM`/`COUNT`: uniform node samples per size round (§V-B).
    pub size_sample_target: usize,
}

impl Default for MuxConfig {
    fn default() -> Self {
        Self {
            sharing: true,
            coalesce_horizon: 2,
            piggyback: true,
            scheduler: SchedulerKind::Pred(3),
            estimator: EstimatorKind::Repeated,
            sampling: SamplingConfig::default(),
            rpt: RptConfig::default(),
            size_refresh_rounds: 10,
            size_sample_target: 256,
        }
    }
}

/// One member query's view of a mux tick (§II: each query keeps its own
/// `(δ, ε, p)` contract, estimate stream, and causal trace).
#[derive(Debug, Clone, Copy)]
pub struct MuxQueryOutcome {
    /// The member query's id (registration order).
    pub query: u64,
    /// The member's own tick outcome (δ-semantics applied per query).
    pub outcome: TickOutcome,
    /// Causal trace id of the member's reporting occasion (0 before the
    /// first occasion; see §IV-A tracing discipline).
    pub trace: u64,
    /// Trace id of the shared sampling round this occasion was served
    /// from (`None` on idle ticks and in unshared mode).
    pub round: Option<u64>,
}

/// Per-query lifetime cost counters (§VI message accounting, per member).
#[derive(Debug, Clone, Copy, Default)]
pub struct MuxQueryTotals {
    /// Messages attributed to this query (round costs split evenly).
    pub messages: u64,
    /// Samples evaluated for this query.
    pub samples: u64,
    /// Reporting occasions served.
    pub snapshots: u64,
}

/// Per-query state in shared mode.
struct SharedQuery {
    query: ContinuousQuery,
    scheduler: Box<dyn SnapshotScheduler + Send>,
    /// Per-member sweep estimator for the sketch-served kinds (DESIGN.md
    /// §17); `None` for the panel-served mean-like kinds.
    sketch: Option<SketchSweepEstimator>,
    started: bool,
    trace: u64,
    current_estimate: f64,
    last_reported: f64,
    sigma_ema: Option<f64>,
    selectivity_counts: (f64, f64),
    totals: MuxQueryTotals,
}

impl SharedQuery {
    fn smoothed_selectivity(&self) -> f64 {
        let (q, d) = self.selectivity_counts;
        if d > 0.0 {
            q / d
        } else {
            1.0
        }
    }

    fn update_selectivity(&mut self, qualifying: f64, drawn: f64) -> f64 {
        let (q, d) = self.selectivity_counts;
        self.selectivity_counts = (
            q * SELECTIVITY_DECAY + qualifying,
            d * SELECTIVITY_DECAY + drawn,
        );
        self.smoothed_selectivity()
    }

    fn scale(&self, avg: f64, selectivity: f64, size_estimate: Option<f64>) -> f64 {
        match self.query.op {
            // The sweep-served kinds (DESIGN.md §17) never take this
            // path — their sweeps finalize to the scalar directly — but
            // the passthrough keeps the match total.
            AggregateOp::Avg
            | AggregateOp::Median
            | AggregateOp::Percentile { .. }
            | AggregateOp::Distinct
            | AggregateOp::TopK { .. } => avg,
            AggregateOp::Sum => avg * selectivity * size_estimate.unwrap_or(0.0),
            AggregateOp::Count => selectivity * size_estimate.unwrap_or(0.0),
        }
    }
}

/// Per-query accumulation while a shared round's panel is drawn.
#[derive(Debug, Default)]
struct RoundTally {
    moments: RunningMoments,
    qualifying: u64,
    drawn: u64,
}

/// Shared-mode state: one operator, one walk pool, one size estimate.
struct SharedState {
    operator: SamplingOperator,
    size_operator: SamplingOperator,
    planner: RoundPlanner,
    queries: BTreeMap<u64, SharedQuery>,
    size_estimate: Option<f64>,
    rounds_since_size_refresh: u64,
    rounds: u64,
    last_round_trace: u64,
}

enum Mode {
    Independent(BTreeMap<u64, DigestEngine>),
    Shared(Box<SharedState>),
}

/// The query multiplexer: N concurrent continuous queries (heterogeneous
/// `δ/ε/p`, expressions, predicates — §II) over a single overlay, with
/// shared panels and coalesced PRED-k rounds (§IV-A, §V) when sharing is
/// enabled, or N standalone [`DigestEngine`]s otherwise.
pub struct QueryMux {
    config: MuxConfig,
    mode: Mode,
    name: String,
    next_id: u64,
    current_estimate: f64,
    total_messages: u64,
    total_samples: u64,
    total_snapshots: u64,
}

impl std::fmt::Debug for QueryMux {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryMux")
            .field("name", &self.name)
            .field("queries", &self.len())
            .field("sharing", &self.config.sharing)
            .finish_non_exhaustive()
    }
}

impl QueryMux {
    /// Builds an empty multiplexer (§II: queries arrive and depart over
    /// the run; see [`QueryMux::register`]).
    ///
    /// # Errors
    ///
    /// [`crate::CoreError::InvalidConfig`] for invalid scheduler/sampling
    /// settings.
    pub fn new(config: MuxConfig) -> Result<Self> {
        let mode = if config.sharing {
            let operator = SamplingOperator::new(config.sampling)?;
            // Size estimation targets the uniform node distribution,
            // which mixes slower than the content-biased one (§V-B):
            // give those walks more budget, as the engine does.
            let size_operator = SamplingOperator::new(SamplingConfig {
                walk_length: config.sampling.walk_length.saturating_mul(4),
                reset_length: config.sampling.reset_length.saturating_mul(2),
                ..config.sampling
            })?;
            Mode::Shared(Box::new(SharedState {
                operator,
                size_operator,
                planner: RoundPlanner::new(config.coalesce_horizon),
                queries: BTreeMap::new(),
                size_estimate: None,
                rounds_since_size_refresh: 0,
                rounds: 0,
                last_round_trace: 0,
            }))
        } else {
            Mode::Independent(BTreeMap::new())
        };
        let scheduler_name = match config.scheduler {
            SchedulerKind::All => "ALL".to_owned(),
            SchedulerKind::Pred(k) => format!("PRED{k}"),
        };
        let name = if config.sharing {
            format!("MUX+{scheduler_name}")
        } else {
            let est = match config.estimator {
                EstimatorKind::Independent => "INDEP",
                EstimatorKind::Repeated => "RPT",
            };
            format!("MUX-UNSHARED+{scheduler_name}+{est}")
        };
        Ok(Self {
            config,
            mode,
            name,
            next_id: 0,
            current_estimate: 0.0,
            total_messages: 0,
            total_samples: 0,
            total_snapshots: 0,
        })
    }

    /// Registers a continuous query; returns its member id (§II: the
    /// query's contract runs from this call until
    /// [`QueryMux::deregister`]).
    ///
    /// # Errors
    ///
    /// [`crate::CoreError::InvalidConfig`] if the member scheduler is invalid or
    /// a sketch-served member's `(ε, p)` contract is degenerate
    /// (DESIGN.md §17 sizing).
    pub fn register(&mut self, query: ContinuousQuery) -> Result<u64> {
        let id = self.next_id;
        match &mut self.mode {
            Mode::Independent(engines) => {
                let engine = DigestEngine::new(
                    query,
                    EngineConfig {
                        scheduler: self.config.scheduler,
                        estimator: self.config.estimator,
                        sampling: self.config.sampling,
                        rpt: self.config.rpt,
                        size_refresh_interval: self.config.size_refresh_rounds,
                        size_sample_target: self.config.size_sample_target,
                    },
                )?;
                engines.insert(id, engine);
            }
            Mode::Shared(state) => {
                // Sweep-served members (quantiles, distinct count, top-k
                // mass — DESIGN.md §17; shared-mode MEDIAN rides the
                // same UDDSketch sweep at rank 0.5) carry a per-member
                // sweep estimator; mean-like members share the panel.
                let sketch = if sweep_served(&query.op) {
                    Some(SketchSweepEstimator::for_query(&query)?)
                } else {
                    None
                };
                let scheduler: Box<dyn SnapshotScheduler + Send> = match self.config.scheduler {
                    SchedulerKind::All => Box::new(AllScheduler::new()),
                    SchedulerKind::Pred(k) => Box::new(PredScheduler::new(k)?),
                };
                state.queries.insert(
                    id,
                    SharedQuery {
                        query,
                        scheduler,
                        sketch,
                        started: false,
                        trace: 0,
                        current_estimate: 0.0,
                        last_reported: f64::NAN,
                        sigma_ema: None,
                        selectivity_counts: (0.0, 0.0),
                        totals: MuxQueryTotals::default(),
                    },
                );
                state.planner.register(id);
            }
        }
        self.next_id += 1;
        Ok(id)
    }

    /// Deregisters a member query (§II: departure ends its contract);
    /// unknown ids are ignored.
    pub fn deregister(&mut self, id: u64) {
        match &mut self.mode {
            Mode::Independent(engines) => {
                engines.remove(&id);
            }
            Mode::Shared(state) => {
                state.queries.remove(&id);
                state.planner.remove(id);
            }
        }
    }

    /// Number of registered queries (§II).
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.mode {
            Mode::Independent(engines) => engines.len(),
            Mode::Shared(state) => state.queries.len(),
        }
    }

    /// Whether no query is registered (§II).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The member query behind `id`, if registered (§II).
    #[must_use]
    pub fn query(&self, id: u64) -> Option<&ContinuousQuery> {
        match &self.mode {
            Mode::Independent(engines) => engines.get(&id).map(DigestEngine::query),
            Mode::Shared(state) => state.queries.get(&id).map(|q| &q.query),
        }
    }

    /// Registered member ids in ascending order (§II).
    #[must_use]
    pub fn query_ids(&self) -> Vec<u64> {
        match &self.mode {
            Mode::Independent(engines) => engines.keys().copied().collect(),
            Mode::Shared(state) => state.queries.keys().copied().collect(),
        }
    }

    /// Lifetime cost counters for one member (§VI accounting; round
    /// costs are split evenly across round members in shared mode).
    #[must_use]
    pub fn query_totals(&self, id: u64) -> Option<MuxQueryTotals> {
        match &self.mode {
            Mode::Independent(engines) => engines.get(&id).map(|e| MuxQueryTotals {
                messages: e.total_messages(),
                samples: e.total_samples(),
                snapshots: e.total_snapshots(),
            }),
            Mode::Shared(state) => state.queries.get(&id).map(|q| q.totals),
        }
    }

    /// Coalesced sampling rounds executed so far (0 in unshared mode —
    /// §IV-A).
    #[must_use]
    pub fn rounds(&self) -> u64 {
        match &self.mode {
            Mode::Independent(_) => 0,
            Mode::Shared(state) => state.rounds,
        }
    }

    /// Whether panel sharing is enabled (§V).
    #[must_use]
    pub fn sharing(&self) -> bool {
        self.config.sharing
    }

    /// Advances every member query one tick; returns one outcome per
    /// member in ascending id order (§II: each member keeps its own
    /// estimate stream and δ-semantics).
    ///
    /// # Errors
    ///
    /// Any engine/sampling error; a transiently empty relation is held,
    /// not raised (§V).
    pub fn on_tick_mux(
        &mut self,
        ctx: &TickContext<'_>,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<MuxQueryOutcome>> {
        digest_telemetry::set_tick(ctx.tick);
        let outcomes = match &mut self.mode {
            Mode::Independent(engines) => {
                let mut out = Vec::with_capacity(engines.len());
                for (&id, engine) in engines.iter_mut() {
                    let outcome = engine.on_tick(ctx, rng)?;
                    out.push(MuxQueryOutcome {
                        query: id,
                        outcome,
                        trace: engine.trace_id(),
                        round: None,
                    });
                }
                out
            }
            Mode::Shared(state) => shared_tick(state, &self.config, ctx, rng)?,
        };
        for o in &outcomes {
            self.total_messages += o.outcome.messages_this_tick;
            self.total_samples += o.outcome.samples_this_tick;
            if o.outcome.snapshot_executed {
                self.total_snapshots += 1;
            }
        }
        if let Some(first) = outcomes.first() {
            self.current_estimate = first.outcome.estimate;
        }
        Ok(outcomes)
    }
}

/// Converts a qualifying-sample deficit into a draw request under a
/// smoothed selectivity (bounded inflation; the cast is safe because the
/// operand is clamped to the sample-cap range first).
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
fn draws_for_deficit(deficit: u64, selectivity: f64, cap: usize) -> usize {
    let sel = selectivity.max(SELECTIVITY_FLOOR);
    let want = (deficit as f64 / sel).ceil();
    if !want.is_finite() || want <= 0.0 {
        return 0;
    }
    (want as usize).min(cap)
}

/// Eq. 6 per-member sizing: qualifying-sample target given the best
/// current σ̂ (prior EMA vs in-round measurement, whichever is larger).
fn member_target(config: &MuxConfig, q: &SharedQuery, tally: &RoundTally) -> Result<u64> {
    let pilot = config.rpt.pilot_size.max(2);
    let measured = if tally.moments.count() >= pilot as u64 {
        Some(tally.moments.sample_std())
    } else {
        None
    };
    let sigma = match (q.sigma_ema, measured) {
        (Some(a), Some(b)) => Some(a.max(b)),
        (Some(a), None) => Some(a),
        (None, m) => m,
    };
    let target = match sigma {
        Some(s) => {
            required_sample_size(s, q.query.precision.epsilon, q.query.precision.confidence)?
                .clamp(pilot, config.rpt.max_samples)
        }
        None => pilot,
    };
    Ok(target as u64)
}

/// Runs one shared-mode size-estimation round (§V-B capture–recapture on
/// uniform node samples); returns messages spent.
fn refresh_size_estimate(
    state: &mut SharedState,
    config: &MuxConfig,
    ctx: &TickContext<'_>,
    rng: &mut dyn RngCore,
) -> Result<u64> {
    let _span = digest_telemetry::span(Stage::SizeEstimate);
    digest_telemetry::registry::CORE_SIZE_REFRESHES.inc();
    let mut est = SizeEstimator::new();
    let mut messages = 0u64;
    let w = uniform_weight();
    state.size_operator.begin_occasion();
    for _ in 0..config.size_sample_target {
        let (node, cost) = state
            .size_operator
            .sample_node(ctx.graph, &w, ctx.origin, rng)?;
        messages += cost.total();
        est.add_sample(node, ctx.db.content_size(node));
        if est.collisions() >= 32 {
            break;
        }
    }
    if let Ok(n_hat) = est.estimate_tuple_count() {
        state.size_estimate = Some(match state.size_estimate {
            Some(old) => old + 0.5 * (n_hat - old),
            None => n_hat,
        });
    } else if state.size_estimate.is_none() {
        let floor = if est.samples() > 0 {
            est.distinct() as f64
        } else {
            0.0
        };
        state.size_estimate = Some(floor.max(1.0));
    }
    state.rounds_since_size_refresh = 0;
    Ok(messages)
}

/// One shared-mode tick: plan the round, draw one shared panel through
/// the parallel executor (one occasion seed per batch — §V), then let
/// every participant consume it under its own contract (§II).
#[allow(clippy::too_many_lines)]
fn shared_tick(
    state: &mut SharedState,
    config: &MuxConfig,
    ctx: &TickContext<'_>,
    rng: &mut dyn RngCore,
) -> Result<Vec<MuxQueryOutcome>> {
    let idle = |state: &SharedState| {
        state
            .queries
            .iter()
            .map(|(&id, q)| MuxQueryOutcome {
                query: id,
                outcome: TickOutcome::idle(q.current_estimate),
                trace: q.trace,
                round: None,
            })
            .collect::<Vec<_>>()
    };
    if state.queries.is_empty() {
        return Ok(Vec::new());
    }
    let plan = state.planner.plan(ctx.tick);
    if plan.is_empty() {
        return Ok(idle(state));
    }

    // A round fires. Allocate its causal trace first so the sampling
    // events below parent to the round, then one id per member (ascending
    // id order — deterministic regardless of telemetry enablement).
    let round_trace = digest_telemetry::begin_trace();
    digest_telemetry::set_trace(round_trace);
    let _round_span = digest_telemetry::span(Stage::EngineTick);

    let participants: Vec<u64> = if config.piggyback {
        state.queries.keys().copied().collect()
    } else {
        plan.members()
    };
    // Sweep-served members (DESIGN.md §17) are answered by per-member
    // node sweeps, not the shared tuple panel; CLT sizing, the size
    // refresh, and the round-cost split cover panel members only.
    let panel_members: Vec<u64> = participants
        .iter()
        .copied()
        .filter(|id| {
            state
                .queries
                .get(id)
                .is_some_and(|q| !sweep_served(&q.query.op))
        })
        .collect();

    let mut round_messages = 0u64;
    let needs_size = panel_members.iter().any(|id| {
        state
            .queries
            .get(id)
            .is_some_and(|q| !matches!(q.query.op, AggregateOp::Avg))
    });
    if needs_size
        && (state.size_estimate.is_none()
            || state.rounds_since_size_refresh >= config.size_refresh_rounds)
    {
        round_messages += refresh_size_estimate(state, config, ctx, rng)?;
    }

    // --- Draw the shared panel: sequential CLT sizing at the maximum
    // member requirement (Eq. 6), one `sample_tuples` batch per loop
    // (one occasion seed, one join through the parallel executor). ---
    let any_nontrivial = panel_members.iter().any(|id| {
        state
            .queries
            .get(id)
            .is_some_and(|q| !q.query.predicate.is_trivial())
    });
    let max_draws = if any_nontrivial {
        config.rpt.max_samples.saturating_mul(4)
    } else {
        config.rpt.max_samples
    };
    let mut tallies: BTreeMap<u64, RoundTally> = panel_members
        .iter()
        .map(|&id| (id, RoundTally::default()))
        .collect();
    let mut drawn = 0u64;
    let mut empty_database = false;
    state.operator.begin_occasion();
    let eval_span = digest_telemetry::span(Stage::EstimatorEval);
    'rounds: loop {
        let mut want = 0usize;
        for &id in &panel_members {
            let (Some(q), Some(tally)) = (state.queries.get(&id), tallies.get(&id)) else {
                continue;
            };
            let target = member_target(config, q, tally)?;
            let have = tally.moments.count();
            if have >= target {
                continue;
            }
            let sel = if q.query.predicate.is_trivial() {
                1.0
            } else {
                q.smoothed_selectivity()
            };
            let headroom = max_draws.saturating_sub(usize::try_from(drawn).unwrap_or(usize::MAX));
            want = want.max(draws_for_deficit(target - have, sel, headroom));
        }
        if want == 0 {
            break;
        }
        let batch = match state
            .operator
            .sample_tuples(ctx.graph, ctx.db, ctx.origin, want, rng)
        {
            Ok(batch) => batch,
            // A transiently empty relation is a live condition (§V):
            // hold every due member and retry next tick.
            Err(digest_sampling::SamplingError::EmptyDatabase) => {
                empty_database = true;
                break 'rounds;
            }
            Err(other) => return Err(other.into()),
        };
        for (_handle, tuple, cost) in &batch {
            round_messages += cost.total();
            drawn += 1;
            for &id in &panel_members {
                let (Some(q), Some(tally)) = (state.queries.get(&id), tallies.get_mut(&id)) else {
                    continue;
                };
                tally.drawn += 1;
                if !q.query.predicate.is_trivial()
                    && !q.query.predicate.eval(tuple).unwrap_or(false)
                {
                    continue;
                }
                let value = q.query.expr.eval(tuple)?;
                if value.is_finite() {
                    tally.moments.push(value);
                    tally.qualifying += 1;
                }
            }
        }
    }
    drop(eval_span);

    if empty_database {
        // Hold: due members count an (empty) occasion and retry next
        // tick; everyone else idles. Messages spent so far are split
        // across due members.
        let mut out = Vec::with_capacity(state.queries.len());
        let due: Vec<u64> = plan.due.clone();
        let m = due.len().max(1) as u64;
        let share = round_messages / m;
        let remainder = round_messages % m;
        for (i, &id) in due.iter().enumerate() {
            if let Some(q) = state.queries.get_mut(&id) {
                let messages = share + u64::from((i as u64) < remainder);
                q.totals.messages += messages;
                q.totals.snapshots += 1;
                state.planner.set_deadline(id, ctx.tick + 1);
            }
        }
        state.rounds += 1;
        state.last_round_trace = round_trace;
        for (&id, q) in &state.queries {
            let is_due = due.contains(&id);
            out.push(MuxQueryOutcome {
                query: id,
                outcome: TickOutcome {
                    estimate: q.current_estimate,
                    updated: false,
                    snapshot_executed: is_due,
                    samples_this_tick: 0,
                    fresh_samples_this_tick: 0,
                    messages_this_tick: if is_due {
                        let i = due.iter().position(|&d| d == id).unwrap_or(0);
                        share + u64::from((i as u64) < remainder)
                    } else {
                        0
                    },
                },
                trace: q.trace,
                round: is_due.then_some(round_trace),
            });
        }
        return Ok(out);
    }

    // --- Per-member finalisation in ascending id order: attribute the
    // round cost, apply each member's δ-semantics, reschedule (§IV-A).
    // Panel members split the shared round cost evenly; sweep-served
    // members pay exactly their own fresh-node pulls (DESIGN.md §17). ---
    let m = panel_members.len().max(1) as u64;
    let share = round_messages / m;
    let remainder = round_messages % m;
    let mut panel_index = 0u64;
    let mut finalized: BTreeMap<u64, MuxQueryOutcome> = BTreeMap::new();
    for &id in &participants {
        let Some(q) = state.queries.get_mut(&id) else {
            continue;
        };
        q.trace = digest_telemetry::begin_trace();
        digest_telemetry::set_trace(q.trace);

        // Sweep path (DESIGN.md §17): one deterministic node sweep per
        // occasion, retained members free, δ-semantics as usual.
        if let Some(sketch) = q.sketch.as_mut() {
            let snap = sketch.sweep(ctx.db, &q.query.expr, &q.query.predicate)?;
            q.totals.messages += snap.messages;
            q.totals.samples += snap.qualifying;
            q.totals.snapshots += 1;
            let outcome = if let Some(value) = snap.estimate {
                q.current_estimate = value;
                q.started = true;
                let updated = q.last_reported.is_nan()
                    || (value - q.last_reported).abs() >= q.query.precision.delta;
                if updated {
                    q.last_reported = value;
                }
                q.scheduler.observe(ctx.tick as f64, value);
                let delay = {
                    let _span = digest_telemetry::span(Stage::SchedulerDecide);
                    q.scheduler.next_delay(q.query.precision.delta)?
                };
                state.planner.set_deadline(id, ctx.tick + delay);
                TickOutcome {
                    estimate: value,
                    updated,
                    snapshot_executed: true,
                    samples_this_tick: snap.qualifying,
                    fresh_samples_this_tick: snap.fresh_nodes,
                    messages_this_tick: snap.messages,
                }
            } else {
                // No tuple qualified for an order statistic: hold the
                // previous result and retry next tick (§IV hold rule).
                state.planner.set_deadline(id, ctx.tick + 1);
                TickOutcome {
                    estimate: q.current_estimate,
                    updated: false,
                    snapshot_executed: true,
                    samples_this_tick: 0,
                    fresh_samples_this_tick: 0,
                    messages_this_tick: snap.messages,
                }
            };
            if digest_telemetry::events_enabled() {
                digest_telemetry::emit(
                    "engine.snapshot",
                    &[
                        ("system", Field::Str("MUX")),
                        ("estimate", Field::F64(outcome.estimate)),
                        ("messages", Field::U64(outcome.messages_this_tick)),
                        ("samples", Field::U64(outcome.samples_this_tick)),
                    ],
                );
            }
            finalized.insert(
                id,
                MuxQueryOutcome {
                    query: id,
                    outcome,
                    trace: q.trace,
                    round: Some(round_trace),
                },
            );
            continue;
        }

        let tally = tallies
            .get(&id)
            .map_or(RoundTally::default(), |t| RoundTally {
                moments: t.moments,
                qualifying: t.qualifying,
                drawn: t.drawn,
            });
        let messages = share + u64::from(panel_index < remainder);
        panel_index += 1;

        // Transiently empty qualifying sub-population for a started AVG:
        // hold the previous result, still reschedule (engine semantics).
        let trivial = q.query.predicate.is_trivial();
        if tally.moments.count() == 0
            && !trivial
            && matches!(q.query.op, AggregateOp::Avg)
            && q.started
        {
            q.scheduler.observe(ctx.tick as f64, q.current_estimate);
            let delay = q.scheduler.next_delay(q.query.precision.delta)?;
            state.planner.set_deadline(id, ctx.tick + delay);
            q.totals.messages += messages;
            q.totals.samples += drawn;
            q.totals.snapshots += 1;
            finalized.insert(
                id,
                MuxQueryOutcome {
                    query: id,
                    outcome: TickOutcome {
                        estimate: q.current_estimate,
                        updated: false,
                        snapshot_executed: true,
                        samples_this_tick: drawn,
                        fresh_samples_this_tick: drawn,
                        messages_this_tick: messages,
                    },
                    trace: q.trace,
                    round: Some(round_trace),
                },
            );
            continue;
        }

        let selectivity = if trivial {
            1.0
        } else {
            q.update_selectivity(tally.qualifying as f64, tally.drawn as f64)
        };
        let scaled = q.scale(tally.moments.mean(), selectivity, state.size_estimate);
        q.current_estimate = scaled;
        q.started = true;
        if tally.moments.count() >= 2 {
            let s = tally.moments.sample_std();
            q.sigma_ema = Some(match q.sigma_ema {
                Some(old) => old + 0.5 * (s - old),
                None => s,
            });
        }
        let updated =
            q.last_reported.is_nan() || (scaled - q.last_reported).abs() >= q.query.precision.delta;
        if updated {
            q.last_reported = scaled;
        }
        q.scheduler.observe(ctx.tick as f64, scaled);
        let delay = {
            let _span = digest_telemetry::span(Stage::SchedulerDecide);
            q.scheduler.next_delay(q.query.precision.delta)?
        };
        state.planner.set_deadline(id, ctx.tick + delay);
        q.totals.messages += messages;
        q.totals.samples += drawn;
        q.totals.snapshots += 1;

        if digest_telemetry::events_enabled() {
            digest_telemetry::emit(
                "engine.snapshot",
                &[
                    ("system", Field::Str("MUX")),
                    ("estimate", Field::F64(scaled)),
                    ("messages", Field::U64(messages)),
                    ("samples", Field::U64(drawn)),
                ],
            );
        }
        finalized.insert(
            id,
            MuxQueryOutcome {
                query: id,
                outcome: TickOutcome {
                    estimate: scaled,
                    updated,
                    snapshot_executed: true,
                    samples_this_tick: drawn,
                    fresh_samples_this_tick: drawn,
                    messages_this_tick: messages,
                },
                trace: q.trace,
                round: Some(round_trace),
            },
        );
    }

    // The round's own event, under the round's trace id.
    digest_telemetry::set_trace(round_trace);
    if digest_telemetry::events_enabled() {
        digest_telemetry::emit(
            "mux.round",
            &[
                ("members", Field::U64(participants.len() as u64)),
                ("due", Field::U64(plan.due.len() as u64)),
                ("pulled", Field::U64(plan.pulled.len() as u64)),
                ("panel", Field::U64(drawn)),
                ("messages", Field::U64(round_messages)),
            ],
        );
    }
    state.rounds += 1;
    state.rounds_since_size_refresh += 1;
    state.last_round_trace = round_trace;

    let out = state
        .queries
        .iter()
        .map(|(&id, q)| {
            finalized.remove(&id).unwrap_or(MuxQueryOutcome {
                query: id,
                outcome: TickOutcome::idle(q.current_estimate),
                trace: q.trace,
                round: None,
            })
        })
        .collect();
    Ok(out)
}

impl QuerySystem for QueryMux {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_due(&mut self, now: u64) -> Option<u64> {
        match &mut self.mode {
            Mode::Independent(engines) => {
                // Earliest member deadline; any member without a
                // schedule keeps the whole mux dense.
                let mut earliest: Option<u64> = None;
                for engine in engines.values_mut() {
                    match engine.next_due(now) {
                        None => return None,
                        Some(t) => earliest = Some(earliest.map_or(t, |e| e.min(t))),
                    }
                }
                earliest
            }
            Mode::Shared(state) => match state.planner.next_deadline() {
                // Ticks before the earliest deadline plan an empty
                // round and idle without consuming randomness.
                Some(Some(d)) if d > now => Some(d),
                // Someone is due now (or was never scheduled): dense.
                Some(_) => None,
                // No member queued: nothing will ever fire, but `None`
                // (dense) is the safe answer for an empty mux.
                None => None,
            },
        }
    }

    fn on_tick(&mut self, ctx: &TickContext<'_>, rng: &mut dyn RngCore) -> Result<TickOutcome> {
        let outcomes = self.on_tick_mux(ctx, rng)?;
        let mut folded = TickOutcome::idle(self.current_estimate);
        for o in &outcomes {
            folded.updated |= o.outcome.updated;
            folded.snapshot_executed |= o.outcome.snapshot_executed;
            folded.samples_this_tick += o.outcome.samples_this_tick;
            folded.fresh_samples_this_tick += o.outcome.fresh_samples_this_tick;
            folded.messages_this_tick += o.outcome.messages_this_tick;
        }
        if let Some(first) = outcomes.first() {
            folded.estimate = first.outcome.estimate;
        }
        Ok(folded)
    }

    fn total_messages(&self) -> u64 {
        self.total_messages
    }

    fn total_samples(&self) -> u64 {
        self.total_samples
    }

    fn total_snapshots(&self) -> u64 {
        self.total_snapshots
    }

    fn set_sampling_workers(&mut self, workers: usize) {
        match &mut self.mode {
            Mode::Independent(engines) => {
                for engine in engines.values_mut() {
                    engine.set_sampling_workers(workers);
                }
            }
            Mode::Shared(state) => {
                state.operator.set_workers(workers);
                state.size_operator.set_workers(workers);
            }
        }
    }

    fn trace_id(&self) -> u64 {
        match &self.mode {
            Mode::Independent(engines) => engines
                .values()
                .next_back()
                .map_or(0, DigestEngine::trace_id),
            Mode::Shared(state) => state.last_round_trace,
        }
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use crate::query::Precision;
    use digest_db::{Expr, P2PDatabase, Predicate, Schema, Tuple};
    use digest_net::{topology, Graph, NodeId};
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn world(seed: u64) -> (Graph, P2PDatabase) {
        let graph = topology::complete(8).unwrap();
        let mut db = P2PDatabase::new(Schema::single("a"));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for v in 0..8 {
            db.register_node(NodeId(v));
            for _ in 0..25 {
                let value = 50.0 + rng.gen_range(-8.0..8.0);
                db.insert(NodeId(v), Tuple::single(value)).unwrap();
            }
        }
        (graph, db)
    }

    fn avg_query(delta: f64, eps: f64, p: f64) -> ContinuousQuery {
        ContinuousQuery::avg(
            Expr::first_attr(&Schema::single("a")),
            Precision::new(delta, eps, p).unwrap(),
        )
    }

    #[test]
    fn panel_keys_coincide_for_all_tuple_queries() {
        let a = PanelKey::for_query(&avg_query(2.0, 1.0, 0.95));
        let q = ContinuousQuery::new(
            AggregateOp::Sum,
            Expr::first_attr(&Schema::single("a")),
            Precision::new(10.0, 5.0, 0.9).unwrap(),
        );
        let b = PanelKey::for_query(&q);
        assert!(a.shares_panel(&b));
        assert!(b.shares_panel(&a));
        assert!(a.shares_panel(&a));
        assert!(!a.shares_panel(&PanelKey::size_estimation()));
    }

    #[test]
    fn planner_fires_due_members_and_pulls_within_horizon() {
        let mut p = RoundPlanner::new(2);
        p.register(0);
        p.register(1);
        p.register(2);
        // Fresh queries are immediately due.
        let plan = p.plan(5);
        assert_eq!(plan.due, vec![0, 1, 2]);
        p.set_deadline(0, 7);
        p.set_deadline(1, 9);
        p.set_deadline(2, 20);
        let plan = p.plan(6);
        assert!(plan.is_empty());
        let plan = p.plan(7);
        assert_eq!(plan.due, vec![0]);
        assert_eq!(plan.pulled, vec![1], "deadline 9 within 7+2");
        assert_eq!(plan.members(), vec![0, 1]);
    }

    /// The pre-heap planner, kept verbatim as the reference model: a
    /// full scan of the member map per plan call.
    fn plan_by_full_scan(
        deadlines: &BTreeMap<u64, Option<u64>>,
        tick: u64,
        horizon: u64,
    ) -> RoundPlan {
        let mut plan = RoundPlan::default();
        for (&id, &deadline) in deadlines {
            match deadline {
                None => plan.due.push(id),
                Some(d) if d <= tick => plan.due.push(id),
                _ => {}
            }
        }
        if plan.due.is_empty() {
            return plan;
        }
        let limit = tick.saturating_add(horizon);
        for (&id, &deadline) in deadlines {
            if let Some(d) = deadline {
                if d > tick && d <= limit {
                    plan.pulled.push(id);
                }
            }
        }
        plan
    }

    /// Golden-trace pin for the heap refactor: the lazy-deletion heap
    /// planner must produce exactly the plans the full member scan
    /// produced, under arbitrary interleavings of register / remove /
    /// reschedule / plan — including re-planning the same tick twice
    /// and rescheduling to the same deadline (duplicate heap entries).
    #[test]
    fn planner_heap_matches_full_scan_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for horizon in [0u64, 2, 5] {
            let mut planner = RoundPlanner::new(horizon);
            let mut reference: BTreeMap<u64, Option<u64>> = BTreeMap::new();
            let mut next_id = 0u64;
            let mut tick = 0u64;
            for _ in 0..2_000 {
                match rng.gen_range(0..10) {
                    0 | 1 => {
                        planner.register(next_id);
                        reference.insert(next_id, None);
                        next_id += 1;
                    }
                    2 => {
                        if let Some(&id) = reference.keys().next() {
                            planner.remove(id);
                            reference.remove(&id);
                        }
                    }
                    3..=6 => {
                        let ids: Vec<u64> = reference.keys().copied().collect();
                        if !ids.is_empty() {
                            let id = ids[rng.gen_range(0..ids.len())];
                            let deadline = tick + rng.gen_range(0..12);
                            planner.set_deadline(id, deadline);
                            reference.insert(id, Some(deadline));
                        }
                    }
                    _ => {
                        tick += rng.gen_range(0..4);
                        let heap_plan = planner.plan(tick);
                        let scan_plan = plan_by_full_scan(&reference, tick, horizon);
                        assert_eq!(heap_plan.due, scan_plan.due, "due at tick {tick}");
                        assert_eq!(heap_plan.pulled, scan_plan.pulled, "pulled at tick {tick}");
                        // Re-planning without rescheduling is idempotent.
                        let again = planner.plan(tick);
                        assert_eq!(again.due, scan_plan.due);
                        assert_eq!(again.pulled, scan_plan.pulled);
                    }
                }
            }
        }
    }

    #[test]
    fn planner_next_deadline_tracks_earliest_live_entry() {
        let mut p = RoundPlanner::new(2);
        assert_eq!(p.next_deadline(), None);
        p.register(0);
        assert_eq!(p.next_deadline(), Some(None), "fresh member is due now");
        p.set_deadline(0, 9);
        p.register(1);
        p.set_deadline(1, 4);
        assert_eq!(p.next_deadline(), Some(Some(4)));
        // Rescheduling strands a stale heap entry; the answer must skip it.
        p.set_deadline(1, 15);
        assert_eq!(p.next_deadline(), Some(Some(9)));
        p.remove(0);
        assert_eq!(p.next_deadline(), Some(Some(15)));
        p.remove(1);
        assert_eq!(p.next_deadline(), None);
    }

    #[test]
    fn planner_never_pulls_without_a_due_member() {
        let mut p = RoundPlanner::new(10);
        p.register(0);
        p.set_deadline(0, 8);
        let plan = p.plan(5);
        assert!(plan.is_empty());
        assert!(plan.pulled.is_empty());
    }

    /// Regression for the lifted shared-mode `MEDIAN` rejection: a
    /// `MEDIAN` member now registers, is served by the UDDSketch sweep
    /// at rank 0.5 (DESIGN.md §17), shares a round with an `AVG`
    /// member, and lands within the sketch's relative accuracy of the
    /// exact median.
    #[test]
    fn median_joins_shared_rounds_via_sketch_sweep() {
        let (graph, db) = world(11);
        let mut mux = QueryMux::new(MuxConfig::default()).unwrap();
        let median = mux
            .register(ContinuousQuery::new(
                AggregateOp::Median,
                Expr::first_attr(&Schema::single("a")),
                Precision::new(2.0, 1.0, 0.95).unwrap(),
            ))
            .unwrap();
        let avg = mux.register(avg_query(2.0, 2.0, 0.95)).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let ctx = TickContext {
            tick: 0,
            graph: &graph,
            db: &db,
            origin: NodeId(0),
        };
        let out = mux.on_tick_mux(&ctx, &mut rng).unwrap();
        assert_eq!(out.len(), 2);
        // Both members are served from the same round.
        assert!(out.iter().all(|o| o.outcome.snapshot_executed));
        assert_eq!(out[0].round, out[1].round);
        assert!(out[0].round.is_some());
        let exact = ContinuousQuery::new(
            AggregateOp::Median,
            Expr::first_attr(db.schema()),
            Precision::new(2.0, 1.0, 0.95).unwrap(),
        )
        .oracle(&db)
        .unwrap();
        let got = out
            .iter()
            .find(|o| o.query == median)
            .unwrap()
            .outcome
            .estimate;
        assert!(
            (got - exact).abs() <= 0.5,
            "median sweep {got} vs exact {exact}"
        );
        // The sweep pays one message per node, split from no one.
        let sweep_cost = mux.query_totals(median).unwrap().messages;
        assert_eq!(sweep_cost, 8, "one fresh pull per live node");
        let total = mux.query_totals(avg).unwrap().messages + sweep_cost;
        assert_eq!(total, mux.total_messages());
    }

    /// All three sketch kinds (DESIGN.md §17) register in shared mode,
    /// share rounds, and report within their contracts; retained sweep
    /// members cost nothing on a static relation.
    #[test]
    fn sketch_kinds_share_rounds_and_retain_members() {
        let (graph, db) = world(13);
        let mut mux = QueryMux::new(MuxConfig::default()).unwrap();
        let schema = Schema::single("a");
        let mk = |op| {
            ContinuousQuery::new(
                op,
                Expr::first_attr(&schema),
                Precision::new(1.0, 0.5, 0.95).unwrap(),
            )
        };
        let p90 = mux
            .register(mk(AggregateOp::Percentile { q_permille: 900 }))
            .unwrap();
        let distinct = mux.register(mk(AggregateOp::Distinct)).unwrap();
        let topk = mux.register(mk(AggregateOp::TopK { k: 3 })).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let mut messages_after_first = 0;
        for tick in 0..6 {
            let ctx = TickContext {
                tick,
                graph: &graph,
                db: &db,
                origin: NodeId(0),
            };
            let out = mux.on_tick_mux(&ctx, &mut rng).unwrap();
            for o in &out {
                if !o.outcome.snapshot_executed {
                    continue;
                }
                let q = mux.query(o.query).unwrap().clone();
                let exact = q.oracle(&db).unwrap();
                let tol = if matches!(q.op, AggregateOp::Distinct) {
                    // Relative ε-semantics (§II adapted per DESIGN.md §17).
                    q.precision.epsilon * exact.max(1.0)
                } else {
                    q.precision.epsilon
                };
                assert!(
                    (o.outcome.estimate - exact).abs() <= tol,
                    "{q}: estimate {} vs exact {exact}",
                    o.outcome.estimate
                );
            }
            if tick == 0 {
                messages_after_first = mux.total_messages();
                assert!(messages_after_first > 0);
            }
        }
        // Static relation: every later sweep retains all members at zero
        // message cost (§IV-B2 retain economics).
        assert_eq!(mux.total_messages(), messages_after_first);
        for id in [p90, distinct, topk] {
            let totals = mux.query_totals(id).unwrap();
            assert_eq!(totals.messages, 8, "first sweep pulls all 8 nodes");
            assert!(totals.snapshots >= 1);
        }
    }

    #[test]
    fn shared_round_serves_every_member_one_panel() {
        let (graph, db) = world(1);
        let mut mux = QueryMux::new(MuxConfig::default()).unwrap();
        let a = mux.register(avg_query(2.0, 2.0, 0.95)).unwrap();
        let b = mux.register(avg_query(4.0, 3.0, 0.9)).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ctx = TickContext {
            tick: 0,
            graph: &graph,
            db: &db,
            origin: NodeId(0),
        };
        let out = mux.on_tick_mux(&ctx, &mut rng).unwrap();
        assert_eq!(out.len(), 2);
        let truth = db.exact_avg(&Expr::first_attr(db.schema())).unwrap();
        for o in &out {
            assert!(o.outcome.snapshot_executed);
            assert!(o.round.is_some());
            assert!(o.trace > 0);
            assert!(
                (o.outcome.estimate - truth).abs() < 3.0,
                "estimate {} vs truth {truth}",
                o.outcome.estimate
            );
        }
        // Same shared panel → same sample count; round trace shared.
        assert_eq!(
            out[0].outcome.samples_this_tick,
            out[1].outcome.samples_this_tick
        );
        assert_eq!(out[0].round, out[1].round);
        assert_ne!(out[0].trace, out[1].trace, "per-member occasion traces");
        // Message split conserves the round total.
        let total = mux.query_totals(a).unwrap().messages + mux.query_totals(b).unwrap().messages;
        assert_eq!(total, mux.total_messages());
        assert_eq!(mux.rounds(), 1);
    }

    #[test]
    fn shared_mode_is_cheaper_than_unshared_for_many_queries() {
        let n = 16;
        let run = |sharing: bool| {
            let (graph, db) = world(3);
            let mut mux = QueryMux::new(MuxConfig {
                sharing,
                ..MuxConfig::default()
            })
            .unwrap();
            for i in 0..n {
                mux.register(avg_query(2.0 + i as f64, 2.0, 0.95)).unwrap();
            }
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            for tick in 0..20 {
                let ctx = TickContext {
                    tick,
                    graph: &graph,
                    db: &db,
                    origin: NodeId(0),
                };
                mux.on_tick_mux(&ctx, &mut rng).unwrap();
            }
            mux.total_messages()
        };
        let shared = run(true);
        let unshared = run(false);
        assert!(
            shared * 2 < unshared,
            "sharing must at least halve the cost: {shared} vs {unshared}"
        );
    }

    #[test]
    fn unshared_mode_matches_standalone_engines() {
        let n = 3;
        let queries: Vec<ContinuousQuery> = (0..n)
            .map(|i| avg_query(2.0 + i as f64, 2.0, 0.95))
            .collect();
        let config = MuxConfig {
            sharing: false,
            ..MuxConfig::default()
        };

        let (graph, db) = world(5);
        let mut mux = QueryMux::new(config).unwrap();
        for q in &queries {
            mux.register(q.clone()).unwrap();
        }
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut mux_stream = Vec::new();
        for tick in 0..15 {
            let ctx = TickContext {
                tick,
                graph: &graph,
                db: &db,
                origin: NodeId(0),
            };
            for o in mux.on_tick_mux(&ctx, &mut rng).unwrap() {
                mux_stream.push((o.query, o.outcome.estimate.to_bits()));
            }
        }

        let (graph, db) = world(5);
        let mut engines: Vec<DigestEngine> = queries
            .iter()
            .map(|q| {
                DigestEngine::new(
                    q.clone(),
                    EngineConfig {
                        scheduler: config.scheduler,
                        estimator: config.estimator,
                        sampling: config.sampling,
                        rpt: config.rpt,
                        size_refresh_interval: config.size_refresh_rounds,
                        size_sample_target: config.size_sample_target,
                    },
                )
                .unwrap()
            })
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut engine_stream = Vec::new();
        for tick in 0..15 {
            let ctx = TickContext {
                tick,
                graph: &graph,
                db: &db,
                origin: NodeId(0),
            };
            for (i, e) in engines.iter_mut().enumerate() {
                let o = e.on_tick(&ctx, &mut rng).unwrap();
                engine_stream.push((i as u64, o.estimate.to_bits()));
            }
        }
        assert_eq!(mux_stream, engine_stream);
    }

    #[test]
    fn predicate_queries_share_the_panel() {
        let (graph, db) = world(7);
        let mut mux = QueryMux::new(MuxConfig::default()).unwrap();
        let plain = mux.register(avg_query(2.0, 2.0, 0.95)).unwrap();
        let schema = Schema::single("a");
        let filtered = mux
            .register(
                avg_query(2.0, 2.0, 0.9)
                    .with_predicate(Predicate::parse("a > 50", &schema).unwrap()),
            )
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut last = BTreeMap::new();
        for tick in 0..10 {
            let ctx = TickContext {
                tick,
                graph: &graph,
                db: &db,
                origin: NodeId(0),
            };
            for o in mux.on_tick_mux(&ctx, &mut rng).unwrap() {
                last.insert(o.query, o.outcome.estimate);
            }
        }
        assert!(mux.rounds() >= 1);
        let expr = Expr::first_attr(db.schema());
        let plain_truth = db.exact_avg(&expr).unwrap();
        let filtered_truth = db
            .exact_avg_where(&expr, &Predicate::parse("a > 50", &schema).unwrap())
            .unwrap();
        assert!((last[&plain] - plain_truth).abs() < 4.0);
        assert!(
            (last[&filtered] - filtered_truth).abs() < 4.0,
            "filtered {} vs {filtered_truth}",
            last[&filtered]
        );
    }

    #[test]
    fn deregister_removes_member_from_rounds() {
        let (graph, db) = world(9);
        let mut mux = QueryMux::new(MuxConfig::default()).unwrap();
        let a = mux.register(avg_query(2.0, 2.0, 0.95)).unwrap();
        let b = mux.register(avg_query(3.0, 2.0, 0.95)).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let ctx = TickContext {
            tick: 0,
            graph: &graph,
            db: &db,
            origin: NodeId(0),
        };
        assert_eq!(mux.on_tick_mux(&ctx, &mut rng).unwrap().len(), 2);
        mux.deregister(a);
        let ctx = TickContext {
            tick: 1,
            graph: &graph,
            db: &db,
            origin: NodeId(0),
        };
        let out = mux.on_tick_mux(&ctx, &mut rng).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].query, b);
        assert_eq!(mux.len(), 1);
    }

    #[test]
    fn sum_and_count_share_one_size_estimate() {
        let (graph, db) = world(11);
        let schema = Schema::single("a");
        let mut mux = QueryMux::new(MuxConfig {
            size_sample_target: 2000,
            ..MuxConfig::default()
        })
        .unwrap();
        mux.register(ContinuousQuery::new(
            AggregateOp::Sum,
            Expr::first_attr(&schema),
            Precision::new(800.0, 400.0, 0.9).unwrap(),
        ))
        .unwrap();
        mux.register(ContinuousQuery::new(
            AggregateOp::Count,
            Expr::first_attr(&schema),
            Precision::new(60.0, 40.0, 0.9).unwrap(),
        ))
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let ctx = TickContext {
            tick: 0,
            graph: &graph,
            db: &db,
            origin: NodeId(0),
        };
        let out = mux.on_tick_mux(&ctx, &mut rng).unwrap();
        let sum_truth = db.exact_sum(&Expr::first_attr(db.schema())).unwrap();
        let count_truth = db.exact_count() as f64;
        assert!(
            (out[0].outcome.estimate - sum_truth).abs() / sum_truth < 0.5,
            "SUM {} vs {sum_truth}",
            out[0].outcome.estimate
        );
        assert!(
            (out[1].outcome.estimate - count_truth).abs() / count_truth < 0.5,
            "COUNT {} vs {count_truth}",
            out[1].outcome.estimate
        );
    }

    #[test]
    fn idle_ticks_cost_nothing_in_shared_mode() {
        let (graph, db) = world(13);
        let mut mux = QueryMux::new(MuxConfig {
            coalesce_horizon: 0,
            ..MuxConfig::default()
        })
        .unwrap();
        mux.register(avg_query(16.0, 4.0, 0.9)).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let mut idle_seen = false;
        for tick in 0..25 {
            let ctx = TickContext {
                tick,
                graph: &graph,
                db: &db,
                origin: NodeId(0),
            };
            let out = mux.on_tick_mux(&ctx, &mut rng).unwrap();
            if !out[0].outcome.snapshot_executed {
                idle_seen = true;
                assert_eq!(out[0].outcome.messages_this_tick, 0);
            }
        }
        assert!(idle_seen, "a steady signal must produce idle ticks");
    }
}
