//! Push-based comparator systems (paper §VI-B3, Figure 5-b).
//!
//! * [`PushAllEngine`] (`ALL+ALL`) — every tick every tuple's value is
//!   pushed to the querying node, which evaluates the query exactly. Each
//!   push travels the overlay, so one tuple costs its node's hop distance
//!   to the querier. This is the only baseline that supports exact
//!   queries — and it costs two orders of magnitude more than Digest.
//! * [`FilterEngine`] (`ALL+FILTER`) — the adaptive-filter scheme of
//!   Olston et al. (the paper's improved non-sampling comparator): every
//!   tuple carries a bound `[c − w/2, c + w/2]`; its node pushes an update
//!   only when the local value escapes the bound. Keeping the mean width
//!   at most `2ε` guarantees the querier's average-of-centres stays within
//!   `±ε` of the true average. Widths adapt: periodically all shrink by a
//!   factor `γ` and the reclaimed budget is re-granted to the tuples that
//!   violated most, so rarely changing tuples get wide (quiet) bounds and
//!   volatile ones stay tight.
//!
//! Both engines walk the database directly — that models each node's
//! *local* work on its own fragment (free) — but every value that crosses
//! the network is metered through the BFS hop distance to the querier.

use crate::error::CoreError;
use crate::query::{AggregateOp, ContinuousQuery};
use crate::system::{QuerySystem, TickContext, TickOutcome};
use crate::Result;
use digest_db::TupleHandle;
use digest_net::{Graph, NodeId};
use rand::RngCore;
use std::collections::{BTreeMap, BTreeSet};

/// Hop distances from every node to the querying node, lazily recomputed
/// when the overlay changes.
#[derive(Debug, Default)]
struct DistanceCache {
    origin: Option<NodeId>,
    node_count: usize,
    edge_count: usize,
    dist: Vec<u32>,
}

impl DistanceCache {
    /// Hop distance of `node` from the origin (0 when unknown, e.g. a
    /// transiently partitioned node — its push simply costs nothing this
    /// tick, a conservative under-count applied to the *baselines*, i.e.
    /// in their favour).
    fn get(&mut self, g: &Graph, origin: NodeId, node: NodeId) -> u64 {
        if self.origin != Some(origin)
            || self.node_count != g.node_count()
            || self.edge_count != g.edge_count()
        {
            self.origin = Some(origin);
            self.node_count = g.node_count();
            self.edge_count = g.edge_count();
            self.dist = vec![0; g.id_upper_bound()];
            if let Ok(d) = g.bfs_distances(origin) {
                for (v, dv) in d {
                    self.dist[v.0 as usize] = dv;
                }
            }
        }
        u64::from(self.dist.get(node.0 as usize).copied().unwrap_or(0))
    }
}

/// `ALL+ALL`: full push, exact evaluation (paper §VI-B3, Figure 5-b).
#[derive(Debug)]
pub struct PushAllEngine {
    query: ContinuousQuery,
    distances: DistanceCache,
    current_estimate: f64,
    last_reported: f64,
    total_messages: u64,
    total_snapshots: u64,
}

impl PushAllEngine {
    /// Creates the engine.
    #[must_use]
    pub fn new(query: ContinuousQuery) -> Self {
        Self {
            query,
            distances: DistanceCache::default(),
            current_estimate: 0.0,
            last_reported: f64::NAN,
            total_messages: 0,
            total_snapshots: 0,
        }
    }
}

impl QuerySystem for PushAllEngine {
    fn name(&self) -> &str {
        "ALL+ALL"
    }

    fn on_tick(&mut self, ctx: &TickContext<'_>, _rng: &mut dyn RngCore) -> Result<TickOutcome> {
        let mut messages = 0u64;
        let mut sum = 0.0;
        let mut count = 0u64;
        let mut values = Vec::new();
        let want_median = matches!(self.query.op, AggregateOp::Median) || self.query.op.is_sketch();
        for (handle, tuple) in ctx.db.iter() {
            // Every tuple is pushed (cost) — the querier filters locally.
            messages += self.distances.get(ctx.graph, ctx.origin, handle.node);
            if !self.query.predicate.eval(tuple).unwrap_or(false) {
                continue;
            }
            let value = self.query.expr.eval(tuple)?;
            sum += value;
            count += 1;
            if want_median {
                values.push(value);
            }
        }
        let estimate = match self.query.op {
            AggregateOp::Avg => {
                if count == 0 {
                    self.current_estimate
                } else {
                    sum / count as f64
                }
            }
            AggregateOp::Sum => sum,
            AggregateOp::Count => count as f64,
            AggregateOp::Median | AggregateOp::Percentile { .. } => {
                if values.is_empty() {
                    self.current_estimate
                } else {
                    values.sort_by(f64::total_cmp);
                    // quantile_rank is Some for both arms by construction.
                    let q = self.query.op.quantile_rank().unwrap_or(0.5);
                    digest_stats::sample_quantile(&values, q)
                        .map_err(digest_sampling::SamplingError::from)
                        .map_err(CoreError::from)?
                }
            }
            // Flooding pushes every tuple to the querier, which can then
            // count cells exactly (DESIGN.md §17 cell domain).
            AggregateOp::Distinct => {
                let cells: std::collections::BTreeSet<i64> = values
                    .iter()
                    .map(|v| digest_sketch::value_cell(*v))
                    .collect();
                cells.len() as f64
            }
            AggregateOp::TopK { k } => {
                if values.is_empty() {
                    self.current_estimate
                } else {
                    let mut counts: std::collections::BTreeMap<i64, u64> =
                        std::collections::BTreeMap::new();
                    for v in &values {
                        *counts.entry(digest_sketch::value_cell(*v)).or_insert(0) += 1;
                    }
                    let mut entries: Vec<(i64, u64)> = counts.into_iter().collect();
                    entries.sort_by(|(ka, ca), (kb, cb)| cb.cmp(ca).then(ka.cmp(kb)));
                    let top: u64 = entries.iter().take(usize::from(k)).map(|(_, c)| *c).sum();
                    (top as f64 / values.len() as f64).clamp(0.0, 1.0)
                }
            }
        };
        self.current_estimate = estimate;
        let updated = self.last_reported.is_nan()
            || (estimate - self.last_reported).abs() >= self.query.precision.delta;
        if updated {
            self.last_reported = estimate;
        }
        self.total_messages += messages;
        self.total_snapshots += 1;
        Ok(TickOutcome {
            estimate,
            updated,
            snapshot_executed: true,
            samples_this_tick: 0,
            fresh_samples_this_tick: 0,
            messages_this_tick: messages,
        })
    }

    fn total_messages(&self) -> u64 {
        self.total_messages
    }

    fn total_samples(&self) -> u64 {
        0
    }

    fn total_snapshots(&self) -> u64 {
        self.total_snapshots
    }

    fn oracle_truth(&self, ctx: &TickContext<'_>) -> Option<f64> {
        self.query.oracle(ctx.db)
    }
}

/// Tuning of the adaptive-filter baseline (paper §VI-B3).
#[derive(Debug, Clone, Copy)]
pub struct FilterConfig {
    /// Ticks between width-adaptation rounds.
    pub adapt_period: u64,
    /// Fraction of each width reclaimed per adaptation round.
    pub shrink_gamma: f64,
}

impl Default for FilterConfig {
    fn default() -> Self {
        Self {
            adapt_period: 10,
            shrink_gamma: 0.1,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Filter {
    center: f64,
    width: f64,
    violations: u32,
}

/// `ALL+FILTER`: Olston-style adaptive bound filters (paper §VI-B3).
#[derive(Debug)]
pub struct FilterEngine {
    query: ContinuousQuery,
    config: FilterConfig,
    distances: DistanceCache,
    filters: BTreeMap<TupleHandle, Filter>,
    current_estimate: f64,
    last_reported: f64,
    ticks_seen: u64,
    total_messages: u64,
    total_snapshots: u64,
}

impl FilterEngine {
    /// Creates the engine.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if the query is not `AVG` (the width
    /// budget derivation below is for averages, matching the paper's
    /// comparison query) or the config is out of range.
    pub fn new(query: ContinuousQuery, config: FilterConfig) -> Result<Self> {
        if !matches!(query.op, AggregateOp::Avg) {
            return Err(CoreError::InvalidConfig {
                reason: "FilterEngine supports AVG queries only",
            });
        }
        if !query.predicate.is_trivial() {
            return Err(CoreError::InvalidConfig {
                reason: "FilterEngine does not support WHERE predicates",
            });
        }
        if config.adapt_period == 0 || !(0.0..1.0).contains(&config.shrink_gamma) {
            return Err(CoreError::InvalidConfig {
                reason: "adapt_period must be positive and shrink_gamma in [0, 1)",
            });
        }
        Ok(Self {
            query,
            config,
            distances: DistanceCache::default(),
            filters: BTreeMap::new(),
            current_estimate: 0.0,
            last_reported: f64::NAN,
            ticks_seen: 0,
            total_messages: 0,
            total_snapshots: 0,
        })
    }

    /// Number of installed filters.
    #[must_use]
    pub fn filter_count(&self) -> usize {
        self.filters.len()
    }
}

impl QuerySystem for FilterEngine {
    fn name(&self) -> &str {
        "ALL+FILTER"
    }

    fn on_tick(&mut self, ctx: &TickContext<'_>, _rng: &mut dyn RngCore) -> Result<TickOutcome> {
        let mut messages = 0u64;
        // The precision interval [L, H] with H − L < 2ε → per-tuple mean
        // width budget 2ε (each object's bound contributes width/N to the
        // aggregate interval).
        let base_width = 2.0 * self.query.precision.epsilon;

        let mut seen: BTreeSet<TupleHandle> = BTreeSet::new();
        for (handle, tuple) in ctx.db.iter() {
            let value = self.query.expr.eval(tuple)?;
            seen.insert(handle);
            match self.filters.get_mut(&handle) {
                None => {
                    // New tuple: register its filter by pushing its value.
                    messages += self
                        .distances
                        .get(ctx.graph, ctx.origin, handle.node)
                        .max(1);
                    self.filters.insert(
                        handle,
                        Filter {
                            center: value,
                            width: base_width,
                            violations: 0,
                        },
                    );
                }
                Some(f) => {
                    if (value - f.center).abs() > f.width / 2.0 {
                        // Bound violation: push the update, recenter.
                        messages += self
                            .distances
                            .get(ctx.graph, ctx.origin, handle.node)
                            .max(1);
                        f.center = value;
                        f.violations += 1;
                    }
                }
            }
        }
        // Departed tuples: their node's leave is observed out-of-band (the
        // overlay repair already carries those messages).
        self.filters.retain(|h, _| seen.contains(h));

        // Periodic width adaptation: shrink everyone, re-grant the
        // reclaimed budget to violators (Olston's shrink/grow cycle).
        self.ticks_seen += 1;
        if self.ticks_seen.is_multiple_of(self.config.adapt_period) && !self.filters.is_empty() {
            let mut reclaimed = 0.0;
            let mut total_violations = 0u64;
            for f in self.filters.values_mut() {
                let cut = f.width * self.config.shrink_gamma;
                f.width -= cut;
                reclaimed += cut;
                total_violations += u64::from(f.violations);
            }
            if total_violations > 0 {
                for f in self.filters.values_mut() {
                    if f.violations > 0 {
                        f.width += reclaimed * f64::from(f.violations) / total_violations as f64;
                    }
                    f.violations = 0;
                }
            } else {
                // Nobody violated: spread the budget back evenly.
                let share = reclaimed / self.filters.len() as f64;
                for f in self.filters.values_mut() {
                    f.width += share;
                }
            }
        }

        let estimate = if self.filters.is_empty() {
            self.current_estimate
        } else {
            self.filters.values().map(|f| f.center).sum::<f64>() / self.filters.len() as f64
        };
        self.current_estimate = estimate;
        let updated = self.last_reported.is_nan()
            || (estimate - self.last_reported).abs() >= self.query.precision.delta;
        if updated {
            self.last_reported = estimate;
        }
        self.total_messages += messages;
        self.total_snapshots += 1;
        Ok(TickOutcome {
            estimate,
            updated,
            snapshot_executed: true,
            samples_this_tick: 0,
            fresh_samples_this_tick: 0,
            messages_this_tick: messages,
        })
    }

    fn total_messages(&self) -> u64 {
        self.total_messages
    }

    fn total_samples(&self) -> u64 {
        0
    }

    fn total_snapshots(&self) -> u64 {
        self.total_snapshots
    }

    fn oracle_truth(&self, ctx: &TickContext<'_>) -> Option<f64> {
        self.query.oracle(ctx.db)
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use crate::query::Precision;
    use digest_db::{Expr, P2PDatabase, Schema, Tuple, TupleHandle};
    use digest_net::topology;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    struct World {
        graph: digest_net::Graph,
        db: P2PDatabase,
        handles: Vec<TupleHandle>,
    }

    fn world() -> World {
        let graph = topology::mesh(3, 3, false).unwrap();
        let mut db = P2PDatabase::new(Schema::single("a"));
        let mut handles = Vec::new();
        for v in 0..9u32 {
            db.register_node(NodeId(v));
            for j in 0..4 {
                handles.push(
                    db.insert(NodeId(v), Tuple::single(10.0 + f64::from(v) + f64::from(j)))
                        .unwrap(),
                );
            }
        }
        World { graph, db, handles }
    }

    fn avg_query(delta: f64, eps: f64) -> ContinuousQuery {
        let schema = Schema::single("a");
        ContinuousQuery::avg(
            Expr::first_attr(&schema),
            Precision::new(delta, eps, 0.95).unwrap(),
        )
    }

    #[test]
    fn push_all_is_exact() {
        let w = world();
        let mut e = PushAllEngine::new(avg_query(1.0, 1.0));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ctx = TickContext {
            tick: 0,
            graph: &w.graph,
            db: &w.db,
            origin: NodeId(0),
        };
        let o = e.on_tick(&ctx, &mut rng).unwrap();
        let expr = Expr::first_attr(w.db.schema());
        assert_eq!(o.estimate, w.db.exact_avg(&expr).unwrap());
        // 4 tuples per node; corner origin on a 3×3 mesh → expensive.
        assert!(
            o.messages_this_tick > 4 * 8,
            "messages = {}",
            o.messages_this_tick
        );
    }

    #[test]
    fn push_all_supports_sum_and_count() {
        let w = world();
        let schema = Schema::single("a");
        let expr = Expr::first_attr(&schema);
        let precision = Precision::new(1.0, 1.0, 0.95).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ctx = TickContext {
            tick: 0,
            graph: &w.graph,
            db: &w.db,
            origin: NodeId(0),
        };

        let mut sum_engine = PushAllEngine::new(ContinuousQuery::new(
            AggregateOp::Sum,
            expr.clone(),
            precision,
        ));
        let o = sum_engine.on_tick(&ctx, &mut rng).unwrap();
        assert_eq!(o.estimate, w.db.exact_sum(&expr).unwrap());

        let mut count_engine =
            PushAllEngine::new(ContinuousQuery::new(AggregateOp::Count, expr, precision));
        let o = count_engine.on_tick(&ctx, &mut rng).unwrap();
        assert_eq!(o.estimate, w.db.exact_count() as f64);
    }

    #[test]
    fn filter_engine_rejects_non_avg() {
        let schema = Schema::single("a");
        let q = ContinuousQuery::new(
            AggregateOp::Sum,
            Expr::first_attr(&schema),
            Precision::new(1.0, 1.0, 0.95).unwrap(),
        );
        assert!(FilterEngine::new(q, FilterConfig::default()).is_err());
    }

    #[test]
    fn filter_engine_registration_then_quiet() {
        let w = world();
        let mut e = FilterEngine::new(avg_query(1.0, 1.0), FilterConfig::default()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ctx = TickContext {
            tick: 0,
            graph: &w.graph,
            db: &w.db,
            origin: NodeId(0),
        };

        // Tick 0: all 36 tuples register.
        let o0 = e.on_tick(&ctx, &mut rng).unwrap();
        assert_eq!(e.filter_count(), 36);
        assert!(o0.messages_this_tick >= 36);

        // Tick 1: nothing changed → zero messages.
        let ctx = TickContext {
            tick: 1,
            graph: &w.graph,
            db: &w.db,
            origin: NodeId(0),
        };
        let o1 = e.on_tick(&ctx, &mut rng).unwrap();
        assert_eq!(o1.messages_this_tick, 0);
        // Estimate is exact while nothing moved.
        let expr = Expr::first_attr(w.db.schema());
        assert!((o1.estimate - w.db.exact_avg(&expr).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn filter_engine_pushes_only_violations() {
        let mut w = world();
        let mut e = FilterEngine::new(avg_query(1.0, 1.0), FilterConfig::default()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let ctx = TickContext {
            tick: 0,
            graph: &w.graph,
            db: &w.db,
            origin: NodeId(0),
        };
        e.on_tick(&ctx, &mut rng).unwrap();

        // Small drift within width (ε=1 → width 2, half-width 1): quiet.
        let h = w.handles[0];
        let x = w.db.read(h).unwrap().value(0).unwrap();
        w.db.update(h, &[x + 0.5]).unwrap();
        let ctx = TickContext {
            tick: 1,
            graph: &w.graph,
            db: &w.db,
            origin: NodeId(0),
        };
        let o = e.on_tick(&ctx, &mut rng).unwrap();
        assert_eq!(o.messages_this_tick, 0, "within-bound drift must be silent");

        // Large jump: exactly one push.
        w.db.update(h, &[x + 10.0]).unwrap();
        let ctx = TickContext {
            tick: 2,
            graph: &w.graph,
            db: &w.db,
            origin: NodeId(0),
        };
        let o = e.on_tick(&ctx, &mut rng).unwrap();
        assert!(o.messages_this_tick >= 1);
        assert!(o.messages_this_tick <= 5, "only the violator pushes");
    }

    #[test]
    fn filter_engine_estimate_stays_within_epsilon() {
        let mut w = world();
        let eps = 1.0;
        let mut e = FilterEngine::new(avg_query(0.5, eps), FilterConfig::default()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let expr = Expr::first_attr(w.db.schema());
        let mut worst: f64 = 0.0;
        for t in 0..30 {
            // Random small drifts.
            for (i, &h) in w.handles.iter().enumerate() {
                if (t as usize + i).is_multiple_of(3) {
                    let x = w.db.read(h).unwrap().value(0).unwrap();
                    w.db.update(h, &[x + if i % 2 == 0 { 0.3 } else { -0.3 }])
                        .unwrap();
                }
            }
            let ctx = TickContext {
                tick: t,
                graph: &w.graph,
                db: &w.db,
                origin: NodeId(0),
            };
            let o = e.on_tick(&ctx, &mut rng).unwrap();
            let truth = w.db.exact_avg(&expr).unwrap();
            worst = worst.max((o.estimate - truth).abs());
        }
        assert!(
            worst <= eps + 1e-9,
            "filter bound violated: worst error {worst}"
        );
    }

    #[test]
    fn filter_engine_adapts_widths_to_volatile_tuples() {
        let mut w = world();
        let cfg = FilterConfig {
            adapt_period: 5,
            shrink_gamma: 0.2,
        };
        let mut e = FilterEngine::new(avg_query(1.0, 1.0), cfg).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        // Tuple 0 oscillates violently every tick; everything else is quiet.
        let volatile = w.handles[0];
        for t in 0..40 {
            let x = if t % 2 == 0 { 100.0 } else { 0.0 };
            w.db.update(volatile, &[x]).unwrap();
            let ctx = TickContext {
                tick: t,
                graph: &w.graph,
                db: &w.db,
                origin: NodeId(0),
            };
            e.on_tick(&ctx, &mut rng).unwrap();
        }
        let vol_width = e.filters[&volatile].width;
        let quiet_width = e.filters[&w.handles[5]].width;
        assert!(
            vol_width > quiet_width,
            "volatile tuple should hold more width: {vol_width} vs {quiet_width}"
        );
    }

    #[test]
    fn filter_engine_drops_departed_tuples() {
        let mut w = world();
        let mut e = FilterEngine::new(avg_query(1.0, 1.0), FilterConfig::default()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ctx = TickContext {
            tick: 0,
            graph: &w.graph,
            db: &w.db,
            origin: NodeId(0),
        };
        e.on_tick(&ctx, &mut rng).unwrap();
        assert_eq!(e.filter_count(), 36);
        w.db.remove_node(NodeId(4)).unwrap();
        let ctx = TickContext {
            tick: 1,
            graph: &w.graph,
            db: &w.db,
            origin: NodeId(0),
        };
        e.on_tick(&ctx, &mut rng).unwrap();
        assert_eq!(e.filter_count(), 32);
    }
}
