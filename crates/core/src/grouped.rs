//! Sampling-based `GROUP BY` snapshots (post-stratification).
//!
//! Another step along the paper's §VIII "more complex aggregate queries"
//! direction: estimate a per-group aggregate in one sampling pass.
//! Samples are drawn uniformly over the (qualifying) relation and
//! *post-stratified* by the grouping key; within each stratum the sample
//! is uniform over that stratum, so the group mean estimate is unbiased,
//! and the group's sample share is an unbiased estimate of its population
//! share (which also converts group AVGs into group SUM/COUNT via `N̂`).
//!
//! Sizing is per-group: sampling continues until every *major* group
//! (empirical share ≥ `min_share`) holds at least `min_group_samples`
//! observations. Minor groups are reported with whatever samples they
//! received — uniform sampling cannot cheaply resolve rare strata, which
//! is exactly the regime the paper's nonuniform weight functions
//! (`w_v` ∝ relevance) exist for.

use crate::error::CoreError;
use crate::system::TickContext;
use crate::Result;
use digest_db::{Expr, Predicate};
use digest_sampling::SamplingOperator;
use digest_stats::RunningMoments;
use rand::RngCore;
use std::collections::BTreeMap;

/// A grouped aggregate query: `SELECT AVG(expr) … GROUP BY key(expr)` —
/// a §VIII "more complex aggregate queries" extension.
#[derive(Debug, Clone)]
pub struct GroupedQuery {
    /// The aggregated expression.
    pub expr: Expr,
    /// The grouping expression; its value is rounded to the nearest
    /// integer to form the group key.
    pub group_by: Expr,
    /// Optional `WHERE` restriction.
    pub predicate: Predicate,
}

/// One group's estimate (per-stratum CLT estimate, extending §IV-B1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupEstimate {
    /// The group key (rounded grouping expression).
    pub key: i64,
    /// Estimated mean of `expr` within the group.
    pub avg: f64,
    /// Estimated fraction of qualifying tuples in this group.
    pub share: f64,
    /// Samples that landed in this group.
    pub samples: u64,
    /// Standard error of `avg` (`s/√n` within the group).
    pub std_error: f64,
}

/// The outcome of one grouped snapshot (§VIII extension of the snapshot
/// result model).
#[derive(Debug, Clone)]
pub struct GroupedSnapshot {
    /// Per-group estimates, ascending by key.
    pub groups: Vec<GroupEstimate>,
    /// Total samples drawn (including non-qualifying rejections).
    pub samples: u64,
    /// Messages spent.
    pub messages: u64,
}

impl GroupedSnapshot {
    /// Looks up a group's estimate by key.
    #[must_use]
    pub fn group(&self, key: i64) -> Option<&GroupEstimate> {
        self.groups.iter().find(|g| g.key == key)
    }
}

/// The grouped estimator: post-stratified uniform sampling (§VIII
/// direction, reusing the §IV-B1 CLT sizing within each stratum).
#[derive(Debug, Clone, Copy)]
pub struct GroupedEstimator {
    /// Minimum samples demanded of every major group before stopping.
    pub min_group_samples: usize,
    /// Empirical-share threshold above which a group counts as major.
    pub min_share: f64,
    /// Hard cap on total draws.
    pub max_samples: usize,
    /// Draws per sizing round.
    pub batch: usize,
}

impl Default for GroupedEstimator {
    fn default() -> Self {
        Self {
            min_group_samples: 30,
            min_share: 0.05,
            max_samples: 20_000,
            batch: 50,
        }
    }
}

impl GroupedEstimator {
    /// Creates an estimator.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for out-of-range settings.
    pub fn new(
        min_group_samples: usize,
        min_share: f64,
        max_samples: usize,
        batch: usize,
    ) -> Result<Self> {
        if min_group_samples < 2 || batch < 1 || max_samples < batch {
            return Err(CoreError::InvalidConfig {
                reason: "min_group_samples >= 2, batch >= 1, max_samples >= batch required",
            });
        }
        if !(0.0..=1.0).contains(&min_share) {
            return Err(CoreError::InvalidConfig {
                reason: "min_share must be in [0, 1]",
            });
        }
        Ok(Self {
            min_group_samples,
            min_share,
            max_samples,
            batch,
        })
    }

    /// Evaluates one grouped snapshot.
    ///
    /// # Errors
    ///
    /// Sampling/database errors (e.g. an empty relation).
    pub fn evaluate(
        &self,
        ctx: &TickContext<'_>,
        query: &GroupedQuery,
        operator: &mut SamplingOperator,
        rng: &mut dyn RngCore,
    ) -> Result<GroupedSnapshot> {
        operator.begin_occasion();
        let trivial = query.predicate.is_trivial();
        let mut strata: BTreeMap<i64, RunningMoments> = BTreeMap::new();
        let mut drawn = 0u64;
        let mut qualifying = 0u64;
        let mut messages = 0u64;

        let max_samples = self.max_samples as u64;
        'outer: while drawn < max_samples {
            for _ in 0..self.batch {
                if drawn >= max_samples {
                    break;
                }
                let (_, tuple, cost) = operator.sample_tuple(ctx.graph, ctx.db, ctx.origin, rng)?;
                messages += cost.total();
                drawn += 1;
                if !trivial && !query.predicate.eval(&tuple).unwrap_or(false) {
                    continue;
                }
                let key_value = query.group_by.eval(&tuple)?;
                let value = query.expr.eval(&tuple)?;
                if !key_value.is_finite() || !value.is_finite() {
                    continue;
                }
                qualifying += 1;
                // Finite (checked above) and clamped: in-range for i64.
                #[allow(clippy::cast_possible_truncation)]
                let key = key_value.round().clamp(-1e18, 1e18) as i64;
                strata.entry(key).or_default().push(value);
            }
            // Stopping rule: every major group has enough samples.
            if qualifying > 0 {
                let min_group = self.min_group_samples as u64;
                let major_satisfied = strata.values().all(|m| {
                    let share = m.count() as f64 / qualifying as f64;
                    share < self.min_share || m.count() >= min_group
                });
                if major_satisfied && qualifying >= min_group {
                    break 'outer;
                }
            }
        }

        let groups = strata
            .into_iter()
            .map(|(key, m)| GroupEstimate {
                key,
                avg: m.mean(),
                share: if qualifying == 0 {
                    0.0
                } else {
                    m.count() as f64 / qualifying as f64
                },
                samples: m.count(),
                std_error: m.standard_error(),
            })
            .collect();
        Ok(GroupedSnapshot {
            groups,
            samples: drawn,
            messages,
        })
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use digest_db::{P2PDatabase, Schema, Tuple};
    use digest_net::{topology, NodeId};
    use digest_sampling::SamplingConfig;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Three regions with distinct temperature means and shares
    /// 0.5 / 0.3 / 0.2.
    fn world(seed: u64) -> (digest_net::Graph, P2PDatabase) {
        let g = topology::complete(12).unwrap();
        let mut db = P2PDatabase::new(Schema::new(["region", "temp"]));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for v in g.nodes() {
            db.register_node(v);
            for j in 0..50 {
                let region = match j % 10 {
                    0..=4 => 0.0,
                    5..=7 => 1.0,
                    _ => 2.0,
                };
                let mean = 50.0 + region * 20.0; // 50 / 70 / 90
                let temp = mean + rng.gen_range(-3.0..3.0);
                db.insert(v, Tuple::new(vec![region, temp])).unwrap();
            }
        }
        (g, db)
    }

    fn query(db: &P2PDatabase) -> GroupedQuery {
        let schema = db.schema().clone();
        GroupedQuery {
            expr: Expr::attr(&schema, "temp").unwrap(),
            group_by: Expr::attr(&schema, "region").unwrap(),
            predicate: Predicate::True,
        }
    }

    fn operator() -> SamplingOperator {
        SamplingOperator::new(SamplingConfig::recommended(12)).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(GroupedEstimator::new(1, 0.05, 100, 10).is_err());
        assert!(GroupedEstimator::new(10, 1.5, 100, 10).is_err());
        assert!(GroupedEstimator::new(10, 0.05, 5, 10).is_err());
        assert!(GroupedEstimator::new(10, 0.05, 100, 0).is_err());
        assert!(GroupedEstimator::new(10, 0.05, 100, 10).is_ok());
    }

    #[test]
    fn recovers_group_means_and_shares() {
        let (g, db) = world(1);
        let est = GroupedEstimator::default();
        let mut op = operator();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ctx = TickContext {
            tick: 0,
            graph: &g,
            db: &db,
            origin: NodeId(0),
        };
        let snap = est.evaluate(&ctx, &query(&db), &mut op, &mut rng).unwrap();
        assert_eq!(snap.groups.len(), 3, "three regions found");
        for (key, want_mean, want_share) in [(0, 50.0, 0.5), (1, 70.0, 0.3), (2, 90.0, 0.2)] {
            let grp = snap.group(key).unwrap();
            assert!(
                (grp.avg - want_mean).abs() < 2.0,
                "group {key}: avg {} vs {want_mean}",
                grp.avg
            );
            assert!(
                (grp.share - want_share).abs() < 0.08,
                "group {key}: share {} vs {want_share}",
                grp.share
            );
            assert!(grp.samples >= 30, "major group under-sampled");
            assert!(grp.std_error > 0.0);
        }
        // Shares sum to 1.
        let total: f64 = snap.groups.iter().map(|g| g.share).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn every_major_group_reaches_its_quota() {
        let (g, db) = world(3);
        let est = GroupedEstimator {
            min_group_samples: 60,
            ..Default::default()
        };
        let mut op = operator();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let ctx = TickContext {
            tick: 0,
            graph: &g,
            db: &db,
            origin: NodeId(0),
        };
        let snap = est.evaluate(&ctx, &query(&db), &mut op, &mut rng).unwrap();
        for grp in &snap.groups {
            if grp.share >= est.min_share {
                assert!(grp.samples >= 60, "group {} got {}", grp.key, grp.samples);
            }
        }
        // The smallest (20 %) group needs ~60/0.2 = 300 qualifying draws.
        assert!(snap.samples >= 250, "total draws {}", snap.samples);
    }

    #[test]
    fn respects_predicate() {
        let (g, db) = world(5);
        let schema = db.schema().clone();
        let mut q = query(&db);
        q.predicate = Predicate::parse("region != 1", &schema).unwrap();
        let est = GroupedEstimator::default();
        let mut op = operator();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let ctx = TickContext {
            tick: 0,
            graph: &g,
            db: &db,
            origin: NodeId(0),
        };
        let snap = est.evaluate(&ctx, &q, &mut op, &mut rng).unwrap();
        assert!(snap.group(1).is_none(), "excluded group must not appear");
        assert_eq!(snap.groups.len(), 2);
        // Shares renormalise over the qualifying sub-population: 5/7, 2/7.
        let g0 = snap.group(0).unwrap();
        assert!((g0.share - 5.0 / 7.0).abs() < 0.08, "share {}", g0.share);
    }

    #[test]
    fn grouping_by_computed_expression() {
        // Group by a derived bucket: floor-ish via rounding temp/20.
        let (g, db) = world(7);
        let schema = db.schema().clone();
        let q = GroupedQuery {
            expr: Expr::attr(&schema, "temp").unwrap(),
            group_by: Expr::parse("temp / 20", &schema).unwrap(),
            predicate: Predicate::True,
        };
        let est = GroupedEstimator::default();
        let mut op = operator();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let ctx = TickContext {
            tick: 0,
            graph: &g,
            db: &db,
            origin: NodeId(0),
        };
        let snap = est.evaluate(&ctx, &q, &mut op, &mut rng).unwrap();
        // Temps cluster near 50/70/90 → buckets round(2.5)=2|3, 3.5→3|4, 4.5→4|5.
        assert!(snap.groups.len() >= 3, "buckets: {:?}", snap.groups);
        for grp in &snap.groups {
            // Bucket key ≈ avg/20 by construction.
            assert!(
                (grp.avg / 20.0 - grp.key as f64).abs() <= 0.6,
                "bucket {} vs avg {}",
                grp.key,
                grp.avg
            );
        }
    }

    #[test]
    fn caps_total_draws() {
        let (g, db) = world(9);
        let est = GroupedEstimator {
            min_group_samples: 10_000, // unreachable
            max_samples: 300,
            ..Default::default()
        };
        let mut op = operator();
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let ctx = TickContext {
            tick: 0,
            graph: &g,
            db: &db,
            origin: NodeId(0),
        };
        let snap = est.evaluate(&ctx, &query(&db), &mut op, &mut rng).unwrap();
        assert!(snap.samples <= 300);
        assert!(!snap.groups.is_empty());
    }
}
