//! Repeated sampling (`RPT`, paper §IV-B2).
//!
//! The first snapshot of a continuous query is evaluated exactly like
//! independent sampling, but the drawn samples are *kept* as a panel. At
//! every later occasion:
//!
//! 1. the required panel size `n` is solved from the repeated-sampling
//!    variance formula (Eq. 10) under the current `ρ̂`, `σ̂` — by Eq. 11
//!    a factor `2/(1+√(1−ρ̂²))` smaller than the CLT size INDEP needs;
//! 2. the panel is partitioned optimally (Eq. 9): `g_opt` samples are
//!    *retained* and revisited (cheap — the nodes are already located),
//!    the rest replaced by fresh walks; tuples that died or whose node
//!    left are detected on revisit and silently become fresh draws
//!    (§IV-B2a's forced-replacement rule);
//! 3. the reported result combines the regression estimate over the
//!    retained pairs with the fresh-sample mean, inverse-variance
//!    weighted (Eq. 7, Table 1);
//! 4. `ρ̂` and `σ̂` are refreshed from this occasion's panel for the next
//!    round (an exponential moving average keeps single-occasion noise
//!    from whipsawing the replacement policy).

use crate::error::CoreError;
use crate::indep::{IndependentEstimator, SnapshotEstimate};
use crate::panel::{PanelEntry, SamplePanel};
use crate::query::Precision;
use crate::system::TickContext;
use crate::Result;
use digest_db::{Expr, Predicate};
use digest_sampling::SamplingOperator;
use digest_stats::repeated::{combined_estimate, optimal_partition, required_panel_size};
use digest_telemetry::{registry as telemetry, Field};
use rand::RngCore;

/// Tuning of the repeated-sampling estimator (`RPT`, paper §IV-B2).
#[derive(Debug, Clone, Copy)]
pub struct RptConfig {
    /// Pilot size for the first (independent) occasion.
    pub pilot_size: usize,
    /// Hard cap on samples per occasion.
    pub max_samples: usize,
    /// Messages to revisit one retained sample (direct request + reply —
    /// the node is already located, no walk needed).
    pub revisit_cost: u64,
    /// Messages wasted discovering that a retained sample's node is gone
    /// (timed-out probe).
    pub lost_probe_cost: u64,
    /// EMA weight given to the newest `ρ̂` observation (0 = frozen,
    /// 1 = no smoothing).
    pub rho_smoothing: f64,
    /// EMA weight given to the newest `σ̂²` observation. Smoothing matters:
    /// sizing is convex in σ̂², so raw per-occasion noise systematically
    /// inflates the average panel.
    pub sigma_smoothing: f64,
    /// Minimum retained pairs for the regression to be trusted; below
    /// this the occasion degrades to a plain fresh-mean estimate.
    pub min_retained_pairs: usize,
    /// Forward regression (paper §VIII future work): after each occasion,
    /// regress the retained samples' *previous* values on their current
    /// ones to retro-correct the previous occasion's reported result.
    /// The correction is exposed through
    /// [`RepeatedEstimator::last_forward_correction`]; it never rewrites
    /// the already-reported history on its own.
    pub forward_correction: bool,
}

impl Default for RptConfig {
    fn default() -> Self {
        Self {
            pilot_size: 30,
            max_samples: 20_000,
            revisit_cost: 2,
            lost_probe_cost: 1,
            rho_smoothing: 0.5,
            sigma_smoothing: 0.3,
            min_retained_pairs: 5,
            forward_correction: false,
        }
    }
}

/// A retro-correction of the previous occasion's estimate produced by
/// forward regression (the backward use of the §IV-B2 regression pair).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForwardCorrection {
    /// The tick/occasion index the correction refers to (k−1, counted in
    /// evaluations of this estimator).
    pub occasion: u64,
    /// The estimate as originally reported.
    pub original: f64,
    /// The corrected estimate after folding in occasion k's information.
    pub corrected: f64,
}

/// The repeated-sampling estimator (`RPT`, paper §IV-B2), stateful across
/// occasions: sizes the panel with Eq. 10, splits it with Eq. 9.
#[derive(Debug, Clone)]
pub struct RepeatedEstimator {
    config: RptConfig,
    panel: SamplePanel,
    prev_estimate: Option<f64>,
    prev_variance: Option<f64>,
    rho_hat: Option<f64>,
    sigma_hat: Option<f64>,
    occasions_evaluated: u64,
    last_forward_correction: Option<ForwardCorrection>,
}

impl RepeatedEstimator {
    /// Creates an estimator.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for out-of-range settings.
    pub fn new(config: RptConfig) -> Result<Self> {
        if config.pilot_size < 2 {
            return Err(CoreError::InvalidConfig {
                reason: "pilot_size must be at least 2",
            });
        }
        if config.max_samples < config.pilot_size {
            return Err(CoreError::InvalidConfig {
                reason: "max_samples must cover the pilot",
            });
        }
        if !(0.0..=1.0).contains(&config.rho_smoothing) {
            return Err(CoreError::InvalidConfig {
                reason: "rho_smoothing must be in [0, 1]",
            });
        }
        if !(0.0..=1.0).contains(&config.sigma_smoothing) {
            return Err(CoreError::InvalidConfig {
                reason: "sigma_smoothing must be in [0, 1]",
            });
        }
        Ok(Self {
            config,
            panel: SamplePanel::new(),
            prev_estimate: None,
            prev_variance: None,
            rho_hat: None,
            sigma_hat: None,
            occasions_evaluated: 0,
            last_forward_correction: None,
        })
    }

    /// The retro-correction produced by the most recent occasion, when
    /// forward regression is enabled and enough retained pairs survived.
    #[must_use]
    pub fn last_forward_correction(&self) -> Option<ForwardCorrection> {
        self.last_forward_correction
    }

    /// The current correlation estimate `ρ̂` (None before the second
    /// occasion).
    #[must_use]
    pub fn rho_hat(&self) -> Option<f64> {
        self.rho_hat
    }

    /// Current panel size.
    #[must_use]
    pub fn panel_len(&self) -> usize {
        self.panel.len()
    }

    /// Forgets all cross-occasion state (used after a detected regime
    /// change).
    pub fn reset(&mut self) {
        self.panel.clear();
        self.prev_estimate = None;
        self.prev_variance = None;
        self.rho_hat = None;
        self.sigma_hat = None;
        self.last_forward_correction = None;
    }

    /// Evaluates one snapshot occasion.
    ///
    /// # Errors
    ///
    /// Sampling/database errors (e.g. an empty relation).
    pub fn evaluate(
        &mut self,
        ctx: &TickContext<'_>,
        expr: &Expr,
        predicate: &Predicate,
        precision: &Precision,
        operator: &mut SamplingOperator,
        rng: &mut dyn RngCore,
    ) -> Result<SnapshotEstimate> {
        if self.prev_estimate.is_none() || self.panel.is_empty() {
            return self.first_occasion(ctx, expr, predicate, precision, operator, rng);
        }
        self.kth_occasion(ctx, expr, predicate, precision, operator, rng)
    }

    /// Occasion 1 (and recovery after reset): independent sampling that
    /// builds the initial panel.
    fn first_occasion(
        &mut self,
        ctx: &TickContext<'_>,
        expr: &Expr,
        predicate: &Predicate,
        precision: &Precision,
        operator: &mut SamplingOperator,
        rng: &mut dyn RngCore,
    ) -> Result<SnapshotEstimate> {
        let indep = IndependentEstimator {
            pilot_size: self.config.pilot_size,
            max_samples: self.config.max_samples,
            build_panel: true,
        };
        let mut result = indep.evaluate(ctx, expr, predicate, precision, operator, rng)?;
        self.panel
            .replace(std::mem::take(&mut result.panel_for_next));
        self.prev_estimate = Some(result.estimate);
        self.prev_variance = Some(result.estimator_variance);
        self.sigma_hat = Some(result.sigma_hat);
        self.occasions_evaluated += 1;
        Ok(result)
    }

    /// Occasion `k ≥ 2`: the full repeated-sampling update.
    fn kth_occasion(
        &mut self,
        ctx: &TickContext<'_>,
        expr: &Expr,
        predicate: &Predicate,
        precision: &Precision,
        operator: &mut SamplingOperator,
        rng: &mut dyn RngCore,
    ) -> Result<SnapshotEstimate> {
        operator.begin_occasion();
        let trivial = predicate.is_trivial();
        let cfg = self.config;
        let Some(prev_estimate) = self.prev_estimate else {
            return Err(CoreError::InvalidConfig {
                reason: "repeated estimator reached occasion k >= 2 without a first occasion",
            });
        };
        let rho = self.rho_hat.unwrap_or(0.0);
        let sigma = self.sigma_hat.unwrap_or(0.0).max(1e-12);

        // 1. Size the panel from the RPT variance formula (Eq. 10).
        let target_var = precision.target_variance()?;
        let n = required_panel_size(sigma * sigma, rho, target_var)?
            .clamp(cfg.pilot_size, cfg.max_samples);

        // 2. Optimal partition (Eq. 9) and revisit of the retained part.
        let partition = optimal_partition(n, rho);
        let revisit = self
            .panel
            .revisit(ctx.db, expr, predicate, partition.retained);
        let g_live = revisit.cur_values.len();
        let mut messages =
            g_live as u64 * cfg.revisit_cost + revisit.lost as u64 * cfg.lost_probe_cost;

        // 3. Fresh draws: the replaced portion plus replacements for lost
        //    retained samples. With a nontrivial predicate, non-qualifying
        //    draws are rejected (they still cost their walk).
        let fresh_needed = n.saturating_sub(g_live).max(usize::from(g_live == 0));
        let mut fresh_values = Vec::with_capacity(fresh_needed);
        let mut fresh_entries = Vec::with_capacity(fresh_needed);
        let mut fresh_drawn = 0u64;
        let max_attempts = if trivial {
            fresh_needed
        } else {
            fresh_needed.saturating_mul(8).max(16)
        };
        // Rounds of batch draws through the deterministic parallel
        // executor: each round requests the remaining deficit (capped by
        // the attempt budget) in one `sample_tuples` batch.
        let mut attempts = 0usize;
        while fresh_values.len() < fresh_needed && attempts < max_attempts {
            let want = fresh_needed
                .saturating_sub(fresh_values.len())
                .min(max_attempts.saturating_sub(attempts))
                .max(1);
            attempts += want;
            let batch = operator.sample_tuples(ctx.graph, ctx.db, ctx.origin, want, rng)?;
            for (handle, tuple, cost) in batch {
                messages += cost.total();
                fresh_drawn += 1;
                if !trivial && !predicate.eval(&tuple).unwrap_or(false) {
                    continue;
                }
                let value = expr.eval(&tuple)?;
                if value.is_finite() {
                    fresh_values.push(value);
                    fresh_entries.push(PanelEntry {
                        handle,
                        prev_value: value,
                    });
                }
            }
        }

        // 4. Combined estimate (Eq. 7). With too few retained pairs the
        //    regression coefficient is noise — fall back to treating the
        //    retained current values as plain (fresh-like) observations.
        //    (No per-occasion variance top-up: the paper sizes once per
        //    occasion, and re-drawing on a noisy variance estimate would
        //    systematically inflate the panel.)
        let use_regression = g_live >= cfg.min_retained_pairs;
        let combined = if use_regression {
            combined_estimate(
                &fresh_values,
                &revisit.prev_values,
                &revisit.cur_values,
                prev_estimate,
            )?
        } else {
            let mut all = fresh_values.clone();
            all.extend_from_slice(&revisit.cur_values);
            combined_estimate(&all, &[], &[], prev_estimate)?
        };

        // 6. Refresh cross-occasion state (EMA on σ̂² — see RptConfig).
        let sigma_new = combined.sigma2_hat.sqrt();
        let old_s2 = self.sigma_hat.map_or(combined.sigma2_hat, |s| s * s);
        let smoothed_s2 = old_s2 + cfg.sigma_smoothing * (combined.sigma2_hat - old_s2);
        self.sigma_hat = Some(smoothed_s2.sqrt().max(1e-12));
        if use_regression {
            let observed = combined.rho_hat;
            let smoothed = match self.rho_hat {
                None => observed,
                Some(old) => old + cfg.rho_smoothing * (observed - old),
            };
            self.rho_hat = Some(smoothed.clamp(-0.999, 0.999));
        }
        // Forward regression (§VIII): retro-correct the *previous*
        // occasion's estimate using occasion k's information. Among the
        // retained pairs, regress previous values on current ones; the
        // corrected previous mean shifts the retained panel's old mean by
        // the amount occasion k's (better-informed) estimate implies.
        self.last_forward_correction = None;
        if cfg.forward_correction && use_regression {
            let pairs = digest_stats::PairedMoments::from_pairs(
                &revisit.cur_values,  // x: current values
                &revisit.prev_values, // y: previous values
            );
            let b_fwd = pairs.regression_slope();
            let retro = pairs.mean_y() + b_fwd * (combined.estimate - pairs.mean_x());
            // Inverse-variance combination with the original estimate.
            let rho2 = combined.rho_hat * combined.rho_hat;
            let var_retro = combined.sigma2_hat * (1.0 - rho2) / g_live.max(1) as f64
                + rho2 * combined.variance;
            let var_orig = self.prev_variance.unwrap_or(combined.variance).max(1e-12);
            let w_retro = 1.0 / var_retro.max(1e-12);
            let w_orig = 1.0 / var_orig;
            let corrected = (w_retro * retro + w_orig * prev_estimate) / (w_retro + w_orig);
            if corrected.is_finite() {
                self.last_forward_correction = Some(ForwardCorrection {
                    occasion: self.occasions_evaluated.saturating_sub(1),
                    original: prev_estimate,
                    corrected,
                });
            }
        }

        self.prev_estimate = Some(combined.estimate);
        self.prev_variance = Some(combined.variance);
        self.occasions_evaluated += 1;

        let mut next_panel = revisit.survivors;
        next_panel.extend(fresh_entries);
        self.panel.replace(next_panel);

        let retained_fraction = if n == 0 {
            0.0
        } else {
            partition.retained as f64 / n as f64
        };
        telemetry::CORE_RPT_RETAINED.add(g_live as u64);
        telemetry::CORE_RPT_FRESH.add(fresh_drawn);
        telemetry::CORE_RPT_RETAINED_FRACTION.set(retained_fraction);
        if digest_telemetry::events_enabled() {
            let mut fields = vec![
                ("estimator", Field::Str("RPT")),
                ("estimate", Field::F64(combined.estimate)),
                ("fresh", Field::U64(fresh_drawn)),
                ("retained", Field::U64(g_live as u64)),
                ("retained_fraction", Field::F64(retained_fraction)),
            ];
            if use_regression {
                fields.push(("rho", Field::F64(combined.rho_hat)));
            }
            digest_telemetry::emit("estimator.snapshot", &fields);
        }

        let qualifying = fresh_values.len() as u64 + g_live as u64;
        Ok(SnapshotEstimate {
            estimate: combined.estimate,
            fresh_samples: fresh_drawn,
            revisited_samples: g_live as u64,
            messages,
            sigma_hat: sigma_new,
            rho_hat: if use_regression {
                Some(combined.rho_hat)
            } else {
                None
            },
            estimator_variance: combined.variance,
            qualifying_samples: qualifying,
            selectivity: if fresh_drawn == 0 {
                1.0
            } else {
                fresh_values.len() as f64 / fresh_drawn as f64
            },
            panel_for_next: Vec::new(),
        })
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use digest_db::{P2PDatabase, Schema, Tuple, TupleHandle};
    use digest_net::{topology, Graph, NodeId};
    use digest_sampling::SamplingConfig;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    struct World {
        graph: Graph,
        db: P2PDatabase,
        handles: Vec<TupleHandle>,
        expr: Expr,
    }

    /// `nodes` complete-graph nodes, `per_node` tuples each, values
    /// N(mean, spread²)-ish via a deterministic RNG.
    fn world(nodes: u32, per_node: u32, mean: f64, spread: f64, seed: u64) -> World {
        let graph = topology::complete(nodes as usize).unwrap();
        let mut db = P2PDatabase::new(Schema::single("a"));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut handles = Vec::new();
        for v in 0..nodes {
            db.register_node(NodeId(v));
            for _ in 0..per_node {
                let noise: f64 = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
                let h = db
                    .insert(NodeId(v), Tuple::single(mean + spread * noise))
                    .unwrap();
                handles.push(h);
            }
        }
        let expr = Expr::first_attr(db.schema());
        World {
            graph,
            db,
            handles,
            expr,
        }
    }

    /// AR(1)-style drift of all tuples: x ← mean + rho (x − mean) + noise.
    fn drift(world: &mut World, rho: f64, noise: f64, rng: &mut ChaCha8Rng) {
        for &h in &world.handles {
            let x = world.db.read(h).unwrap().value(0).unwrap();
            let nv = rho * x + (1.0 - rho) * 50.0 + noise * (rng.gen_range(-1.0..1.0f64));
            world.db.update(h, &[nv]).unwrap();
        }
    }

    fn operator() -> SamplingOperator {
        SamplingOperator::new(SamplingConfig {
            walk_length: 40,
            reset_length: 8,
            continue_walks: true,
            workers: 1,
            cache_snapshots: true,
        })
        .unwrap()
    }

    fn ctx<'a>(w: &'a World) -> TickContext<'a> {
        TickContext {
            tick: 0,
            graph: &w.graph,
            db: &w.db,
            origin: NodeId(0),
        }
    }

    #[test]
    fn config_validation() {
        assert!(RepeatedEstimator::new(RptConfig {
            pilot_size: 1,
            ..Default::default()
        })
        .is_err());
        assert!(RepeatedEstimator::new(RptConfig {
            max_samples: 5,
            ..Default::default()
        })
        .is_err());
        assert!(RepeatedEstimator::new(RptConfig {
            rho_smoothing: 1.5,
            ..Default::default()
        })
        .is_err());
        assert!(RepeatedEstimator::new(RptConfig::default()).is_ok());
    }

    #[test]
    fn first_occasion_builds_panel() {
        let w = world(6, 20, 50.0, 8.0, 1);
        let mut est = RepeatedEstimator::new(RptConfig::default()).unwrap();
        let mut op = operator();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let precision = Precision::new(2.0, 2.0, 0.95).unwrap();
        let r = est
            .evaluate(
                &ctx(&w),
                &w.expr,
                &Predicate::True,
                &precision,
                &mut op,
                &mut rng,
            )
            .unwrap();
        assert!(r.fresh_samples > 0);
        assert_eq!(r.revisited_samples, 0);
        assert_eq!(est.panel_len() as u64, r.fresh_samples);
        assert!(est.rho_hat().is_none());
    }

    #[test]
    fn later_occasions_revisit_and_learn_rho() {
        let mut w = world(6, 30, 50.0, 8.0, 3);
        let mut est = RepeatedEstimator::new(RptConfig::default()).unwrap();
        let mut op = operator();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let precision = Precision::new(2.0, 1.5, 0.95).unwrap();

        est.evaluate(
            &ctx(&w),
            &w.expr,
            &Predicate::True,
            &precision,
            &mut op,
            &mut rng,
        )
        .unwrap();
        // Highly autocorrelated drift.
        drift(&mut w, 0.95, 0.5, &mut rng);
        let r2 = est
            .evaluate(
                &ctx(&w),
                &w.expr,
                &Predicate::True,
                &precision,
                &mut op,
                &mut rng,
            )
            .unwrap();
        assert!(
            r2.revisited_samples > 0,
            "second occasion must retain samples"
        );
        assert!(r2.rho_hat.is_some());
        drift(&mut w, 0.95, 0.5, &mut rng);
        let r3 = est
            .evaluate(
                &ctx(&w),
                &w.expr,
                &Predicate::True,
                &precision,
                &mut op,
                &mut rng,
            )
            .unwrap();
        // With high correlation the learned rho should be high.
        assert!(
            est.rho_hat().unwrap() > 0.6,
            "learned ρ̂ = {:?} too low",
            est.rho_hat()
        );
        // And the retained portion should dominate (g_opt > n/2).
        assert!(
            r3.revisited_samples >= r3.fresh_samples,
            "retained {} < fresh {}",
            r3.revisited_samples,
            r3.fresh_samples
        );
    }

    #[test]
    fn rpt_uses_fewer_total_samples_than_indep_under_high_correlation() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let precision = Precision::new(2.0, 1.0, 0.95).unwrap();
        let occasions = 8;

        // RPT run.
        let mut w = world(6, 60, 50.0, 8.0, 6);
        let mut rpt = RepeatedEstimator::new(RptConfig::default()).unwrap();
        let mut op_rpt = operator();
        let mut rpt_total = 0u64;
        let mut rpt_first = 0u64;
        for k in 0..occasions {
            let r = rpt
                .evaluate(
                    &ctx(&w),
                    &w.expr,
                    &Predicate::True,
                    &precision,
                    &mut op_rpt,
                    &mut rng,
                )
                .unwrap();
            if k == 0 {
                rpt_first = r.total_samples();
            } else {
                rpt_total += r.total_samples();
            }
            drift(&mut w, 0.97, 0.4, &mut rng);
        }

        // INDEP run on an identically re-seeded world.
        let mut w2 = world(6, 60, 50.0, 8.0, 6);
        let indep = IndependentEstimator::default();
        let mut op_ind = operator();
        let mut ind_total = 0u64;
        let mut ind_first = 0u64;
        for k in 0..occasions {
            let r = indep
                .evaluate(
                    &ctx(&w2),
                    &w2.expr,
                    &Predicate::True,
                    &precision,
                    &mut op_ind,
                    &mut rng,
                )
                .unwrap();
            if k == 0 {
                ind_first = r.fresh_samples;
            } else {
                ind_total += r.fresh_samples;
            }
            drift(&mut w2, 0.97, 0.4, &mut rng);
        }

        // First occasions are equivalent by construction.
        let _ = (rpt_first, ind_first);
        assert!(
            (rpt_total as f64) < 0.9 * ind_total as f64,
            "RPT {rpt_total} should use notably fewer samples than INDEP {ind_total}"
        );
    }

    #[test]
    fn deleted_panel_tuples_are_replaced() {
        let mut w = world(6, 10, 50.0, 4.0, 7);
        let mut est = RepeatedEstimator::new(RptConfig::default()).unwrap();
        let mut op = operator();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let precision = Precision::new(2.0, 2.0, 0.95).unwrap();

        est.evaluate(
            &ctx(&w),
            &w.expr,
            &Predicate::True,
            &precision,
            &mut op,
            &mut rng,
        )
        .unwrap();
        // Nuke one node's fragment entirely (node leaves).
        w.db.remove_node(NodeId(3)).unwrap();
        let r2 = est
            .evaluate(
                &ctx(&w),
                &w.expr,
                &Predicate::True,
                &precision,
                &mut op,
                &mut rng,
            )
            .unwrap();
        // No stale handle may survive into the new panel.
        assert!(r2.estimate.is_finite());
        for e in est.panel.entries() {
            assert!(w.db.read(e.handle).is_ok(), "stale handle in panel");
        }
    }

    #[test]
    fn estimates_track_the_truth() {
        let mut w = world(8, 40, 50.0, 6.0, 9);
        let mut est = RepeatedEstimator::new(RptConfig::default()).unwrap();
        let mut op = operator();
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let precision = Precision::new(2.0, 1.0, 0.95).unwrap();

        let mut hits = 0;
        let occasions = 12;
        for _ in 0..occasions {
            let r = est
                .evaluate(
                    &ctx(&w),
                    &w.expr,
                    &Predicate::True,
                    &precision,
                    &mut op,
                    &mut rng,
                )
                .unwrap();
            let truth = w.db.exact_avg(&w.expr).unwrap();
            if (r.estimate - truth).abs() <= precision.epsilon {
                hits += 1;
            }
            drift(&mut w, 0.9, 1.0, &mut rng);
        }
        assert!(hits >= occasions - 2, "only {hits}/{occasions} within ±ε");
    }

    #[test]
    fn reset_recovers_first_occasion_behaviour() {
        let w = world(5, 10, 20.0, 2.0, 11);
        let mut est = RepeatedEstimator::new(RptConfig::default()).unwrap();
        let mut op = operator();
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let precision = Precision::new(1.0, 1.0, 0.95).unwrap();
        est.evaluate(
            &ctx(&w),
            &w.expr,
            &Predicate::True,
            &precision,
            &mut op,
            &mut rng,
        )
        .unwrap();
        est.reset();
        assert_eq!(est.panel_len(), 0);
        let r = est
            .evaluate(
                &ctx(&w),
                &w.expr,
                &Predicate::True,
                &precision,
                &mut op,
                &mut rng,
            )
            .unwrap();
        assert_eq!(r.revisited_samples, 0, "post-reset occasion is independent");
    }

    #[test]
    fn forward_correction_improves_previous_estimates() {
        // Run many occasions with forward correction on; the corrected
        // retro-estimates must, on average, be at least as close to the
        // oracle truth as the originally reported ones.
        let mut w = world(6, 40, 50.0, 8.0, 21);
        let mut est = RepeatedEstimator::new(RptConfig {
            forward_correction: true,
            ..RptConfig::default()
        })
        .unwrap();
        let mut op = operator();
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let precision = Precision::new(2.0, 1.5, 0.95).unwrap();

        let mut prev_truth = 0.0;
        let mut err_original = 0.0;
        let mut err_corrected = 0.0;
        let mut corrections = 0u32;
        for k in 0..25 {
            let truth = w.db.exact_avg(&w.expr).unwrap();
            est.evaluate(
                &ctx(&w),
                &w.expr,
                &Predicate::True,
                &precision,
                &mut op,
                &mut rng,
            )
            .unwrap();
            if k > 0 {
                if let Some(c) = est.last_forward_correction() {
                    err_original += (c.original - prev_truth).abs();
                    err_corrected += (c.corrected - prev_truth).abs();
                    corrections += 1;
                }
            }
            prev_truth = truth;
            drift(&mut w, 0.95, 0.5, &mut rng);
        }
        assert!(corrections >= 20, "corrections produced: {corrections}");
        assert!(
            err_corrected <= err_original * 1.05,
            "forward correction should not hurt: corrected {err_corrected} vs original {err_original}"
        );
    }

    #[test]
    fn forward_correction_is_off_by_default() {
        let w = world(5, 10, 20.0, 2.0, 23);
        let mut est = RepeatedEstimator::new(RptConfig::default()).unwrap();
        let mut op = operator();
        let mut rng = ChaCha8Rng::seed_from_u64(24);
        let precision = Precision::new(1.0, 1.0, 0.95).unwrap();
        for _ in 0..3 {
            est.evaluate(
                &ctx(&w),
                &w.expr,
                &Predicate::True,
                &precision,
                &mut op,
                &mut rng,
            )
            .unwrap();
        }
        assert!(est.last_forward_correction().is_none());
    }

    #[test]
    fn revisit_messages_are_cheap() {
        let mut w = world(6, 40, 50.0, 8.0, 13);
        let mut est = RepeatedEstimator::new(RptConfig::default()).unwrap();
        let mut op = operator();
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let precision = Precision::new(2.0, 1.5, 0.95).unwrap();
        est.evaluate(
            &ctx(&w),
            &w.expr,
            &Predicate::True,
            &precision,
            &mut op,
            &mut rng,
        )
        .unwrap();
        drift(&mut w, 0.95, 0.5, &mut rng);
        drift(&mut w, 0.95, 0.5, &mut rng);
        let r = est
            .evaluate(
                &ctx(&w),
                &w.expr,
                &Predicate::True,
                &precision,
                &mut op,
                &mut rng,
            )
            .unwrap();
        // Messages must be far below what fresh-walking every sample costs
        // (walk_length = 40 ⇒ ≈ 20+ messages per fresh sample).
        let all_fresh_cost = r.total_samples() * 21;
        assert!(
            r.messages < all_fresh_cost,
            "messages {} not cheaper than all-fresh {}",
            r.messages,
            all_fresh_cost
        );
    }
}
