//! Snapshot schedulers: when to execute the next snapshot query.
//!
//! * [`AllScheduler`] — the naive continuous-querying policy (`ALL` in the
//!   paper's figures): a snapshot every tick.
//! * [`PredScheduler`] — `PRED-k` (paper §IV-A): fit a Taylor polynomial
//!   to the last `k` snapshot results and skip ahead to the earliest tick
//!   at which the predicted drift plus the Lagrange remainder bound can
//!   reach the resolution threshold `δ`.

use crate::error::CoreError;
use crate::Result;
use digest_stats::{Extrapolator, ExtrapolatorConfig};
use digest_telemetry::{registry as telemetry, Field};

/// Decides the gap (in ticks) until the next snapshot query (the
/// continual-querying half of paper §IV-A).
pub trait SnapshotScheduler {
    /// Short name for experiment tables (`"ALL"`, `"PRED3"`, …).
    fn name(&self) -> &str;

    /// Records the snapshot result observed at time `t`.
    fn observe(&mut self, t: f64, estimate: f64);

    /// Ticks to wait before the next snapshot (≥ 1), given the query's
    /// resolution `δ`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for invalid `δ` (engine-validated, so
    /// unreachable in normal use).
    fn next_delay(&mut self, delta: f64) -> Result<u64>;

    /// Forgets accumulated history (regime change).
    fn reset(&mut self);
}

/// Snapshot every tick (`ALL` in the paper's §VI figures).
#[derive(Debug, Clone, Default)]
pub struct AllScheduler;

impl AllScheduler {
    /// Creates the scheduler.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl SnapshotScheduler for AllScheduler {
    fn name(&self) -> &str {
        "ALL"
    }

    fn observe(&mut self, _t: f64, _estimate: f64) {}

    fn next_delay(&mut self, _delta: f64) -> Result<u64> {
        telemetry::CORE_SCHEDULER_DECISIONS.inc();
        telemetry::CORE_SCHEDULER_DELAY.record(1);
        if digest_telemetry::events_enabled() {
            digest_telemetry::emit(
                "scheduler.decision",
                &[("scheduler", Field::Str("ALL")), ("delay", Field::U64(1))],
            );
        }
        Ok(1)
    }

    fn reset(&mut self) {}
}

/// The `PRED-k` extrapolating scheduler (paper §IV-A, Eq. 4): Taylor-fit
/// the last `k` results and skip to the earliest possible `δ`-drift tick.
#[derive(Debug, Clone)]
pub struct PredScheduler {
    name: String,
    extrapolator: Extrapolator,
}

impl PredScheduler {
    /// Creates `PRED-k` with default safety settings.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if `k == 0`.
    pub fn new(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "PRED-k requires k >= 1",
            });
        }
        Self::with_config(ExtrapolatorConfig::pred(k))
    }

    /// Creates a scheduler with full control over the extrapolator.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for invalid extrapolator settings.
    pub fn with_config(config: ExtrapolatorConfig) -> Result<Self> {
        let name = format!("PRED{}", config.history);
        let extrapolator = Extrapolator::new(config).map_err(|_| CoreError::InvalidConfig {
            reason: "invalid extrapolator config",
        })?;
        Ok(Self { name, extrapolator })
    }
}

impl SnapshotScheduler for PredScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn observe(&mut self, t: f64, estimate: f64) {
        self.extrapolator.observe(t, estimate);
    }

    fn next_delay(&mut self, delta: f64) -> Result<u64> {
        let prediction = self.extrapolator.predict(delta)?;
        let delay = prediction.next_update_in.max(1);
        telemetry::CORE_SCHEDULER_DECISIONS.inc();
        telemetry::CORE_SCHEDULER_DELAY.record(delay);
        if digest_telemetry::events_enabled() {
            let mut fields = vec![
                ("scheduler", Field::Str(&self.name)),
                ("delay", Field::U64(delay)),
                ("bootstrapping", Field::Bool(prediction.bootstrapping)),
            ];
            // During bootstrap the bound is +∞, which JSON cannot carry.
            if prediction.derivative_bound.is_finite() {
                fields.push(("derivative_bound", Field::F64(prediction.derivative_bound)));
            }
            digest_telemetry::emit("scheduler.decision", &fields);
        }
        Ok(delay)
    }

    fn reset(&mut self) {
        self.extrapolator.reset();
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    #[test]
    fn all_scheduler_is_every_tick() {
        let mut s = AllScheduler::new();
        s.observe(0.0, 1.0);
        assert_eq!(s.next_delay(5.0).unwrap(), 1);
        assert_eq!(s.name(), "ALL");
    }

    #[test]
    fn pred_scheduler_name_and_validation() {
        assert!(PredScheduler::new(0).is_err());
        let s = PredScheduler::new(3).unwrap();
        assert_eq!(s.name(), "PRED3");
    }

    #[test]
    fn pred_bootstraps_then_skips_on_steady_signal() {
        let mut s = PredScheduler::new(3).unwrap();
        // During bootstrap: every tick.
        for t in 0..4 {
            assert_eq!(s.next_delay(5.0).unwrap(), 1, "bootstrap tick {t}");
            s.observe(t as f64, 100.0);
        }
        // Steady signal: now the scheduler can skip far ahead.
        let d = s.next_delay(5.0).unwrap();
        assert!(d > 5, "steady signal should skip ahead, got {d}");
    }

    #[test]
    fn pred_tracks_fast_signal_closely() {
        let mut s = PredScheduler::new(3).unwrap();
        for t in 0..6 {
            s.observe(t as f64, 10.0 * t as f64);
        }
        let d = s.next_delay(5.0).unwrap();
        // Slope 10 per tick, δ = 5 → must re-snapshot almost immediately.
        assert_eq!(d, 1, "fast drift must not be skipped, got {d}");
    }

    #[test]
    fn pred_reset_restores_bootstrap() {
        let mut s = PredScheduler::new(2).unwrap();
        for t in 0..5 {
            s.observe(t as f64, 1.0);
        }
        assert!(s.next_delay(10.0).unwrap() > 1);
        s.reset();
        assert_eq!(s.next_delay(10.0).unwrap(), 1);
    }

    #[test]
    fn schedulers_are_object_safe() {
        let mut boxed: Vec<Box<dyn SnapshotScheduler>> = vec![
            Box::new(AllScheduler::new()),
            Box::new(PredScheduler::new(2).unwrap()),
        ];
        for s in boxed.iter_mut() {
            s.observe(0.0, 1.0);
            assert!(s.next_delay(1.0).unwrap() >= 1);
        }
    }
}
