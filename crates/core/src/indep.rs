//! Independent sampling (`INDEP`, paper §IV-B1).
//!
//! Every snapshot query draws a fresh uniform-with-replacement sample of
//! the relation, sized by the central limit theorem (Eq. 6):
//! `n = (σ z_p / ε)²`. The unknown `σ` is estimated sequentially: a pilot
//! batch seeds `σ̂`, then sampling continues until the CLT requirement is
//! met under the running estimate (the standard two-phase/sequential
//! procedure for on-the-fly sampling).

use crate::error::CoreError;
use crate::panel::PanelEntry;
use crate::query::Precision;
use crate::system::TickContext;
use crate::Result;
use digest_db::{Expr, Predicate};
use digest_sampling::SamplingOperator;
use digest_stats::{required_sample_size, RunningMoments};
use rand::RngCore;

/// The outcome of evaluating one snapshot query (§IV-B; carries the
/// `σ̂`/`ρ̂` diagnostics that feed Eq. 6 and Eq. 10 sizing).
#[derive(Debug, Clone)]
pub struct SnapshotEstimate {
    /// Estimated mean of the expression over the relation.
    pub estimate: f64,
    /// Fresh samples drawn through the sampling operator.
    pub fresh_samples: u64,
    /// Retained samples revisited (0 for independent sampling).
    pub revisited_samples: u64,
    /// Messages spent (walks + reports + revisits).
    pub messages: u64,
    /// Estimated value standard deviation `σ̂` at this occasion.
    pub sigma_hat: f64,
    /// Correlation `ρ̂` between consecutive occasions, when the estimator
    /// observes one (repeated sampling only).
    pub rho_hat: Option<f64>,
    /// Estimated variance of `estimate` itself.
    pub estimator_variance: f64,
    /// Samples that satisfied the query predicate (= all samples for the
    /// trivial predicate).
    pub qualifying_samples: u64,
    /// Measured selectivity `qualifying / drawn` (1 for the trivial
    /// predicate).
    pub selectivity: f64,
    /// Panel to retain for the next occasion (empty for independent
    /// sampling).
    pub panel_for_next: Vec<PanelEntry>,
}

impl SnapshotEstimate {
    /// Total samples evaluated this occasion.
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.fresh_samples + self.revisited_samples
    }
}

/// The independent-sampling estimator (`INDEP`, paper §IV-B1): fresh
/// CLT-sized sample every occasion (Eq. 6).
#[derive(Debug, Clone, Copy)]
pub struct IndependentEstimator {
    /// Pilot batch size used to seed `σ̂`.
    pub pilot_size: usize,
    /// Hard cap on samples per snapshot (guards against pathological
    /// variance estimates).
    pub max_samples: usize,
    /// Whether to keep the drawn samples as a panel (used when repeated
    /// sampling delegates its first occasion here).
    pub build_panel: bool,
}

impl Default for IndependentEstimator {
    fn default() -> Self {
        Self {
            pilot_size: 30,
            max_samples: 20_000,
            build_panel: false,
        }
    }
}

impl IndependentEstimator {
    /// Creates an estimator.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if `pilot_size < 2` or
    /// `max_samples < pilot_size`.
    pub fn new(pilot_size: usize, max_samples: usize, build_panel: bool) -> Result<Self> {
        if pilot_size < 2 {
            return Err(CoreError::InvalidConfig {
                reason: "pilot_size must be at least 2",
            });
        }
        if max_samples < pilot_size {
            return Err(CoreError::InvalidConfig {
                reason: "max_samples must cover the pilot",
            });
        }
        Ok(Self {
            pilot_size,
            max_samples,
            build_panel,
        })
    }

    /// Evaluates one snapshot query: estimates `AVG(expr)` over the
    /// sub-population satisfying `predicate` to the given precision.
    ///
    /// # Errors
    ///
    /// Sampling/database errors (e.g. an empty relation).
    pub fn evaluate(
        &self,
        ctx: &TickContext<'_>,
        expr: &Expr,
        predicate: &Predicate,
        precision: &Precision,
        operator: &mut SamplingOperator,
        rng: &mut dyn RngCore,
    ) -> Result<SnapshotEstimate> {
        operator.begin_occasion();
        let trivial = predicate.is_trivial();
        let mut moments = RunningMoments::new();
        let mut messages = 0u64;
        let mut panel = Vec::new();

        let mut drawn = 0u64;
        let mut qualifying = 0u64;
        // Rejection headroom: non-qualifying samples cost walks but carry
        // no information, so allow extra draws before giving up.
        let max_draws = if trivial {
            self.max_samples
        } else {
            self.max_samples.saturating_mul(4)
        };
        // Sequential rounds of batch draws: pilot first, then extend until
        // the CLT size is satisfied by the running σ̂ (sizes count
        // *qualifying* samples). Each round requests the current deficit
        // in one `sample_tuples` batch, which runs the occasion's walks
        // through the deterministic parallel executor.
        loop {
            let goal = if qualifying < self.pilot_size as u64 {
                self.pilot_size
            } else {
                let sigma = moments.sample_std();
                required_sample_size(sigma, precision.epsilon, precision.confidence)?
                    .min(self.max_samples)
            };
            if qualifying >= goal as u64 || drawn >= max_draws as u64 {
                break;
            }
            let deficit = goal.saturating_sub(usize::try_from(qualifying).unwrap_or(usize::MAX));
            let headroom = max_draws.saturating_sub(usize::try_from(drawn).unwrap_or(usize::MAX));
            let want = deficit.min(headroom).max(1);
            let batch = operator.sample_tuples(ctx.graph, ctx.db, ctx.origin, want, rng)?;
            for (handle, tuple, cost) in batch {
                messages += cost.total();
                drawn += 1;
                if !trivial && !predicate.eval(&tuple).unwrap_or(false) {
                    continue;
                }
                let value = expr.eval(&tuple)?;
                if value.is_finite() {
                    moments.push(value);
                    qualifying += 1;
                    if self.build_panel {
                        panel.push(PanelEntry {
                            handle,
                            prev_value: value,
                        });
                    }
                }
            }
        }

        if digest_telemetry::events_enabled() {
            digest_telemetry::emit(
                "estimator.snapshot",
                &[
                    ("estimator", digest_telemetry::Field::Str("INDEP")),
                    ("estimate", digest_telemetry::Field::F64(moments.mean())),
                    ("fresh", digest_telemetry::Field::U64(drawn)),
                    ("retained", digest_telemetry::Field::U64(0)),
                ],
            );
        }

        let n = moments.count().max(1) as f64;
        Ok(SnapshotEstimate {
            estimate: moments.mean(),
            fresh_samples: drawn,
            revisited_samples: 0,
            messages,
            sigma_hat: moments.sample_std(),
            rho_hat: None,
            estimator_variance: moments.sample_variance() / n,
            qualifying_samples: qualifying,
            selectivity: if drawn == 0 {
                1.0
            } else {
                qualifying as f64 / drawn as f64
            },
            panel_for_next: panel,
        })
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use digest_db::{P2PDatabase, Schema, Tuple};
    use digest_net::{topology, NodeId};
    use digest_sampling::SamplingConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A complete graph of `nodes` nodes, each holding `per_node` tuples
    /// with values from a deterministic spread around `mean`.
    fn setup(
        nodes: u32,
        per_node: u32,
        mean: f64,
        spread: f64,
    ) -> (digest_net::Graph, P2PDatabase) {
        let g = topology::complete(nodes as usize).unwrap();
        let mut db = P2PDatabase::new(Schema::single("a"));
        let total = nodes * per_node;
        let mut k = 0u32;
        for v in 0..nodes {
            db.register_node(NodeId(v));
            for _ in 0..per_node {
                // Evenly spread values in [mean − spread, mean + spread].
                let frac = if total > 1 {
                    k as f64 / (total - 1) as f64
                } else {
                    0.5
                };
                let value = mean - spread + 2.0 * spread * frac;
                db.insert(NodeId(v), Tuple::single(value)).unwrap();
                k += 1;
            }
        }
        (g, db)
    }

    fn operator() -> SamplingOperator {
        SamplingOperator::new(SamplingConfig {
            walk_length: 40,
            reset_length: 8,
            continue_walks: true,
            workers: 1,
            cache_snapshots: true,
        })
        .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(IndependentEstimator::new(1, 100, false).is_err());
        assert!(IndependentEstimator::new(10, 5, false).is_err());
        assert!(IndependentEstimator::new(10, 100, false).is_ok());
    }

    #[test]
    fn estimates_mean_within_epsilon() {
        let (g, db) = setup(8, 25, 50.0, 10.0);
        let expr = Expr::first_attr(db.schema());
        let precision = Precision::new(1.0, 1.0, 0.95).unwrap();
        let est = IndependentEstimator::default();
        let mut op = operator();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ctx = TickContext {
            tick: 0,
            graph: &g,
            db: &db,
            origin: NodeId(0),
        };
        let truth = db.exact_avg(&expr).unwrap();

        let mut hits = 0;
        let trials = 20;
        for _ in 0..trials {
            let r = est
                .evaluate(&ctx, &expr, &Predicate::True, &precision, &mut op, &mut rng)
                .unwrap();
            if (r.estimate - truth).abs() <= precision.epsilon {
                hits += 1;
            }
            assert!(r.fresh_samples >= 30);
            assert!(
                r.messages > r.fresh_samples,
                "walks cost more than one message"
            );
        }
        // 95% confidence → expect ≥ ~17/20 inside the interval.
        assert!(hits >= 16, "only {hits}/{trials} inside ±ε");
    }

    #[test]
    fn sample_count_scales_with_variance() {
        let precision = Precision::new(1.0, 1.0, 0.95).unwrap();
        let est = IndependentEstimator::default();
        let mut rng = ChaCha8Rng::seed_from_u64(2);

        let (g1, db1) = setup(6, 20, 100.0, 2.0); // low spread
        let ctx1 = TickContext {
            tick: 0,
            graph: &g1,
            db: &db1,
            origin: NodeId(0),
        };
        let e1 = Expr::first_attr(db1.schema());
        let mut op1 = operator();
        let r1 = est
            .evaluate(&ctx1, &e1, &Predicate::True, &precision, &mut op1, &mut rng)
            .unwrap();

        let (g2, db2) = setup(6, 20, 100.0, 20.0); // high spread
        let ctx2 = TickContext {
            tick: 0,
            graph: &g2,
            db: &db2,
            origin: NodeId(0),
        };
        let e2 = Expr::first_attr(db2.schema());
        let mut op2 = operator();
        let r2 = est
            .evaluate(&ctx2, &e2, &Predicate::True, &precision, &mut op2, &mut rng)
            .unwrap();

        assert!(
            r2.fresh_samples > 2 * r1.fresh_samples,
            "high-variance run should need far more samples: {} vs {}",
            r2.fresh_samples,
            r1.fresh_samples
        );
    }

    #[test]
    fn respects_max_samples_cap() {
        let (g, db) = setup(6, 20, 100.0, 50.0);
        let expr = Expr::first_attr(db.schema());
        // Brutally tight ε forces the cap.
        let precision = Precision::new(1.0, 0.01, 0.99).unwrap();
        let est = IndependentEstimator::new(10, 200, false).unwrap();
        let mut op = operator();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ctx = TickContext {
            tick: 0,
            graph: &g,
            db: &db,
            origin: NodeId(0),
        };
        let r = est
            .evaluate(&ctx, &expr, &Predicate::True, &precision, &mut op, &mut rng)
            .unwrap();
        assert!(r.fresh_samples <= 200);
    }

    #[test]
    fn builds_panel_when_asked() {
        let (g, db) = setup(4, 10, 10.0, 1.0);
        let expr = Expr::first_attr(db.schema());
        let precision = Precision::new(1.0, 0.5, 0.95).unwrap();
        let est = IndependentEstimator {
            build_panel: true,
            ..Default::default()
        };
        let mut op = operator();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let ctx = TickContext {
            tick: 0,
            graph: &g,
            db: &db,
            origin: NodeId(0),
        };
        let r = est
            .evaluate(&ctx, &expr, &Predicate::True, &precision, &mut op, &mut rng)
            .unwrap();
        assert_eq!(r.panel_for_next.len() as u64, r.fresh_samples);
        // Panel values are the observed values.
        for e in &r.panel_for_next {
            let t = db.read(e.handle).unwrap();
            assert_eq!(expr.eval(t).unwrap(), e.prev_value);
        }
    }

    #[test]
    fn constant_relation_needs_only_pilot() {
        let (g, db) = setup(5, 10, 42.0, 0.0);
        let expr = Expr::first_attr(db.schema());
        let precision = Precision::new(1.0, 0.5, 0.95).unwrap();
        let est = IndependentEstimator::default();
        let mut op = operator();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let ctx = TickContext {
            tick: 0,
            graph: &g,
            db: &db,
            origin: NodeId(0),
        };
        let r = est
            .evaluate(&ctx, &expr, &Predicate::True, &precision, &mut op, &mut rng)
            .unwrap();
        assert_eq!(r.fresh_samples, 30, "zero variance → pilot only");
        assert!((r.estimate - 42.0).abs() < 1e-12);
    }
}
