//! UDDSketch: a scale-invariant quantile sketch with uniform relative
//! value error (Epicoco et al., "UDDSketch"; trans/merge/final shape per
//! SNIPPETS.md 1–2).
//!
//! Values are binned into log-spaced buckets `(γ^{i−1}, γ^i]` with
//! `γ = (1+α)/(1−α)`; a quantile estimate read from bucket `i` is within
//! relative error `α` of the exact order statistic. When the bucket
//! count would exceed the configured cap, the sketch *collapses*:
//! every index maps to `⌈i/2⌉` and `γ ← γ²`, doubling the error bound
//! deterministically. Digest maps this value-space guarantee onto the
//! paper's fixed-precision `(ε, p)` contract (§II, Eq. 1) as an absolute
//! half-width on the reported quantile, audited per occasion (§VI).

use std::collections::BTreeMap;

use crate::error::SketchError;
use crate::Result;

/// Magic prefix of the canonical serialization (version 1).
const MAGIC: &[u8; 4] = b"UDD1";

/// Smallest bucket cap accepted by [`UddSketch::new`]; below this the
/// collapse loop would degenerate before reaching its fixed points.
const MIN_BUCKETS: usize = 8;

/// Log-bucketed quantile sketch with deterministic collapse.
///
/// Implements the paper's snapshot-mergeable aggregate shape (§IV
/// estimator machinery, DESIGN.md §17): [`UddSketch::accumulate`] is the
/// transition function, [`UddSketch::merge`] combines partials from
/// different sample panels or occasions, [`UddSketch::quantile`]
/// finalizes, and [`UddSketch::serialize`] gives a canonical byte form.
///
/// Merging first collapses both operands to the coarser of the two
/// γ-levels, unions the (BTree-ordered) buckets, then collapses further
/// while over the cap. Because the collapse map `i ↦ ⌈i/2⌉` commutes
/// with bucket union, the final level — and therefore the exact byte
/// serialization — is a pure function of the merged multiset: merges are
/// associative and commutative byte-for-byte, which the proptests pin.
#[derive(Debug, Clone, PartialEq)]
pub struct UddSketch {
    /// Initial relative accuracy α₀ (before any collapse).
    alpha0: f64,
    /// Number of collapses applied; current γ = γ₀^(2^collapses).
    collapses: u32,
    /// Cap on `neg.len() + pos.len()` before a collapse triggers.
    max_buckets: usize,
    /// Count of exactly-zero values (they have no log bucket).
    zero_count: u64,
    /// Buckets for negative values, keyed by the index of `|x|`.
    neg: BTreeMap<i64, u64>,
    /// Buckets for positive values.
    pos: BTreeMap<i64, u64>,
    /// Total accumulated count (zero + all buckets).
    count: u64,
}

impl UddSketch {
    /// Creates an empty sketch with initial accuracy `alpha0` and bucket
    /// cap `max_buckets` (the space/accuracy dial of the (ε, p) sizing
    /// in DESIGN.md §17; see paper §II for the contract it serves).
    pub fn new(alpha0: f64, max_buckets: usize) -> Result<Self> {
        if !alpha0.is_finite() || alpha0 <= 0.0 || alpha0 >= 1.0 {
            return Err(SketchError::InvalidConfig {
                reason: "alpha0 must be a finite value in (0, 1)",
            });
        }
        if max_buckets < MIN_BUCKETS {
            return Err(SketchError::InvalidConfig {
                reason: "max_buckets must be at least 8",
            });
        }
        Ok(Self {
            alpha0,
            collapses: 0,
            max_buckets,
            zero_count: 0,
            neg: BTreeMap::new(),
            pos: BTreeMap::new(),
            count: 0,
        })
    }

    /// Total number of accumulated values (the `n` of the rank
    /// arithmetic in Eq.-style quantile finalization).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been accumulated (§IV empty-snapshot hold
    /// paths check this before finalizing).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Current relative accuracy α after the collapses applied so far
    /// (doubles in γ per collapse; Epicoco et al. Thm. 1, cited in
    /// DESIGN.md §17 alongside the paper's §II contract).
    #[must_use]
    pub fn current_alpha(&self) -> f64 {
        let gamma = self.gamma();
        (gamma - 1.0) / (gamma + 1.0)
    }

    /// Number of live log buckets (both signs, excluding the zero cell);
    /// bounded by the `max_buckets` cap of the §II-sized configuration.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.neg.len() + self.pos.len()
    }

    fn gamma(&self) -> f64 {
        let gamma0 = (1.0 + self.alpha0) / (1.0 - self.alpha0);
        gamma0.powf(2f64.powf(f64::from(self.collapses)))
    }

    fn ln_gamma(&self) -> f64 {
        let gamma0 = (1.0 + self.alpha0) / (1.0 - self.alpha0);
        gamma0.ln() * 2f64.powf(f64::from(self.collapses))
    }

    fn bucket_index(&self, magnitude: f64) -> i64 {
        crate::f64_to_i64_saturating((magnitude.ln() / self.ln_gamma()).ceil())
    }

    /// Representative value of bucket `idx` (log-space midpoint
    /// `2γ^i / (γ+1)`, the UDDSketch finalizer; Eq. analogue of the
    /// paper's §IV point estimate for order statistics).
    fn bucket_value(&self, idx: i64) -> f64 {
        let gamma = self.gamma();
        let power = (self.ln_gamma() * idx as f64).exp();
        2.0 * power / (gamma + 1.0)
    }

    /// Folds one value into the sketch (the *trans* step of the
    /// aggregate shape; paper §IV sampling feeds values through here).
    /// Non-finite values are ignored so the fold stays total.
    pub fn accumulate(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count = self.count.saturating_add(1);
        if matches!(value.classify(), std::num::FpCategory::Zero) {
            self.zero_count = self.zero_count.saturating_add(1);
            return;
        }
        let idx = self.bucket_index(value.abs());
        let map = if value > 0.0 {
            &mut self.pos
        } else {
            &mut self.neg
        };
        *map.entry(idx).or_insert(0) += 1;
        while self.neg.len() + self.pos.len() > self.max_buckets {
            self.collapse_once();
        }
    }

    /// One collapse step: `i ↦ ⌈i/2⌉`, `γ ← γ²` (Epicoco et al. §3;
    /// deterministic, order-free, commutes with bucket union).
    fn collapse_once(&mut self) {
        self.neg = collapse_map(&self.neg);
        self.pos = collapse_map(&self.pos);
        self.collapses = self.collapses.saturating_add(1);
    }

    /// Merges another sketch into `self` (the *combine* step; lets
    /// sketch mass from different sample panels and occasions add up,
    /// paper §IV-B retain/replace semantics in DESIGN.md §17).
    ///
    /// Both operands must share `alpha0` and `max_buckets`. The result
    /// is byte-identical regardless of merge order or grouping.
    pub fn merge(&mut self, other: &UddSketch) -> Result<()> {
        if self.alpha0.to_bits() != other.alpha0.to_bits() {
            return Err(SketchError::MergeMismatch {
                reason: "UDDSketch merge requires identical alpha0",
            });
        }
        if self.max_buckets != other.max_buckets {
            return Err(SketchError::MergeMismatch {
                reason: "UDDSketch merge requires identical max_buckets",
            });
        }
        let mut other = other.clone();
        while self.collapses < other.collapses {
            self.collapse_once();
        }
        while other.collapses < self.collapses {
            other.collapse_once();
        }
        for (idx, n) in &other.neg {
            *self.neg.entry(*idx).or_insert(0) += n;
        }
        for (idx, n) in &other.pos {
            *self.pos.entry(*idx).or_insert(0) += n;
        }
        self.zero_count = self.zero_count.saturating_add(other.zero_count);
        self.count = self.count.saturating_add(other.count);
        while self.neg.len() + self.pos.len() > self.max_buckets {
            self.collapse_once();
        }
        Ok(())
    }

    /// Finalizes the sketch into the `q`-quantile estimate (rank walk
    /// over BTree-ordered buckets; `q` is clamped to `[0, 1]`). Returns
    /// `None` on an empty sketch so callers can apply the paper's §IV
    /// empty-snapshot hold rule instead of fabricating a value.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * ((self.count - 1) as f64);
        let mut cum: u64 = 0;
        // Negative values: larger |x| index means a more negative value,
        // so walk the negative buckets in descending index order.
        for (idx, n) in self.neg.iter().rev() {
            cum = cum.saturating_add(*n);
            if cum as f64 > target {
                return Some(-self.bucket_value(*idx));
            }
        }
        cum = cum.saturating_add(self.zero_count);
        if cum as f64 > target {
            return Some(0.0);
        }
        for (idx, n) in &self.pos {
            cum = cum.saturating_add(*n);
            if cum as f64 > target {
                return Some(self.bucket_value(*idx));
            }
        }
        // Rank walk always terminates inside the loop when count > 0;
        // fall back to the largest bucket for fp edge cases at q = 1.
        self.pos
            .keys()
            .next_back()
            .map(|idx| self.bucket_value(*idx))
            .or_else(|| self.neg.keys().next().map(|idx| -self.bucket_value(*idx)))
            .or(Some(0.0))
    }

    /// Canonical serialization: magic, α₀ bits, collapse level, cap,
    /// counts, then both bucket maps in BTree order (big-endian fixed
    /// width throughout), so equal sketches are equal byte strings —
    /// the replay/audit invariant of DESIGN.md §17 (paper §VI).
    #[must_use]
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48 + 16 * (self.neg.len() + self.pos.len()));
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.alpha0.to_bits().to_be_bytes());
        out.extend_from_slice(&u64::from(self.collapses).to_be_bytes());
        out.extend_from_slice(
            &u64::try_from(self.max_buckets)
                .unwrap_or(u64::MAX)
                .to_be_bytes(),
        );
        out.extend_from_slice(&self.count.to_be_bytes());
        out.extend_from_slice(&self.zero_count.to_be_bytes());
        for map in [&self.neg, &self.pos] {
            out.extend_from_slice(&u64::try_from(map.len()).unwrap_or(u64::MAX).to_be_bytes());
            for (idx, n) in map {
                out.extend_from_slice(&idx.to_be_bytes());
                out.extend_from_slice(&n.to_be_bytes());
            }
        }
        out
    }

    /// Inverse of [`UddSketch::serialize`]; validates the header, the
    /// parameter domains of [`UddSketch::new`], and that the embedded
    /// counts are consistent, so a round trip is byte-identical (the
    /// proptests of DESIGN.md §17 pin this against the §VI replay gate).
    pub fn deserialize(bytes: &[u8]) -> Result<Self> {
        let mut cursor = Cursor::new(bytes);
        let magic = cursor.take(4)?;
        if magic != MAGIC {
            return Err(SketchError::InvalidBytes {
                reason: "bad UDDSketch magic",
            });
        }
        let alpha0 = f64::from_bits(cursor.u64()?);
        if !alpha0.is_finite() || alpha0 <= 0.0 || alpha0 >= 1.0 {
            return Err(SketchError::InvalidBytes {
                reason: "alpha0 out of domain",
            });
        }
        let collapses_raw = cursor.u64()?;
        let collapses = u32::try_from(collapses_raw).map_err(|_| SketchError::InvalidBytes {
            reason: "collapse level overflows u32",
        })?;
        let max_buckets =
            usize::try_from(cursor.u64()?).map_err(|_| SketchError::InvalidBytes {
                reason: "max_buckets overflows usize",
            })?;
        if max_buckets < MIN_BUCKETS {
            return Err(SketchError::InvalidBytes {
                reason: "max_buckets below minimum",
            });
        }
        let count = cursor.u64()?;
        let zero_count = cursor.u64()?;
        let mut maps = [BTreeMap::new(), BTreeMap::new()];
        for map in &mut maps {
            let len = cursor.u64()?;
            let mut prev: Option<i64> = None;
            for _ in 0..len {
                let idx = cursor.i64()?;
                let n = cursor.u64()?;
                if prev.is_some_and(|p| p >= idx) {
                    return Err(SketchError::InvalidBytes {
                        reason: "bucket indices not strictly ascending",
                    });
                }
                if n == 0 {
                    return Err(SketchError::InvalidBytes {
                        reason: "empty bucket serialized",
                    });
                }
                prev = Some(idx);
                map.insert(idx, n);
            }
        }
        cursor.finish()?;
        let [neg, pos] = maps;
        let bucket_total: u64 = neg.values().chain(pos.values()).sum();
        if zero_count.saturating_add(bucket_total) != count {
            return Err(SketchError::InvalidBytes {
                reason: "count does not match buckets",
            });
        }
        if neg.len() + pos.len() > max_buckets {
            return Err(SketchError::InvalidBytes {
                reason: "bucket count exceeds cap",
            });
        }
        Ok(Self {
            alpha0,
            collapses,
            max_buckets,
            zero_count,
            neg,
            pos,
            count,
        })
    }
}

/// Applies the collapse index map `i ↦ ⌈i/2⌉` to one bucket map
/// (Epicoco et al. §3; pure function of the input, so it commutes with
/// union — the key associativity lemma of DESIGN.md §17).
fn collapse_map(map: &BTreeMap<i64, u64>) -> BTreeMap<i64, u64> {
    let mut out = BTreeMap::new();
    for (idx, n) in map {
        let merged = idx.saturating_add(1).div_euclid(2);
        *out.entry(merged).or_insert(0) += n;
    }
    out
}

/// Bounds-checked big-endian reader used by deserialization (keeps the
/// parser panic-free per R1; see §II on why estimator paths must not
/// panic).
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .at
            .checked_add(n)
            .filter(|end| *end <= self.bytes.len());
        let Some(end) = end else {
            return Err(SketchError::InvalidBytes {
                reason: "truncated buffer",
            });
        };
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u64(&mut self) -> Result<u64> {
        let raw = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(raw);
        Ok(u64::from_be_bytes(buf))
    }

    fn i64(&mut self) -> Result<i64> {
        let raw = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(raw);
        Ok(i64::from_be_bytes(buf))
    }

    fn finish(&self) -> Result<()> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(SketchError::InvalidBytes {
                reason: "trailing bytes",
            })
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
mod tests {
    use super::*;

    fn sketch_of(values: &[f64]) -> UddSketch {
        let mut s = UddSketch::new(1e-3, 64).unwrap();
        for v in values {
            s.accumulate(*v);
        }
        s
    }

    #[test]
    fn rejects_bad_config() {
        assert!(UddSketch::new(0.0, 64).is_err());
        assert!(UddSketch::new(1.0, 64).is_err());
        assert!(UddSketch::new(1e-3, 4).is_err());
    }

    #[test]
    fn median_of_small_set_is_relative_accurate() {
        let s = sketch_of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let est = s.quantile(0.5).unwrap();
        assert!(
            (est - 3.0).abs() <= 3.0 * 2.0 * s.current_alpha() + 1e-9,
            "est={est}"
        );
    }

    #[test]
    fn handles_negatives_and_zero() {
        let s = sketch_of(&[-5.0, -1.0, 0.0, 1.0, 5.0]);
        assert_eq!(s.count(), 5);
        let med = s.quantile(0.5).unwrap();
        assert!(med.abs() < 1e-9, "median should be ~0, got {med}");
        let lo = s.quantile(0.0).unwrap();
        assert!(lo < -4.9, "q0 should be near -5, got {lo}");
    }

    #[test]
    fn collapse_keeps_count_and_bounds_buckets() {
        let mut s = UddSketch::new(0.01, 8).unwrap();
        for i in 1..200 {
            s.accumulate(f64::from(i) * 1.37);
        }
        assert_eq!(s.count(), 199);
        assert!(s.bucket_count() <= 8);
        assert!(s.current_alpha() > 0.01);
        let est = s.quantile(0.5).unwrap();
        let exact = 100.0 * 1.37;
        assert!((est - exact).abs() <= exact * 2.0 * s.current_alpha() + 1e-9);
    }

    #[test]
    fn merge_equals_union_bytes() {
        let a = sketch_of(&[1.0, 2.0, 3.0]);
        let b = sketch_of(&[10.0, 20.0]);
        let all = sketch_of(&[1.0, 2.0, 3.0, 10.0, 20.0]);
        let mut m = a.clone();
        m.merge(&b).unwrap();
        assert_eq!(m.serialize(), all.serialize());
    }

    #[test]
    fn merge_rejects_mismatched_config() {
        let a = UddSketch::new(1e-3, 64).unwrap();
        let b = UddSketch::new(1e-2, 64).unwrap();
        let mut m = a.clone();
        assert!(m.merge(&b).is_err());
        let c = UddSketch::new(1e-3, 32).unwrap();
        let mut m = a;
        assert!(m.merge(&c).is_err());
    }

    #[test]
    fn serialize_round_trips() {
        let s = sketch_of(&[-3.5, 0.0, 0.25, 7.0, 7.0, 1e6]);
        let bytes = s.serialize();
        let back = UddSketch::deserialize(&bytes).unwrap();
        assert_eq!(back.serialize(), bytes);
        assert_eq!(back.quantile(0.5), s.quantile(0.5));
    }

    #[test]
    fn deserialize_rejects_corruption() {
        let s = sketch_of(&[1.0, 2.0]);
        let mut bytes = s.serialize();
        assert!(UddSketch::deserialize(&bytes[..bytes.len() - 1]).is_err());
        bytes[0] = b'X';
        assert!(UddSketch::deserialize(&bytes).is_err());
        let mut counterfeit = s.serialize();
        let len = counterfeit.len();
        // Flip the low byte of the trailing bucket count to break the
        // count-consistency check.
        counterfeit[len - 1] ^= 0xff;
        assert!(UddSketch::deserialize(&counterfeit).is_err());
    }

    #[test]
    fn empty_sketch_has_no_quantile() {
        let s = UddSketch::new(1e-3, 64).unwrap();
        assert!(s.quantile(0.5).is_none());
        assert!(s.is_empty());
    }
}
