//! Typed errors for the sketch crate.
//!
//! The R1 lint (panic-free library crates) forbids `unwrap`/`expect`
//! here; every fallible sketch operation threads one of these variants
//! instead so the (ε, p) guarantee of the paper (§II) is never voided by
//! a panicking estimator path.

use std::fmt;

/// Error raised by sketch construction, merging, or (de)serialization.
///
/// Carries only static context so the error path never allocates on a
/// per-tuple basis (R7 discipline; see DESIGN.md §17 and the paper's §II
/// precision contract these sketches serve).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SketchError {
    /// A sketch parameter was outside its documented domain.
    InvalidConfig {
        /// What was wrong with the configuration.
        reason: &'static str,
    },
    /// Two sketches with incompatible shapes were merged.
    MergeMismatch {
        /// Which invariant the pair violated.
        reason: &'static str,
    },
    /// A serialized buffer failed validation during deserialization.
    InvalidBytes {
        /// Which part of the buffer was malformed.
        reason: &'static str,
    },
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::InvalidConfig { reason } => {
                write!(f, "invalid sketch configuration: {reason}")
            }
            SketchError::MergeMismatch { reason } => {
                write!(f, "sketch merge mismatch: {reason}")
            }
            SketchError::InvalidBytes { reason } => {
                write!(f, "invalid sketch bytes: {reason}")
            }
        }
    }
}

impl std::error::Error for SketchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_reason() {
        let err = SketchError::InvalidBytes {
            reason: "truncated header",
        };
        assert!(err.to_string().contains("truncated header"));
    }
}
