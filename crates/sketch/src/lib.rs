//! # digest-sketch
//!
//! Deterministic, mergeable sketches backing the continuous sketch
//! aggregates of the Digest stack (DESIGN.md §17): a scale-invariant
//! [UDDSketch](quantile::UddSketch) for `approx_percentile` /
//! `approx_median`, a [HyperLogLog++](distinct::HllSketch) for
//! continuous `COUNT DISTINCT`, and a
//! [space-saving summary](topk::SpaceSavingSketch) for top-k heavy
//! hitters.
//!
//! Every sketch exposes the timescaledb-toolkit *trans / merge / final /
//! serialize* aggregate shape (SNIPPETS.md 1–2): `accumulate` folds one
//! value into a partial state, `merge` combines two partials, the
//! `estimate` methods finalize, and `serialize` / `deserialize` give a
//! canonical byte round trip. Merging is what lets sketch mass combine
//! across sample panels within a snapshot occasion and across occasions
//! of the same continuous query — the fixed-precision (δ, ε, p) contract
//! of the paper (§II, Eq. 1) is then audited per aggregate kind against
//! the per-sketch error bounds documented on each type.
//!
//! The crate is subject to the repository lint rules R1/R2/R5
//! (`cargo xtask lint`): no panicking constructs, no hash collections
//! (every container is a `BTreeMap` so iteration, merge, and serialized
//! dumps are byte-deterministic), and no randomness at all — each sketch
//! is a pure fold over its input stream, so replay determinism across
//! sampling worker counts is structural rather than enforced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod distinct;
pub mod error;
pub mod quantile;
pub mod topk;

pub use distinct::HllSketch;
pub use error::SketchError;
pub use quantile::UddSketch;
pub use topk::SpaceSavingSketch;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SketchError>;

/// Converts a finite `f64` to `i64`, saturating at the type bounds.
///
/// The single place bucket-index arithmetic (bounded by ±ln(f64::MAX) /
/// ln γ, far inside `i64`) leaves floating point; mirrors the guarded
/// saturating-cast idiom of `digest-stats` (§IV-B sizing helpers).
#[must_use]
pub(crate) fn f64_to_i64_saturating(x: f64) -> i64 {
    if x.is_nan() {
        return 0;
    }
    if x >= i64::MAX as f64 {
        return i64::MAX;
    }
    if x <= i64::MIN as f64 {
        return i64::MIN;
    }
    // In-range by the guards above.
    #[allow(clippy::cast_possible_truncation)]
    let out = x as i64;
    out
}

/// SplitMix64 finalizer: the fixed 64-bit mixer shared by the HLL++ and
/// space-saving key paths (Steele et al.; used here in place of a keyed
/// hash so register dumps replay byte-identically, per R5 — see
/// DESIGN.md §17). Bijective on `u64`, so it cannot create collisions.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Quantizes a continuous attribute value onto a unit-width integer cell
/// (saturating floor), the shared key domain for `COUNT DISTINCT` and
/// top-k (DESIGN.md §17). Oracles apply the same map, so the audited
/// ground truth (§VI methodology) counts exactly the cells the sketches
/// count. NaN maps to cell 0 to stay total.
#[must_use]
pub fn value_cell(value: f64) -> i64 {
    f64_to_i64_saturating(value.floor())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // Reference outputs for seed 1234567 advancing the SplitMix64
        // stream (Steele et al. appendix vectors).
        assert_eq!(splitmix64(1_234_567), 6_457_827_717_110_365_317);
    }

    #[test]
    fn value_cell_floors_and_saturates() {
        assert_eq!(value_cell(3.7), 3);
        assert_eq!(value_cell(-0.2), -1);
        assert_eq!(value_cell(f64::NAN), 0);
        assert_eq!(value_cell(1e300), i64::MAX);
        assert_eq!(value_cell(-1e300), i64::MIN);
    }
}
