//! Space-saving heavy-hitter sketch for continuous top-k queries
//! (Metwally et al., "Efficient computation of frequent and top-k
//! elements in data streams"; the P2P motivation is Akbarinia et al.'s
//! top-k work, PAPERS.md).
//!
//! The summary keeps at most `m` counters in a `BTreeMap` (R2: no hash
//! collections), each carrying a count and an overestimation bound.
//! When a new key arrives at capacity, the minimum counter — ties broken
//! by smallest key, so eviction is deterministic — is recycled. The
//! frequency error is bounded by `n/m` (Metwally et al. Thm. 2-style
//! bound), which DESIGN.md §17 maps onto the paper's `(ε, p)` contract
//! (§II, Eq. 1) as an absolute half-width on the reported top-k mass
//! fraction.

use std::collections::BTreeMap;

use crate::error::SketchError;
use crate::Result;

/// Magic prefix of the canonical serialization (version 1).
const MAGIC: &[u8; 4] = b"SSK1";

/// One monitored counter: observed count plus the worst-case
/// overestimation inherited from the evicted predecessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Counter {
    count: u64,
    overestimate: u64,
}

/// Deterministic space-saving summary over quantized value cells.
///
/// Follows the trans/merge/final/serialize shape (SNIPPETS.md 1–2):
/// [`SpaceSavingSketch::accumulate_cell`] is the transition step,
/// [`SpaceSavingSketch::merge`] sums counters pointwise and re-truncates
/// to capacity (commutative byte-for-byte; associative whenever the
/// union fits in capacity — the proptests of DESIGN.md §17 pin both),
/// and [`SpaceSavingSketch::top_k_mass`] finalizes into the scalar the
/// §II `(ε, p)` audit scores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceSavingSketch {
    /// Maximum number of monitored counters (the m of the `n/m` bound).
    capacity: usize,
    /// Monitored cells, keyed by quantized value cell.
    counters: BTreeMap<i64, Counter>,
    /// Total stream length folded in (the n of the `n/m` bound).
    total: u64,
}

impl SpaceSavingSketch {
    /// Creates an empty summary monitoring at most `capacity` cells
    /// (frequency error ≤ n/capacity per Metwally et al.; sized from
    /// the §II `(ε, p)` contract by [`SpaceSavingSketch::for_mass_error`]).
    pub fn new(capacity: usize) -> Result<Self> {
        if capacity == 0 {
            return Err(SketchError::InvalidConfig {
                reason: "capacity must be positive",
            });
        }
        Ok(Self {
            capacity,
            counters: BTreeMap::new(),
            total: 0,
        })
    }

    /// Sizes the summary so the aggregate frequency error over `k`
    /// reported cells, `k·(n/m)/n = k/m`, stays within the mass-fraction
    /// half-width `epsilon` — the DESIGN.md §17 mapping of the paper's
    /// `(ε, p)` contract (§II, Eq. 1) onto heavy-hitter error, with a 2×
    /// headroom factor for merge-truncation slack.
    pub fn for_mass_error(k: usize, epsilon: f64) -> Result<Self> {
        if k == 0 {
            return Err(SketchError::InvalidConfig {
                reason: "k must be positive",
            });
        }
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(SketchError::InvalidConfig {
                reason: "epsilon must be positive finite",
            });
        }
        #[allow(clippy::cast_precision_loss)]
        let needed = (2.0 * k as f64 / epsilon).ceil();
        let capacity = if needed.is_finite() && needed >= 1.0 {
            crate::f64_to_i64_saturating(needed).unsigned_abs()
        } else {
            1
        };
        let capacity = usize::try_from(capacity.min(1 << 20)).unwrap_or(1 << 20);
        Self::new(capacity.max(k))
    }

    /// Number of monitored counters (≤ capacity; the live m of the
    /// `n/m` error equation).
    #[must_use]
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Configured counter capacity (the m of the Metwally et al. `n/m`
    /// error equation); merge partners must match it exactly.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when nothing has been folded in (§IV empty-snapshot hold
    /// paths check this before finalizing).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Total stream length folded in (the n of the `n/m` bound).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Folds one quantized value cell in (the *trans* step of the
    /// aggregate shape; the sweep estimator of DESIGN.md §17 feeds
    /// [`crate::value_cell`] keys through here, and the §VI oracle
    /// counts the same cells).
    pub fn accumulate_cell(&mut self, cell: i64) {
        self.total = self.total.saturating_add(1);
        if let Some(counter) = self.counters.get_mut(&cell) {
            counter.count = counter.count.saturating_add(1);
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(
                cell,
                Counter {
                    count: 1,
                    overestimate: 0,
                },
            );
            return;
        }
        // Evict the minimum counter; ties broken by smallest key so the
        // recycle step is deterministic (Metwally et al. §3 with the
        // DESIGN.md §17 determinism refinement).
        let victim = self
            .counters
            .iter()
            .min_by(|(ka, ca), (kb, cb)| ca.count.cmp(&cb.count).then(ka.cmp(kb)))
            .map(|(k, c)| (*k, *c));
        if let Some((victim_key, victim_counter)) = victim {
            self.counters.remove(&victim_key);
            self.counters.insert(
                cell,
                Counter {
                    count: victim_counter.count.saturating_add(1),
                    overestimate: victim_counter.count,
                },
            );
        }
    }

    /// Merges by pointwise counter sum followed by re-truncation to the
    /// top-`capacity` cells ordered by (count desc, key asc) — the
    /// deterministic merge of DESIGN.md §17. Commutative byte-for-byte;
    /// associativity holds exactly when no truncation fires (pinned by
    /// proptest), and is otherwise within the Metwally et al. `n/m`
    /// error equation.
    pub fn merge(&mut self, other: &SpaceSavingSketch) -> Result<()> {
        if self.capacity != other.capacity {
            return Err(SketchError::MergeMismatch {
                reason: "space-saving merge requires identical capacity",
            });
        }
        for (cell, theirs) in &other.counters {
            let entry = self.counters.entry(*cell).or_insert(Counter {
                count: 0,
                overestimate: 0,
            });
            entry.count = entry.count.saturating_add(theirs.count);
            entry.overestimate = entry.overestimate.saturating_add(theirs.overestimate);
        }
        self.total = self.total.saturating_add(other.total);
        if self.counters.len() > self.capacity {
            let mut entries: Vec<(i64, Counter)> =
                self.counters.iter().map(|(k, c)| (*k, *c)).collect();
            entries.sort_by(|(ka, ca), (kb, cb)| cb.count.cmp(&ca.count).then(ka.cmp(kb)));
            entries.truncate(self.capacity);
            self.counters = entries.into_iter().collect();
        }
        Ok(())
    }

    /// The top `k` cells by (count desc, key asc) with their observed
    /// counts — the heavy-hitter report of Metwally et al. §3, keyed on
    /// the §17 cell domain.
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<(i64, u64)> {
        let mut entries: Vec<(i64, u64)> = self
            .counters
            .iter()
            .map(|(cell, c)| (*cell, c.count))
            .collect();
        entries.sort_by(|(ka, ca), (kb, cb)| cb.cmp(ca).then(ka.cmp(kb)));
        entries.truncate(k);
        entries
    }

    /// Finalizes into the top-`k` mass fraction `Σ top-k counts / n`
    /// in `[0, 1]` — the scalar DESIGN.md §17 audits against the exact
    /// fraction under the §II `(ε, p)` contract. `None` when empty so
    /// callers apply the §IV hold rule.
    #[must_use]
    pub fn top_k_mass(&self, k: usize) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let top: u64 = self.top_k(k).iter().map(|(_, c)| *c).sum();
        #[allow(clippy::cast_precision_loss)]
        let mass = top as f64 / self.total as f64;
        Some(mass.clamp(0.0, 1.0))
    }

    /// Canonical serialization: magic, capacity, total, then the
    /// counters in ascending cell order (big-endian fixed width), so
    /// equal summaries are equal byte strings — the replay/audit
    /// invariant of DESIGN.md §17 (paper §VI).
    #[must_use]
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(28 + 24 * self.counters.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(
            &u64::try_from(self.capacity)
                .unwrap_or(u64::MAX)
                .to_be_bytes(),
        );
        out.extend_from_slice(&self.total.to_be_bytes());
        out.extend_from_slice(
            &u64::try_from(self.counters.len())
                .unwrap_or(u64::MAX)
                .to_be_bytes(),
        );
        for (cell, counter) in &self.counters {
            out.extend_from_slice(&cell.to_be_bytes());
            out.extend_from_slice(&counter.count.to_be_bytes());
            out.extend_from_slice(&counter.overestimate.to_be_bytes());
        }
        out
    }

    /// Inverse of [`SpaceSavingSketch::serialize`]; validates the
    /// header, capacity bound, strict key order, and the count/
    /// overestimate invariants of Metwally et al.'s error equation, so
    /// round trips are byte-identical (§VI replay gate).
    pub fn deserialize(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 28 || &bytes[..4] != MAGIC {
            return Err(SketchError::InvalidBytes {
                reason: "bad space-saving header",
            });
        }
        let read_u64 = |at: usize| -> Result<u64> {
            let end = at.checked_add(8).filter(|end| *end <= bytes.len());
            let Some(end) = end else {
                return Err(SketchError::InvalidBytes {
                    reason: "truncated buffer",
                });
            };
            let mut raw = [0u8; 8];
            raw.copy_from_slice(&bytes[at..end]);
            Ok(u64::from_be_bytes(raw))
        };
        let capacity = usize::try_from(read_u64(4)?).map_err(|_| SketchError::InvalidBytes {
            reason: "capacity overflows usize",
        })?;
        if capacity == 0 {
            return Err(SketchError::InvalidBytes {
                reason: "capacity must be positive",
            });
        }
        let total = read_u64(12)?;
        let len = usize::try_from(read_u64(20)?).map_err(|_| SketchError::InvalidBytes {
            reason: "length overflows usize",
        })?;
        if len > capacity {
            return Err(SketchError::InvalidBytes {
                reason: "counter count exceeds capacity",
            });
        }
        let expected = 28usize.saturating_add(len.saturating_mul(24));
        if bytes.len() != expected {
            return Err(SketchError::InvalidBytes {
                reason: "counter section length mismatch",
            });
        }
        let mut counters = BTreeMap::new();
        let mut prev: Option<i64> = None;
        let mut count_sum: u64 = 0;
        for i in 0..len {
            let at = 28 + i * 24;
            #[allow(clippy::cast_possible_wrap)]
            let cell = read_u64(at)? as i64;
            let count = read_u64(at + 8)?;
            let overestimate = read_u64(at + 16)?;
            if prev.is_some_and(|p| p >= cell) {
                return Err(SketchError::InvalidBytes {
                    reason: "cells not strictly ascending",
                });
            }
            if count == 0 || overestimate >= count {
                return Err(SketchError::InvalidBytes {
                    reason: "counter invariant violated",
                });
            }
            prev = Some(cell);
            count_sum = count_sum.saturating_add(count);
            counters.insert(
                cell,
                Counter {
                    count,
                    overestimate,
                },
            );
        }
        if count_sum > total {
            return Err(SketchError::InvalidBytes {
                reason: "counts exceed stream total",
            });
        }
        Ok(Self {
            capacity,
            counters,
            total,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
mod tests {
    use super::*;

    fn sketch_of(cells: &[i64], capacity: usize) -> SpaceSavingSketch {
        let mut s = SpaceSavingSketch::new(capacity).unwrap();
        for c in cells {
            s.accumulate_cell(*c);
        }
        s
    }

    #[test]
    fn rejects_bad_config() {
        assert!(SpaceSavingSketch::new(0).is_err());
        assert!(SpaceSavingSketch::for_mass_error(0, 0.1).is_err());
        assert!(SpaceSavingSketch::for_mass_error(4, 0.0).is_err());
    }

    #[test]
    fn sizing_scales_with_k_over_epsilon() {
        let s = SpaceSavingSketch::for_mass_error(4, 0.1).unwrap();
        assert_eq!(s.capacity, 80);
    }

    #[test]
    fn exact_when_under_capacity() {
        let s = sketch_of(&[1, 1, 1, 2, 2, 3], 16);
        assert_eq!(s.top_k(2), vec![(1, 3), (2, 2)]);
        assert_eq!(s.top_k_mass(2).unwrap(), 5.0 / 6.0);
    }

    #[test]
    fn eviction_keeps_heavy_hitters() {
        let mut cells = vec![7; 100];
        cells.extend(std::iter::repeat_n(13, 60));
        for i in 0..40 {
            cells.push(1000 + i);
        }
        let s = sketch_of(&cells, 8);
        let top = s.top_k(2);
        assert_eq!(top[0].0, 7);
        assert_eq!(top[1].0, 13);
        assert_eq!(s.total(), 200);
    }

    #[test]
    fn ties_evict_smallest_key() {
        let mut s = sketch_of(&[1, 2], 2);
        s.accumulate_cell(5);
        assert!(s.top_k(2).iter().any(|(c, _)| *c == 5));
        assert!(!s.top_k(2).iter().any(|(c, _)| *c == 1));
    }

    #[test]
    fn merge_sums_and_truncates() {
        let a = sketch_of(&[1, 1, 2], 4);
        let b = sketch_of(&[1, 3, 3], 4);
        let mut m = a.clone();
        m.merge(&b).unwrap();
        assert_eq!(m.total(), 6);
        assert_eq!(m.top_k(1), vec![(1, 3)]);
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        assert_eq!(m.serialize(), ba.serialize());
    }

    #[test]
    fn merge_rejects_capacity_mismatch() {
        let mut a = SpaceSavingSketch::new(4).unwrap();
        let b = SpaceSavingSketch::new(8).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn serialize_round_trips() {
        let s = sketch_of(&[-5, -5, 0, 3, 3, 3, 9], 4);
        let bytes = s.serialize();
        let back = SpaceSavingSketch::deserialize(&bytes).unwrap();
        assert_eq!(back.serialize(), bytes);
        assert_eq!(back.top_k(3), s.top_k(3));
    }

    #[test]
    fn deserialize_rejects_corruption() {
        let s = sketch_of(&[1, 2, 3], 8);
        let bytes = s.serialize();
        assert!(SpaceSavingSketch::deserialize(&bytes[..bytes.len() - 1]).is_err());
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(SpaceSavingSketch::deserialize(&bad_magic).is_err());
        let mut zero_count = bytes;
        // Zero out the first counter's count field (offset 28 + 8).
        for b in &mut zero_count[36..44] {
            *b = 0;
        }
        assert!(SpaceSavingSketch::deserialize(&zero_count).is_err());
    }

    #[test]
    fn empty_sketch_has_no_mass() {
        let s = SpaceSavingSketch::new(4).unwrap();
        assert!(s.top_k_mass(2).is_none());
        assert!(s.is_empty());
    }
}
