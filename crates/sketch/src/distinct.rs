//! HyperLogLog++ cardinality sketch for continuous `COUNT DISTINCT`
//! (Heule et al., "HyperLogLog in Practice"; Flajolet et al. for the
//! base estimator).
//!
//! Digest's variant is stripped for replay determinism (DESIGN.md §17):
//! the key path uses the fixed SplitMix64 mixer ([`crate::splitmix64`])
//! instead of a keyed hash, there is no sparse representation and no
//! hash-collection iteration anywhere, and the register file is a flat
//! `Vec<u8>` whose dump order is the register index — so serialization,
//! merging, and estimation are all byte-deterministic pure functions.
//! The relative cardinality error `≈ 1.04 / √m` (Flajolet et al., the
//! standard-error equation) is mapped onto the paper's `(ε, p)` contract
//! (§II, Eq. 1) by sizing `m = 2^b` from the relative half-width — see
//! [`HllSketch::for_relative_error`].

use crate::error::SketchError;
use crate::Result;

/// Magic prefix of the canonical serialization (version 1).
const MAGIC: &[u8; 4] = b"HLL1";

/// Smallest supported register exponent (m = 16).
const MIN_P_BITS: u8 = 4;

/// Largest supported register exponent (m = 65536, 64 KiB per sketch).
const MAX_P_BITS: u8 = 16;

/// Dense HyperLogLog++ register file with a fixed 64-bit mixer.
///
/// Follows the trans/merge/final/serialize aggregate shape (SNIPPETS.md
/// 1–2): [`HllSketch::accumulate_key`] folds one key in,
/// [`HllSketch::merge`] takes the per-register maximum (idempotent, so
/// re-observing a panel member across occasions is harmless — the §IV-B
/// retain/replace analogue for cardinality), [`HllSketch::estimate`]
/// finalizes with the Flajolet et al. standard-error equation's
/// harmonic-mean estimator plus the HLL++ linear-counting fallback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HllSketch {
    /// Register index width b; m = 2^b registers.
    p_bits: u8,
    /// Dense register file, indexed by the top `p_bits` of the mixed key.
    registers: Vec<u8>,
}

impl HllSketch {
    /// Creates an empty sketch with `2^p_bits` registers
    /// (`4 ≤ p_bits ≤ 16`; the m of the Flajolet et al. standard-error
    /// equation `1.04/√m`).
    pub fn new(p_bits: u8) -> Result<Self> {
        if !(MIN_P_BITS..=MAX_P_BITS).contains(&p_bits) {
            return Err(SketchError::InvalidConfig {
                reason: "p_bits must be between 4 and 16",
            });
        }
        Ok(Self {
            p_bits,
            registers: vec![0u8; 1usize << p_bits],
        })
    }

    /// Sizes a sketch so the standard error `1.04/√m` scaled by the
    /// confidence quantile `z` stays within the relative half-width
    /// `rel_epsilon` — the DESIGN.md §17 mapping of the paper's `(ε, p)`
    /// contract (§II, Eq. 1) onto relative cardinality error.
    pub fn for_relative_error(rel_epsilon: f64, z: f64) -> Result<Self> {
        if !rel_epsilon.is_finite() || rel_epsilon <= 0.0 || !z.is_finite() || z <= 0.0 {
            return Err(SketchError::InvalidConfig {
                reason: "relative error and z must be positive finite",
            });
        }
        let ratio = 1.04 * z / rel_epsilon;
        let bits = (ratio * ratio).log2().ceil();
        let clamped = bits.clamp(f64::from(MIN_P_BITS), f64::from(MAX_P_BITS));
        // In [4, 16] by the clamp above.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let p_bits = clamped as u8;
        Self::new(p_bits)
    }

    /// Register index width b (m = 2^b; see the standard-error equation
    /// `1.04/√m` of Flajolet et al.).
    #[must_use]
    pub fn p_bits(&self) -> u8 {
        self.p_bits
    }

    /// Relative standard error `1.04/√m` of this configuration (the
    /// Flajolet et al. standard-error equation; DESIGN.md §17 maps it
    /// onto the §II contract).
    #[must_use]
    pub fn standard_error(&self) -> f64 {
        1.04 / self.m().sqrt()
    }

    fn m(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let m = self.registers.len() as f64;
        m
    }

    /// Folds one raw 64-bit key into the sketch (the *trans* step;
    /// §IV sampling and the sweep estimator of DESIGN.md §17 feed cell
    /// keys through [`crate::value_cell`] and this mixer).
    pub fn accumulate_key(&mut self, key: u64) {
        let hashed = crate::splitmix64(key);
        let shift = 64 - u32::from(self.p_bits);
        let idx = usize::try_from(hashed >> shift).unwrap_or(0);
        let tail = hashed << u32::from(self.p_bits);
        let max_rho = u32::from(64 - self.p_bits) + 1;
        let rho = tail.leading_zeros().saturating_add(1).min(max_rho);
        let rho = u8::try_from(rho).unwrap_or(u8::MAX);
        if let Some(reg) = self.registers.get_mut(idx) {
            if *reg < rho {
                *reg = rho;
            }
        }
    }

    /// Folds one quantized value cell in (the `COUNT DISTINCT` key
    /// domain of DESIGN.md §17; the oracle of §VI applies the same
    /// [`crate::value_cell`] map so audits compare like with like).
    pub fn accumulate_value(&mut self, value: f64) {
        #[allow(clippy::cast_sign_loss)]
        let key = crate::value_cell(value) as u64;
        self.accumulate_key(key);
    }

    /// Merges by per-register maximum (the *combine* step; losslessly
    /// equals the sketch of the union stream, so panel and occasion
    /// merges per §IV-B retain/replace are exact for cardinality).
    pub fn merge(&mut self, other: &HllSketch) -> Result<()> {
        if self.p_bits != other.p_bits {
            return Err(SketchError::MergeMismatch {
                reason: "HyperLogLog merge requires identical p_bits",
            });
        }
        for (mine, theirs) in self.registers.iter_mut().zip(&other.registers) {
            if *mine < *theirs {
                *mine = *theirs;
            }
        }
        Ok(())
    }

    /// Finalizes the cardinality estimate: harmonic-mean raw estimator
    /// (Flajolet et al., the standard-error equation family) with the
    /// HLL++ linear-counting fallback for small ranges (Heule et al.
    /// §5; the empirical bias-correction table is deliberately omitted —
    /// DESIGN.md §17 documents the deviation and its audited impact).
    #[must_use]
    pub fn estimate(&self) -> f64 {
        let m = self.m();
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let mut sum = 0.0;
        let mut zeros = 0u64;
        for reg in &self.registers {
            sum += (-f64::from(*reg)).exp2();
            if *reg == 0 {
                zeros = zeros.saturating_add(1);
            }
        }
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m && zeros > 0 {
            #[allow(clippy::cast_precision_loss)]
            let v = zeros as f64;
            return m * (m / v).ln();
        }
        raw
    }

    /// Canonical serialization: magic, register width, then the dense
    /// register file in index order — equal sketches are equal byte
    /// strings, the replay/audit invariant of DESIGN.md §17 (paper §VI).
    #[must_use]
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.registers.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&u64::from(self.p_bits).to_be_bytes());
        out.extend_from_slice(&self.registers);
        out
    }

    /// Inverse of [`HllSketch::serialize`]; validates the magic, the
    /// `p_bits` domain, the register-file length, and the per-register
    /// rank bound `ρ ≤ 64 − b + 1` (Flajolet et al.'s rank equation), so
    /// round trips are byte-identical (§VI replay gate).
    pub fn deserialize(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 12 || &bytes[..4] != MAGIC {
            return Err(SketchError::InvalidBytes {
                reason: "bad HyperLogLog header",
            });
        }
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&bytes[4..12]);
        let p_bits =
            u8::try_from(u64::from_be_bytes(raw)).map_err(|_| SketchError::InvalidBytes {
                reason: "p_bits overflows u8",
            })?;
        if !(MIN_P_BITS..=MAX_P_BITS).contains(&p_bits) {
            return Err(SketchError::InvalidBytes {
                reason: "p_bits out of domain",
            });
        }
        let registers = bytes[12..].to_vec();
        if registers.len() != 1usize << p_bits {
            return Err(SketchError::InvalidBytes {
                reason: "register file length mismatch",
            });
        }
        let max_rho = 64 - p_bits + 1;
        if registers.iter().any(|r| *r > max_rho) {
            return Err(SketchError::InvalidBytes {
                reason: "register rank exceeds bound",
            });
        }
        Ok(Self { p_bits, registers })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_config() {
        assert!(HllSketch::new(3).is_err());
        assert!(HllSketch::new(17).is_err());
        assert!(HllSketch::new(4).is_ok());
    }

    #[test]
    fn sizing_clamps_to_domain() {
        let tight = HllSketch::for_relative_error(1e-6, 2.0).unwrap();
        assert_eq!(tight.p_bits(), 16);
        let loose = HllSketch::for_relative_error(10.0, 1.0).unwrap();
        assert_eq!(loose.p_bits(), 4);
        assert!(HllSketch::for_relative_error(0.0, 1.0).is_err());
    }

    #[test]
    fn counts_small_sets_exactly_enough() {
        let mut s = HllSketch::new(12).unwrap();
        for k in 0..100u64 {
            s.accumulate_key(k);
        }
        let est = s.estimate();
        assert!((est - 100.0).abs() < 5.0, "est={est}");
    }

    #[test]
    fn repeated_keys_do_not_inflate() {
        let mut s = HllSketch::new(12).unwrap();
        for _ in 0..50 {
            for k in 0..20u64 {
                s.accumulate_key(k);
            }
        }
        let est = s.estimate();
        assert!((est - 20.0).abs() < 3.0, "est={est}");
    }

    #[test]
    fn large_cardinality_within_standard_error() {
        let mut s = HllSketch::new(12).unwrap();
        let n = 50_000u64;
        for k in 0..n {
            s.accumulate_key(k);
        }
        let est = s.estimate();
        let rel = (est - 50_000.0).abs() / 50_000.0;
        assert!(rel < 4.0 * s.standard_error(), "rel={rel}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HllSketch::new(10).unwrap();
        let mut b = HllSketch::new(10).unwrap();
        let mut union = HllSketch::new(10).unwrap();
        for k in 0..500u64 {
            a.accumulate_key(k);
            union.accumulate_key(k);
        }
        for k in 300..900u64 {
            b.accumulate_key(k);
            union.accumulate_key(k);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.serialize(), union.serialize());
    }

    #[test]
    fn merge_rejects_width_mismatch() {
        let mut a = HllSketch::new(10).unwrap();
        let b = HllSketch::new(11).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn serialize_round_trips() {
        let mut s = HllSketch::new(8).unwrap();
        for k in 0..1000u64 {
            s.accumulate_key(k.wrapping_mul(2_654_435_761));
        }
        let bytes = s.serialize();
        let back = HllSketch::deserialize(&bytes).unwrap();
        assert_eq!(back.serialize(), bytes);
        assert_eq!(back.estimate(), s.estimate());
    }

    #[test]
    fn deserialize_rejects_corruption() {
        let s = HllSketch::new(4).unwrap();
        let mut bytes = s.serialize();
        assert!(HllSketch::deserialize(&bytes[..8]).is_err());
        bytes[11] = 99;
        assert!(HllSketch::deserialize(&bytes).is_err());
        let mut overflow = HllSketch::new(4).unwrap().serialize();
        overflow[12] = 255;
        assert!(HllSketch::deserialize(&overflow).is_err());
    }
}
