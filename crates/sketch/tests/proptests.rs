//! Property-based tests of the mergeable sketches (DESIGN.md §17).
//!
//! Three families, mirroring the `digest-stats` proptest idiom:
//!
//! * **merge algebra** — merging is commutative and associative
//!   *byte-for-byte* (equal canonical serializations, not just equal
//!   estimates), and a merge of shard sketches equals the sketch of the
//!   concatenated stream. This is what lets the sweep estimator combine
//!   per-node states in any grouping without perturbing the §VI replay
//!   gate. Space-saving associativity is pinned on the truncation-free
//!   regime (capacity ≥ distinct cells), per its documented contract.
//! * **serialization** — `deserialize(serialize(s))` reproduces the
//!   exact byte string (the canonical-form invariant behind replay and
//!   audit byte-identity).
//! * **error bounds** — over 18 pinned ChaCha8 seeds, each sketch's
//!   estimate stays inside its documented bound against the exact
//!   answer: UDDSketch within relative `2α/(1−α)` on the median, HLL++
//!   within `3σ` (`σ = 1.04/√m`) on the cardinality, space-saving
//!   within the `ε = 2k/capacity` mass bound on the top-k fraction.

// Tests may panic freely; the workspace deny-lints target library code.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation
)]

use digest_sketch::{HllSketch, SpaceSavingSketch, UddSketch};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

const ALPHA0: f64 = 0.01;
const MAX_BUCKETS: usize = 64;
const P_BITS: u8 = 10;
/// Space-saving capacity for the algebra tests: at least the distinct
/// cell count of the generated streams, so no merge ever truncates and
/// associativity is exact per the documented contract.
const SS_CAPACITY: usize = 64;

fn udd_of(values: &[f64]) -> UddSketch {
    let mut s = UddSketch::new(ALPHA0, MAX_BUCKETS).unwrap();
    for v in values {
        s.accumulate(*v);
    }
    s
}

fn hll_of(keys: &[u64]) -> HllSketch {
    let mut s = HllSketch::new(P_BITS).unwrap();
    for k in keys {
        s.accumulate_key(*k);
    }
    s
}

fn ss_of(cells: &[i64]) -> SpaceSavingSketch {
    let mut s = SpaceSavingSketch::new(SS_CAPACITY).unwrap();
    for c in cells {
        s.accumulate_cell(*c);
    }
    s
}

fn values(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, len)
}

fn keys(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..u64::MAX, len)
}

/// Cells drawn from a 32-value domain: half of `SS_CAPACITY`, so the
/// summaries stay exact and merge algebra holds byte-for-byte.
fn cells(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-16i64..16, len)
}

proptest! {
    #[test]
    fn udd_merge_is_commutative_bytes(xs in values(1..120), ys in values(1..120)) {
        let a = udd_of(&xs);
        let b = udd_of(&ys);
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b;
        ba.merge(&a).unwrap();
        prop_assert_eq!(ab.serialize(), ba.serialize());
    }

    #[test]
    fn udd_merge_is_associative_bytes(
        xs in values(1..80),
        ys in values(1..80),
        zs in values(1..80),
    ) {
        let (a, b, c) = (udd_of(&xs), udd_of(&ys), udd_of(&zs));
        let mut left = a.clone();
        left.merge(&b).unwrap();
        left.merge(&c).unwrap();
        let mut bc = b;
        bc.merge(&c).unwrap();
        let mut right = a;
        right.merge(&bc).unwrap();
        prop_assert_eq!(left.serialize(), right.serialize());
    }

    #[test]
    fn udd_merge_equals_concatenated_stream(xs in values(1..120), ys in values(1..120)) {
        let mut merged = udd_of(&xs);
        merged.merge(&udd_of(&ys)).unwrap();
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        prop_assert_eq!(merged.serialize(), udd_of(&all).serialize());
    }

    #[test]
    fn udd_serialization_round_trips_bytes(xs in values(0..120)) {
        let s = udd_of(&xs);
        let bytes = s.serialize();
        let back = UddSketch::deserialize(&bytes).unwrap();
        prop_assert_eq!(back.serialize(), bytes);
    }

    #[test]
    fn hll_merge_is_commutative_and_associative_bytes(
        xs in keys(1..120),
        ys in keys(1..120),
        zs in keys(1..120),
    ) {
        let (a, b, c) = (hll_of(&xs), hll_of(&ys), hll_of(&zs));
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        prop_assert_eq!(ab.serialize(), ba.serialize());
        let mut left = ab;
        left.merge(&c).unwrap();
        let mut bc = b;
        bc.merge(&c).unwrap();
        let mut right = a;
        right.merge(&bc).unwrap();
        prop_assert_eq!(left.serialize(), right.serialize());
    }

    #[test]
    fn hll_merge_equals_concatenated_stream(xs in keys(1..120), ys in keys(1..120)) {
        let mut merged = hll_of(&xs);
        merged.merge(&hll_of(&ys)).unwrap();
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        prop_assert_eq!(merged.serialize(), hll_of(&all).serialize());
    }

    #[test]
    fn hll_serialization_round_trips_bytes(xs in keys(0..120)) {
        let s = hll_of(&xs);
        let bytes = s.serialize();
        let back = HllSketch::deserialize(&bytes).unwrap();
        prop_assert_eq!(back.serialize(), bytes);
    }

    #[test]
    fn ss_merge_is_commutative_bytes(xs in cells(1..120), ys in cells(1..120)) {
        let a = ss_of(&xs);
        let b = ss_of(&ys);
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b;
        ba.merge(&a).unwrap();
        prop_assert_eq!(ab.serialize(), ba.serialize());
    }

    #[test]
    fn ss_merge_is_associative_bytes_without_truncation(
        xs in cells(1..80),
        ys in cells(1..80),
        zs in cells(1..80),
    ) {
        let (a, b, c) = (ss_of(&xs), ss_of(&ys), ss_of(&zs));
        let mut left = a.clone();
        left.merge(&b).unwrap();
        left.merge(&c).unwrap();
        let mut bc = b;
        bc.merge(&c).unwrap();
        let mut right = a;
        right.merge(&bc).unwrap();
        prop_assert_eq!(left.serialize(), right.serialize());
    }

    #[test]
    fn ss_serialization_round_trips_bytes(xs in cells(0..120)) {
        let s = ss_of(&xs);
        let bytes = s.serialize();
        let back = SpaceSavingSketch::deserialize(&bytes).unwrap();
        prop_assert_eq!(back.serialize(), bytes);
    }
}

/// The 18 pinned seeds of the error-bound sweep (deterministic: a pass
/// today is a pass forever, per the §VI replay discipline).
const SEEDS: [u64; 18] = [
    1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610, 987, 1597, 2584, 20_080_402,
];

#[test]
fn udd_median_within_relative_alpha_bound_over_pinned_seeds() {
    for seed in SEEDS {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut values: Vec<f64> = (0..4000).map(|_| rng.gen_range(1.0..1e4)).collect();
        let sketch = udd_of(&values);
        values.sort_by(f64::total_cmp);
        let exact = values[values.len() / 2];
        let est = sketch.quantile(0.5).unwrap();
        let alpha = sketch.current_alpha();
        let bound = exact * 2.0 * alpha / (1.0 - alpha) + 1e-9;
        assert!(
            (est - exact).abs() <= bound,
            "seed {seed}: |{est} - {exact}| > {bound} (alpha {alpha})"
        );
    }
}

#[test]
fn hll_cardinality_within_three_sigma_over_pinned_seeds() {
    for seed in SEEDS {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Distinct count varies per seed; duplicates exercise the
        // register-max idempotence.
        let distinct = rng.gen_range(2_000u64..40_000);
        let mut sketch = HllSketch::new(P_BITS).unwrap();
        for i in 0..distinct * 2 {
            sketch.accumulate_key(i % distinct);
        }
        let exact = distinct as f64;
        let est = sketch.estimate();
        let bound = 3.0 * sketch.standard_error() * exact;
        assert!(
            (est - exact).abs() <= bound,
            "seed {seed}: |{est} - {exact}| > {bound}"
        );
    }
}

#[test]
fn ss_top_k_mass_within_epsilon_over_pinned_seeds() {
    const K: usize = 4;
    const EPSILON: f64 = 0.1;
    for seed in SEEDS {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut sketch = SpaceSavingSketch::for_mass_error(K, EPSILON).unwrap();
        let mut exact_counts: BTreeMap<i64, u64> = BTreeMap::new();
        // Skewed stream: geometric-ish cell frequencies, so a few cells
        // dominate (the heavy-hitter regime of Metwally et al.).
        for _ in 0..20_000 {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let cell = (-u.log2()).floor() as i64;
            sketch.accumulate_cell(cell);
            *exact_counts.entry(cell).or_insert(0) += 1;
        }
        let mut counts: Vec<u64> = exact_counts.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let exact_mass = counts.iter().take(K).sum::<u64>() as f64 / 20_000.0;
        let est_mass = sketch.top_k_mass(K).unwrap();
        assert!(
            (est_mass - exact_mass).abs() <= EPSILON,
            "seed {seed}: |{est_mass} - {exact_mass}| > {EPSILON}"
        );
    }
}
