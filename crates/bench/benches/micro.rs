//! Criterion microbenchmarks of Digest's hot kernels.
//!
//! These are not paper experiments (those live in `src/bin/exp_*`); they
//! measure the per-operation costs a deployment would care about: one
//! Metropolis step, one two-stage tuple sample, one LM polynomial fit,
//! one repeated-sampling combine, one extrapolator prediction, TVD, and
//! one workload tick.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use digest_db::{P2PDatabase, Schema, Tuple};
use digest_net::topology;
use digest_sampling::{uniform_weight, MetropolisWalk, SamplingConfig, SamplingOperator};
use digest_stats::repeated::combined_estimate;
use digest_stats::{
    total_variation_distance, DiscreteDistribution, Extrapolator, ExtrapolatorConfig, Polynomial,
};
use digest_workload::{TemperatureConfig, TemperatureWorkload, Workload};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_metropolis_step(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let g = topology::barabasi_albert(1000, 2, &mut rng).unwrap();
    let w = uniform_weight();
    let origin = g.nodes().next().unwrap();
    c.bench_function("metropolis_step", |b| {
        let mut walk = MetropolisWalk::new(&g, origin).unwrap();
        b.iter(|| {
            black_box(walk.step(&g, &w, &mut rng).unwrap());
        });
    });
}

fn bench_sample_tuple(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let g = topology::barabasi_albert(500, 2, &mut rng).unwrap();
    let mut db = P2PDatabase::new(Schema::single("a"));
    for v in g.nodes() {
        db.register_node(v);
        for j in 0..10 {
            db.insert(v, Tuple::single(f64::from(j))).unwrap();
        }
    }
    let origin = g.nodes().next().unwrap();
    let mut op = SamplingOperator::new(SamplingConfig::recommended(500)).unwrap();
    c.bench_function("two_stage_sample_tuple", |b| {
        b.iter(|| black_box(op.sample_tuple(&g, &db, origin, &mut rng).unwrap()));
    });
}

fn bench_lm_polynomial_fit(c: &mut Criterion) {
    let ts: Vec<f64> = (0..12).map(|i| 1000.0 + i as f64).collect();
    let ys: Vec<f64> = ts
        .iter()
        .map(|t| 3.0 + 0.5 * t - 0.01 * t * t + (t * 0.3).sin())
        .collect();
    c.bench_function("lm_polynomial_fit_deg2", |b| {
        b.iter(|| {
            black_box(Polynomial::fit_levenberg_marquardt(black_box(1011.0), &ts, &ys, 2).unwrap())
        });
    });
}

fn bench_combined_estimate(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    use rand::Rng;
    let prev: Vec<f64> = (0..100).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let cur: Vec<f64> = prev.iter().map(|p| 0.9 * p + 0.1).collect();
    let fresh: Vec<f64> = (0..50).map(|_| rng.gen_range(-1.0..1.0)).collect();
    c.bench_function("rpt_combined_estimate_150", |b| {
        b.iter(|| black_box(combined_estimate(&fresh, &prev, &cur, 0.0).unwrap()));
    });
}

fn bench_extrapolator_predict(c: &mut Criterion) {
    let mut e = Extrapolator::new(ExtrapolatorConfig::pred(3)).unwrap();
    for t in 0..8 {
        e.observe(t as f64, 50.0 + 0.3 * t as f64 + (t as f64 * 0.5).sin());
    }
    c.bench_function("pred3_predict", |b| {
        b.iter(|| black_box(e.predict(black_box(4.0)).unwrap()));
    });
}

fn bench_tvd(c: &mut Criterion) {
    let a =
        DiscreteDistribution::from_weights(&(1..=1000).map(f64::from).collect::<Vec<_>>()).unwrap();
    let bd = DiscreteDistribution::uniform(1000).unwrap();
    c.bench_function("tvd_1000", |b| {
        b.iter(|| black_box(total_variation_distance(&a, &bd).unwrap()));
    });
}

fn bench_workload_tick(c: &mut Criterion) {
    c.bench_function("temperature_tick_2000_units", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        b.iter_batched(
            || TemperatureWorkload::new(TemperatureConfig::reduced(2000, 10, 20, 100)),
            |mut w| {
                w.advance(&mut rng);
                black_box(w.current_tick())
            },
            BatchSize::LargeInput,
        );
    });
}

fn bench_predicate_eval(c: &mut Criterion) {
    use digest_db::Predicate;
    let schema = Schema::new(["cpu", "memory", "storage"]);
    let pred = Predicate::parse(
        "not (cpu < 2 and memory > 64) or storage + memory >= 128",
        &schema,
    )
    .unwrap();
    let t = Tuple::new(vec![4.0, 32.0, 100.0]);
    c.bench_function("predicate_eval", |b| {
        b.iter(|| black_box(pred.eval(black_box(&t)).unwrap()));
    });
}

fn bench_statement_parse(c: &mut Criterion) {
    use digest_core::ContinuousQuery;
    let schema = Schema::new(["cpu", "memory", "storage"]);
    let text = "SELECT SUM(memory + storage) FROM resources \
                WHERE cpu >= 2 and memory > 4 \
                WITH delta=1000, epsilon=500, p=0.9";
    c.bench_function("statement_parse", |b| {
        b.iter(|| black_box(ContinuousQuery::parse(black_box(text), &schema).unwrap()));
    });
}

fn bench_quantile_interval(c: &mut Criterion) {
    use digest_stats::quantile_interval;
    let sorted: Vec<f64> = (0..1_000).map(f64::from).collect();
    c.bench_function("quantile_interval_1000", |b| {
        b.iter(|| black_box(quantile_interval(black_box(&sorted), 0.5, 0.95).unwrap()));
    });
}

fn bench_push_engines_tick(c: &mut Criterion) {
    use digest_core::baselines::{FilterConfig, FilterEngine, PushAllEngine};
    use digest_core::{ContinuousQuery, Precision, QuerySystem, TickContext};
    use digest_db::Expr;
    use digest_net::NodeId;

    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let g = topology::mesh(10, 20, false).unwrap();
    let mut db = P2PDatabase::new(Schema::single("a"));
    for v in g.nodes() {
        db.register_node(v);
        for j in 0..10 {
            db.insert(v, Tuple::single(f64::from(j))).unwrap();
        }
    }
    let query = ContinuousQuery::avg(
        Expr::first_attr(db.schema()),
        Precision::new(1.0, 0.5, 0.95).unwrap(),
    );

    let mut push_all = PushAllEngine::new(query.clone());
    c.bench_function("push_all_tick_2000_tuples", |b| {
        let mut tick = 0u64;
        b.iter(|| {
            let ctx = TickContext {
                tick,
                graph: &g,
                db: &db,
                origin: NodeId(0),
            };
            tick += 1;
            black_box(push_all.on_tick(&ctx, &mut rng).unwrap())
        });
    });

    let mut filter = FilterEngine::new(query, FilterConfig::default()).unwrap();
    c.bench_function("filter_engine_tick_2000_tuples", |b| {
        let mut tick = 0u64;
        b.iter(|| {
            let ctx = TickContext {
                tick,
                graph: &g,
                db: &db,
                origin: NodeId(0),
            };
            tick += 1;
            black_box(filter.on_tick(&ctx, &mut rng).unwrap())
        });
    });
}

criterion_group!(
    benches,
    bench_metropolis_step,
    bench_sample_tuple,
    bench_lm_polynomial_fit,
    bench_combined_estimate,
    bench_extrapolator_predict,
    bench_tvd,
    bench_workload_tick,
    bench_predicate_eval,
    bench_statement_parse,
    bench_quantile_interval,
    bench_push_engines_tick
);
criterion_main!(benches);
