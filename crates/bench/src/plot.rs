//! Minimal self-contained SVG charts for the experiment figures.
//!
//! The paper's artefacts are figures; this module lets the harness emit
//! them as actual images (`results/*.svg`) with zero plotting
//! dependencies: hand-rolled line and grouped-bar charts with linear or
//! log₁₀ y-axes, nice tick selection, and a legend.

use std::fmt::Write as _;

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in data coordinates (lines) or `y` per category
    /// index (bars; `x` is the category index).
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Builds a series.
    #[must_use]
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.into(),
            points,
        }
    }
}

/// Chart flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChartKind {
    /// Connected line chart with point markers.
    Lines,
    /// Grouped bars: each series contributes one bar per integer x.
    Bars,
}

/// Chart configuration.
#[derive(Debug, Clone)]
pub struct Plot {
    /// Title above the plot area.
    pub title: String,
    /// X-axis label.
    pub xlabel: String,
    /// Y-axis label.
    pub ylabel: String,
    /// Log₁₀ y-axis (Figure 5-b style).
    pub log_y: bool,
    /// Chart flavour.
    pub kind: ChartKind,
    /// Category names for bar charts (x tick labels); empty for lines.
    pub categories: Vec<String>,
}

const WIDTH: f64 = 860.0;
const HEIGHT: f64 = 520.0;
const MARGIN_L: f64 = 86.0;
const MARGIN_R: f64 = 24.0;
const MARGIN_T: f64 = 54.0;
const MARGIN_B: f64 = 64.0;
const PALETTE: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
];

fn nice_ticks(lo: f64, hi: f64, target: usize) -> Vec<f64> {
    if hi <= lo || hi.is_nan() || lo.is_nan() {
        return vec![lo];
    }
    let raw_step = (hi - lo) / target as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = mag
        * if norm < 1.5 {
            1.0
        } else if norm < 3.5 {
            2.0
        } else if norm < 7.5 {
            5.0
        } else {
            10.0
        };
    let start = (lo / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut t = start;
    while t <= hi + step * 1e-9 {
        ticks.push(t);
        t += step;
    }
    ticks
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if !(1e-3..1e6).contains(&a) {
        format!("{v:.0e}")
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else if a >= 1.0 {
        let s = format!("{v:.2}");
        s.trim_end_matches('0').trim_end_matches('.').to_owned()
    } else {
        format!("{v:.3}")
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

impl Plot {
    /// Renders the chart to an SVG document string.
    ///
    /// Non-finite points are skipped; on a log axis, non-positive values
    /// are skipped as well. An entirely empty chart still renders axes.
    #[must_use]
    pub fn render(&self, series: &[Series]) -> String {
        let transform = |y: f64| if self.log_y { y.log10() } else { y };
        let usable =
            |&(x, y): &(f64, f64)| x.is_finite() && y.is_finite() && (!self.log_y || y > 0.0);

        // Data bounds.
        let mut xs: Vec<f64> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for s in series {
            for p in s.points.iter().filter(|p| usable(p)) {
                xs.push(p.0);
                ys.push(transform(p.1));
            }
        }
        let (x_lo, x_hi) = match self.kind {
            ChartKind::Bars => (-0.5, self.categories.len().max(1) as f64 - 0.5),
            ChartKind::Lines => {
                let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                if lo.is_finite() && hi > lo {
                    (lo, hi)
                } else if lo.is_finite() {
                    (lo - 0.5, lo + 0.5)
                } else {
                    (0.0, 1.0)
                }
            }
        };
        let (mut y_lo, mut y_hi) = {
            let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if lo.is_finite() && hi > lo {
                (lo, hi)
            } else if lo.is_finite() {
                (lo - 0.5, lo + 0.5)
            } else {
                (0.0, 1.0)
            }
        };
        if !self.log_y && y_lo > 0.0 && y_lo < 0.3 * y_hi {
            y_lo = 0.0; // anchor near-zero data at zero
        }
        let pad = (y_hi - y_lo) * 0.06;
        y_hi += pad;
        if self.log_y || y_lo > 0.0 {
            y_lo -= pad;
        }

        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let px = |x: f64| MARGIN_L + (x - x_lo) / (x_hi - x_lo) * plot_w;
        let py = |y: f64| MARGIN_T + (1.0 - (y - y_lo) / (y_hi - y_lo)) * plot_h;

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
        );
        let _ = write!(
            svg,
            r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="30" text-anchor="middle" font-size="18" font-weight="bold">{}</text>"#,
            WIDTH / 2.0,
            xml_escape(&self.title)
        );

        // Gridlines + y ticks.
        let y_ticks = if self.log_y {
            let lo = y_lo.floor() as i64;
            let hi = y_hi.ceil() as i64;
            (lo..=hi).map(|e| e as f64).collect()
        } else {
            nice_ticks(y_lo, y_hi, 6)
        };
        for &t in &y_ticks {
            if t < y_lo || t > y_hi {
                continue;
            }
            let y = py(t);
            let _ = write!(
                svg,
                r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
                WIDTH - MARGIN_R
            );
            let label = if self.log_y {
                format!("1e{}", t as i64)
            } else {
                fmt_tick(t)
            };
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" text-anchor="end" font-size="12">{label}</text>"#,
                MARGIN_L - 8.0,
                y + 4.0
            );
        }

        // X ticks.
        match self.kind {
            ChartKind::Bars => {
                for (i, cat) in self.categories.iter().enumerate() {
                    let x = px(i as f64);
                    let _ = write!(
                        svg,
                        r#"<text x="{x:.1}" y="{:.1}" text-anchor="middle" font-size="12">{}</text>"#,
                        HEIGHT - MARGIN_B + 20.0,
                        xml_escape(cat)
                    );
                }
            }
            ChartKind::Lines => {
                for t in nice_ticks(x_lo, x_hi, 7) {
                    let x = px(t);
                    let _ = write!(
                        svg,
                        r##"<line x1="{x:.1}" y1="{:.1}" x2="{x:.1}" y2="{:.1}" stroke="#eee"/>"##,
                        MARGIN_T,
                        HEIGHT - MARGIN_B
                    );
                    let _ = write!(
                        svg,
                        r#"<text x="{x:.1}" y="{:.1}" text-anchor="middle" font-size="12">{}</text>"#,
                        HEIGHT - MARGIN_B + 20.0,
                        fmt_tick(t)
                    );
                }
            }
        }

        // Axes.
        let _ = write!(
            svg,
            r#"<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" y2="{:.1}" stroke="black"/>"#,
            HEIGHT - MARGIN_B
        );
        let _ = write!(
            svg,
            r#"<line x1="{MARGIN_L}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="black"/>"#,
            HEIGHT - MARGIN_B,
            WIDTH - MARGIN_R,
            HEIGHT - MARGIN_B
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="middle" font-size="14">{}</text>"#,
            WIDTH / 2.0,
            HEIGHT - 16.0,
            xml_escape(&self.xlabel)
        );
        let _ = write!(
            svg,
            r#"<text x="20" y="{}" text-anchor="middle" font-size="14" transform="rotate(-90 20 {})">{}</text>"#,
            HEIGHT / 2.0,
            HEIGHT / 2.0,
            xml_escape(&self.ylabel)
        );

        // Data.
        match self.kind {
            ChartKind::Lines => {
                for (si, s) in series.iter().enumerate() {
                    let color = PALETTE[si % PALETTE.len()];
                    let pts: Vec<(f64, f64)> = s
                        .points
                        .iter()
                        .filter(|p| usable(p))
                        .map(|&(x, y)| (px(x), py(transform(y))))
                        .collect();
                    if pts.len() > 1 {
                        let path: String = pts
                            .iter()
                            .map(|(x, y)| format!("{x:.1},{y:.1}"))
                            .collect::<Vec<_>>()
                            .join(" ");
                        let _ = write!(
                            svg,
                            r#"<polyline points="{path}" fill="none" stroke="{color}" stroke-width="2"/>"#
                        );
                    }
                    for (x, y) in &pts {
                        let _ = write!(
                            svg,
                            r#"<circle cx="{x:.1}" cy="{y:.1}" r="3.4" fill="{color}"/>"#
                        );
                    }
                }
            }
            ChartKind::Bars => {
                let groups = self.categories.len().max(1) as f64;
                let group_w = plot_w / groups;
                let bar_w = (group_w * 0.72) / series.len().max(1) as f64;
                let base_y = py(if self.log_y { y_lo } else { 0.0f64.max(y_lo) });
                for (si, s) in series.iter().enumerate() {
                    let color = PALETTE[si % PALETTE.len()];
                    for p in s.points.iter().filter(|p| usable(p)) {
                        let group_center = px(p.0);
                        let x = group_center - 0.36 * group_w + si as f64 * bar_w;
                        let y = py(transform(p.1));
                        let h = (base_y - y).max(0.0);
                        let _ = write!(
                            svg,
                            r#"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{h:.1}" fill="{color}"/>"#,
                            bar_w * 0.92
                        );
                    }
                }
            }
        }

        // Legend.
        let legend_x = MARGIN_L + 14.0;
        for (si, s) in series.iter().enumerate() {
            let color = PALETTE[si % PALETTE.len()];
            let y = MARGIN_T + 8.0 + si as f64 * 18.0;
            let _ = write!(
                svg,
                r#"<rect x="{legend_x}" y="{:.1}" width="12" height="12" fill="{color}"/>"#,
                y - 10.0
            );
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{y:.1}" font-size="12">{}</text>"#,
                legend_x + 18.0,
                xml_escape(&s.label)
            );
        }

        svg.push_str("</svg>");
        svg
    }

    /// Renders and writes the chart to `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error creating or writing the file.
    pub fn write_svg(&self, path: &std::path::Path, series: &[Series]) -> std::io::Result<()> {
        std::fs::write(path, self.render(series))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines_plot() -> Plot {
        Plot {
            title: "T".into(),
            xlabel: "x".into(),
            ylabel: "y".into(),
            log_y: false,
            kind: ChartKind::Lines,
            categories: vec![],
        }
    }

    #[test]
    fn renders_valid_svg_skeleton() {
        let svg = lines_plot().render(&[Series::new("a", vec![(0.0, 1.0), (1.0, 2.0)])]);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains(">T</text>"));
        assert!(svg.contains(">a</text>"), "legend label present");
    }

    #[test]
    fn escapes_markup_in_labels() {
        let mut p = lines_plot();
        p.title = "a < b & c".into();
        let svg = p.render(&[]);
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(!svg.contains("a < b & c"));
    }

    #[test]
    fn log_axis_skips_nonpositive_points() {
        let mut p = lines_plot();
        p.log_y = true;
        let svg = p.render(&[Series::new(
            "s",
            vec![(0.0, 0.0), (1.0, 10.0), (2.0, 1000.0)],
        )]);
        // Two usable points → one polyline, two markers.
        assert_eq!(svg.matches("<circle").count(), 2);
        assert!(svg.contains("1e"), "log tick labels");
    }

    #[test]
    fn bar_chart_draws_one_rect_per_value() {
        let p = Plot {
            title: "bars".into(),
            xlabel: String::new(),
            ylabel: "msgs".into(),
            log_y: false,
            kind: ChartKind::Bars,
            categories: vec!["A".into(), "B".into()],
        };
        let svg = p.render(&[
            Series::new("s1", vec![(0.0, 5.0), (1.0, 3.0)]),
            Series::new("s2", vec![(0.0, 2.0), (1.0, 4.0)]),
        ]);
        // 4 data rects + 2 legend swatches + background.
        assert_eq!(svg.matches("<rect").count(), 7);
        assert!(svg.contains(">A</text>"));
        assert!(svg.contains(">B</text>"));
    }

    #[test]
    fn empty_chart_still_renders_axes() {
        let svg = lines_plot().render(&[]);
        assert!(svg.contains("<line"));
        assert!(svg.ends_with("</svg>"));
    }

    #[test]
    fn nice_ticks_are_round_and_cover_range() {
        let ticks = nice_ticks(0.0, 100.0, 6);
        assert!(ticks.contains(&0.0));
        assert!(ticks.contains(&100.0));
        for w in ticks.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Degenerate range.
        assert_eq!(nice_ticks(5.0, 5.0, 6), vec![5.0]);
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(fmt_tick(0.0), "0");
        assert_eq!(fmt_tick(2.5), "2.5");
        assert_eq!(fmt_tick(1500.0), "1500");
        assert_eq!(fmt_tick(2_000_000.0), "2e6");
    }
}
