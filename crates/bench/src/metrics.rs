//! Process-level memory metrics for the benchmark binaries: a counting
//! global allocator (allocation count + cumulative bytes, so each bench
//! phase can report its allocation pressure) and peak resident set size
//! read from the kernel (`VmHWM` in `/proc/self/status`).
//!
//! Every `BENCH_*.json` writer embeds a [`memory_json`] block so the
//! artefacts double as a regression record for allocator behaviour: a
//! change that starts allocating per walk step shows up as an
//! order-of-magnitude jump in the phase's `allocations` delta even when
//! wall-clock noise hides it.
//!
//! The counters are monotone and relaxed — they order nothing, so the
//! counting allocator adds two uncontended atomic increments per
//! allocation and is cheap enough to leave installed for every run.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Total allocations served since process start.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
/// Total bytes requested since process start (cumulative, not live).
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts calls and bytes.
///
/// Install it in a benchmark binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: digest_bench::metrics::CountingAlloc = digest_bench::metrics::CountingAlloc;
/// ```
pub struct CountingAlloc;

#[allow(unsafe_code)]
// SAFETY: defers entirely to `System` for memory management; the wrapper
// only bumps monotone counters and never touches the returned pointers.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // relaxed-ok: monotone telemetry counters; no ordering needed.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // relaxed-ok: monotone telemetry counters; no ordering needed.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// A point-in-time reading of the allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocations served so far.
    pub allocations: u64,
    /// Cumulative bytes requested so far.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Reads the current counter values.
    #[must_use]
    pub fn now() -> Self {
        Self {
            // relaxed-ok: monotone telemetry counters; no ordering needed.
            allocations: ALLOCATIONS.load(Ordering::Relaxed),
            // relaxed-ok: monotone telemetry counters; no ordering needed.
            bytes: ALLOCATED_BYTES.load(Ordering::Relaxed),
        }
    }

    /// Counter deltas since an earlier snapshot (one bench phase).
    #[must_use]
    pub fn delta_since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocations: self.allocations.saturating_sub(earlier.allocations),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }

    /// The delta as a JSON object for a per-phase `BENCH_*.json` entry.
    #[must_use]
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "allocations": self.allocations,
            "allocated_bytes": self.bytes,
        })
    }
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` off Linux or when the file is absent.
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kib: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kib * 1024);
        }
    }
    None
}

/// The process-wide memory block every `BENCH_*.json` writer embeds:
/// peak RSS plus the total allocation counters at call time.
#[must_use]
pub fn memory_json() -> serde_json::Value {
    let totals = AllocSnapshot::now();
    let rss = peak_rss_bytes().map_or(serde_json::Value::Null, |b| serde_json::json!(b));
    serde_json::json!({
        "peak_rss_bytes": rss,
        "total_allocations": totals.allocations,
        "total_allocated_bytes": totals.bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_are_monotone_and_deltas_subtract() {
        let before = AllocSnapshot::now();
        let after = AllocSnapshot::now();
        assert!(after.allocations >= before.allocations);
        let d = after.delta_since(&before);
        assert_eq!(d.allocations, after.allocations - before.allocations);
    }

    #[test]
    fn peak_rss_parses_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes().expect("VmHWM present on Linux");
            assert!(rss > 0);
        }
    }

    #[test]
    fn memory_json_has_expected_keys() {
        let v = memory_json();
        assert!(v.get("peak_rss_bytes").is_some());
        assert!(v.get("total_allocations").is_some());
        assert!(v.get("total_allocated_bytes").is_some());
    }
}
