//! §VII reproduction: why not in-network tree aggregation?
//!
//! The paper's related-work section rejects TAG for unstructured P2P
//! databases: "with its tree-based aggregation scheme, it is prone to
//! severe miscalculations due to frequent fragmentation". This experiment
//! quantifies that claim on the churning MEMORY overlay: TAG at several
//! rebuild intervals vs Digest (`PRED3+RPT`), reporting per-tick error
//! statistics and total messages. TAG is nearly free per epoch on a
//! static network — and wrong by whole subtrees under churn, with a
//! cost/staleness dial (frequent rebuilds flood the network; rare
//! rebuilds fragment).

use digest_bench::{banner, write_json, Scale};
use digest_core::tag::{TagConfig, TreeAggregationEngine};
use digest_core::{
    AggregateOp, ContinuousQuery, DigestEngine, EngineConfig, EstimatorKind, Precision,
    SchedulerKind,
};
use digest_db::Expr;
use digest_sampling::SamplingConfig;
use digest_sim::RunReport;
use digest_workload::{MemoryConfig, MemoryWorkload, Workload};
use serde_json::json;

/// Relative-error statistics of the COUNT estimate: (mean, max, fraction
/// of ticks worse than 10 %).
fn error_stats(report: &RunReport) -> (f64, f64, f64) {
    let errs: Vec<f64> = report
        .records
        .iter()
        .map(|r| (r.estimate - r.exact).abs() / r.exact.max(1.0))
        .collect();
    let mean = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
    let max = errs.iter().copied().fold(0.0, f64::max);
    let frac_bad = errs.iter().filter(|e| **e > 0.10).count() as f64 / errs.len().max(1) as f64;
    (mean, max, frac_bad)
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "TAG (§VII)",
        "Tree aggregation under churn: miscalculation vs cost",
        scale,
    );

    // COUNT(*) under churn: fragmentation drops whole subtrees, which is
    // mass loss COUNT cannot hide (AVG over i.i.d. values would — losing a
    // random subtree barely moves a mean). Churn is cranked well above the
    // MEMORY default so the run contains many fragmentation events.
    let make = || {
        let (units, nodes, seconds) = match scale {
            Scale::Full => (1_000, 820, 3_600),
            Scale::Quick => (500, 200, 2_880),
        };
        // Heavy but *balanced* churn: joins are tuned to replace departed
        // units so the population stays roughly level while the membership
        // turns over several times during the run.
        let leave_prob = 0.001;
        let units_per_node = units as f64 / nodes as f64;
        let leaves_per_second = nodes as f64 * leave_prob;
        MemoryWorkload::new(MemoryConfig {
            leave_prob,
            join_rate: leaves_per_second * units_per_node,
            ..MemoryConfig::reduced(units, nodes, seconds)
        })
    };
    let probe = make();
    let n0 = probe.db().total_tuples() as f64;
    // Resolution / confidence in tuples: 5 % / 2.5 % of the population.
    let (delta, epsilon) = (0.05 * n0, 0.025 * n0);
    drop(probe);

    println!();
    println!("query: SELECT COUNT(*) FROM R  [δ = 5%·N₀, ε = 2.5%·N₀, p = 0.95]");
    println!();
    println!(
        "{:>16} {:>12} {:>12} {:>12} {:>12}",
        "system", "messages", "mean rel err", "max rel err", "frac > 10%"
    );
    let mut rows = Vec::new();

    let count_query = |w: &MemoryWorkload| {
        ContinuousQuery::new(
            AggregateOp::Count,
            Expr::first_attr(w.db().schema()),
            Precision::new(delta, epsilon, 0.95).expect("precision"),
        )
    };

    for rebuild in [1u64, 10, 40] {
        let mut w = make();
        let query = count_query(&w);
        let mut sys = TreeAggregationEngine::new(
            query,
            TagConfig {
                rebuild_interval: rebuild,
            },
        );
        let report = digest_bench::run_full(&mut w, &mut sys, delta, epsilon, 71).expect("run");
        let (mean, max, frac) = error_stats(&report);
        let label = format!("TAG(rebuild={rebuild})");
        println!(
            "{label:>16} {:>12} {mean:>12.3} {max:>12.3} {frac:>12.3}",
            report.total_messages()
        );
        rows.push(json!({
            "system": label, "messages": report.total_messages(),
            "mean_rel_error": mean, "max_rel_error": max, "frac_worse_than_10pct": frac,
        }));
    }

    {
        let mut w = make();
        let query = count_query(&w);
        let mut sys = DigestEngine::new(
            query,
            EngineConfig {
                scheduler: SchedulerKind::Pred(3),
                estimator: EstimatorKind::Repeated,
                sampling: SamplingConfig::recommended(w.graph().node_count()),
                size_refresh_interval: 3,
                size_sample_target: 1_000,
                ..Default::default()
            },
        )
        .expect("engine");
        let report = digest_bench::run_full(&mut w, &mut sys, delta, epsilon, 72).expect("run");
        let (mean, max, frac) = error_stats(&report);
        println!(
            "{:>16} {:>12} {mean:>12.3} {max:>12.3} {frac:>12.3}",
            "Digest COUNT",
            report.total_messages()
        );
        rows.push(json!({
            "system": "Digest COUNT", "messages": report.total_messages(),
            "mean_rel_error": mean, "max_rel_error": max, "frac_worse_than_10pct": frac,
        }));
    }

    println!();
    println!(
        "shape check (§VII): TAG with rare rebuilds fragments — large max \
         errors from silently lost subtrees; frequent rebuilds fix the error \
         but flood the network every interval. Digest holds bounded error at \
         sampling cost, indifferent to fragmentation."
    );
    write_json("tag", scale, &json!({ "rows": rows }));
}
