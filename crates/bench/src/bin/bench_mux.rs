//! Multi-query serving benchmark: what panel sharing and round
//! coalescing save over N independent engines.
//!
//! Two sections:
//!
//! * **coincident** — N = 32 panel-compatible queries (AVG over the same
//!   relation, mixed contracts) registered on one shared `QueryMux`,
//!   against the same 32 queries served sharing-off (one full engine
//!   each). Both legs run the canonical TEMPERATURE scenario under a
//!   `MuxAudit`, so the message ratio is compared *at equal audited
//!   violation rates* — a leg that broke its contracts would fail the
//!   gate, not win the comparison. The run exits non-zero unless the
//!   shared leg costs ≤ 0.5× the baseline messages with every query's
//!   empirical violation rate inside its own binomial bound.
//! * **heavy-traffic** — a Poisson arrival/departure stream
//!   (`TrafficGenerator`: skewed δ/ε tiers, predicate overlap classes)
//!   drives dynamic `register`/`deregister` on a shared mux, reporting
//!   served queries, occasion counts, mean inter-occasion gap, and total
//!   message cost.
//!
//! Timings are wall-clock and machine-dependent; the message counts and
//! violation rates are deterministic for a given seed and scale.

use digest_audit::MuxAudit;
use digest_bench::metrics::{memory_json, AllocSnapshot, CountingAlloc};
use digest_bench::{banner, temperature, Scale};
use digest_core::{ContinuousQuery, MuxConfig, Precision, QueryMux, TickContext};
use digest_db::{Expr, Predicate};
use digest_sim::{run_mux, RunConfig, RunReport};
use digest_workload::{PredicateClass, TrafficConfig, TrafficEvent, TrafficGenerator, Workload};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::json;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const N_QUERIES: usize = 32;
const SEED: u64 = 20080402;

/// The coincident fleet: all AVG over the same attribute (one shared
/// panel key), cycling through four contract tiers so round sizing is
/// exercised by heterogeneous (ε, p) requirements.
fn fleet(w: &impl Workload) -> Vec<ContinuousQuery> {
    let tiers = [
        (8.0, 4.0, 0.90),
        (8.0, 2.0, 0.95),
        (4.0, 4.0, 0.90),
        (4.0, 2.0, 0.95),
    ];
    (0..N_QUERIES)
        .map(|i| {
            let (delta, eps, p) = tiers[i % tiers.len()];
            ContinuousQuery::avg(
                Expr::first_attr(w.db().schema()),
                Precision::new(delta, eps, p).unwrap(),
            )
        })
        .collect()
}

struct Leg {
    reports: Vec<RunReport>,
    audits: Vec<(u64, digest_audit::AuditReport)>,
    wall_ns: f64,
}

fn run_leg(scale: Scale, ticks: u64, sharing: bool) -> Leg {
    let mut workload = temperature(scale, 0);
    let mut mux = QueryMux::new(MuxConfig {
        sharing,
        ..MuxConfig::default()
    })
    .expect("valid mux config");
    let mut audit = MuxAudit::new();
    for q in fleet(&workload) {
        let id = mux.register(q).expect("register");
        audit
            .register(id, mux.query(id).expect("registered"))
            .expect("valid audit config");
    }
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    let start = Instant::now();
    let reports = run_mux(
        &mut workload,
        &mut mux,
        RunConfig::for_ticks(ticks),
        &mut rng,
        &mut audit,
    )
    .expect("benchmark run");
    let wall_ns = start.elapsed().as_secs_f64() * 1e9;
    Leg {
        reports,
        audits: audit.reports(),
        wall_ns,
    }
}

fn total_messages(leg: &Leg) -> u64 {
    leg.reports
        .iter()
        .map(|r| r.records.iter().map(|t| t.messages).sum::<u64>())
        .sum()
}

/// Mean ticks between consecutive served occasions, averaged over
/// queries (only queries with ≥ 2 occasions contribute).
fn mean_occasion_gap(leg: &Leg) -> f64 {
    let mut gaps = 0u64;
    let mut count = 0u64;
    for r in &leg.reports {
        let occasions: Vec<u64> = r
            .records
            .iter()
            .filter(|t| t.snapshot)
            .map(|t| t.tick)
            .collect();
        for pair in occasions.windows(2) {
            gaps += pair[1] - pair[0];
            count += 1;
        }
    }
    #[allow(clippy::cast_precision_loss)]
    if count == 0 {
        f64::NAN
    } else {
        gaps as f64 / count as f64
    }
}

/// Every audited query inside its own binomial violation bound?
fn contracts_hold(leg: &Leg) -> bool {
    leg.audits
        .iter()
        .all(|(_, r)| r.occasions == 0 || r.violation_rate <= r.violation_bound())
}

fn materialize(spec: &digest_workload::QuerySpec, w: &impl Workload) -> ContinuousQuery {
    let schema = w.db().schema();
    let mut q = ContinuousQuery::avg(
        Expr::first_attr(schema),
        Precision::new(spec.delta, spec.epsilon, spec.confidence).unwrap(),
    );
    q = match spec.predicate {
        PredicateClass::Unfiltered => q,
        PredicateClass::AboveMean => {
            q.with_predicate(Predicate::parse("temperature > 60", schema).unwrap())
        }
        PredicateClass::UpperTail => {
            q.with_predicate(Predicate::parse("temperature > 70", schema).unwrap())
        }
    };
    q
}

struct TrafficSummary {
    served: usize,
    peak_active: usize,
    occasions: u64,
    messages: u64,
    mean_gap: f64,
    wall_ns: f64,
}

/// Drives a shared mux under the Poisson arrival/departure stream: the
/// fixed-membership `run_mux` cannot model churn, so the loop calls
/// `register`/`deregister` between ticks the way a serving frontend
/// would.
fn run_traffic(scale: Scale, ticks: u64) -> TrafficSummary {
    let mut workload = temperature(scale, 1);
    let mut mux = QueryMux::new(MuxConfig::default()).expect("valid mux config");
    let mut generator = TrafficGenerator::new(TrafficConfig {
        arrival_rate: 0.4,
        mean_lifetime: 80.0,
        max_concurrent: 48,
        base_delta: 4.0,
        base_epsilon: 3.0,
        predicate_fraction: 0.25,
    });
    let mut rng = ChaCha8Rng::seed_from_u64(SEED ^ 0x7EA);
    let mut serial_to_id: BTreeMap<u64, u64> = BTreeMap::new();
    let mut last_occasion: BTreeMap<u64, u64> = BTreeMap::new();
    let mut served = 0usize;
    let mut peak_active = 0usize;
    let mut occasions = 0u64;
    let mut messages = 0u64;
    let mut gaps = 0u64;
    let mut gap_count = 0u64;

    let mut origin = workload.graph().nodes().next().expect("live node");
    let start = Instant::now();
    for tick in 0..ticks {
        workload.advance(&mut rng);
        if !workload.graph().contains(origin) {
            origin = workload.graph().random_node(&mut rng).expect("live node");
        }
        for event in generator.advance(&mut rng) {
            match event {
                TrafficEvent::Arrive(spec) => {
                    let q = materialize(&spec, &workload);
                    let id = mux.register(q).expect("register");
                    serial_to_id.insert(spec.serial, id);
                    served += 1;
                }
                TrafficEvent::Depart(serial) => {
                    if let Some(id) = serial_to_id.remove(&serial) {
                        mux.deregister(id);
                        last_occasion.remove(&id);
                    }
                }
            }
        }
        peak_active = peak_active.max(mux.len());
        if mux.is_empty() {
            continue;
        }
        let ctx = TickContext {
            tick,
            graph: workload.graph(),
            db: workload.db(),
            origin,
        };
        let outcomes = mux.on_tick_mux(&ctx, &mut rng).expect("mux tick");
        for o in &outcomes {
            messages += o.outcome.messages_this_tick;
            if o.outcome.snapshot_executed {
                occasions += 1;
                if let Some(prev) = last_occasion.insert(o.query, tick) {
                    gaps += tick - prev;
                    gap_count += 1;
                }
            }
        }
    }
    let wall_ns = start.elapsed().as_secs_f64() * 1e9;
    #[allow(clippy::cast_precision_loss)]
    let mean_gap = if gap_count == 0 {
        f64::NAN
    } else {
        gaps as f64 / gap_count as f64
    };
    TrafficSummary {
        served,
        peak_active,
        occasions,
        messages,
        mean_gap,
        wall_ns,
    }
}

fn main() -> ExitCode {
    let scale = Scale::from_args();
    banner(
        "BENCH_mux",
        "multi-query serving: shared panels vs N engines",
        scale,
    );
    let ticks = match scale {
        Scale::Full => 240,
        Scale::Quick => 120,
    };

    let alloc_start = AllocSnapshot::now();
    let shared = run_leg(scale, ticks, true);
    let alloc_after_shared = AllocSnapshot::now();
    let baseline = run_leg(scale, ticks, false);
    let alloc_after_baseline = AllocSnapshot::now();
    let shared_alloc = alloc_after_shared.delta_since(&alloc_start);
    let baseline_alloc = alloc_after_baseline.delta_since(&alloc_after_shared);

    let shared_messages = total_messages(&shared);
    let baseline_messages = total_messages(&baseline);
    #[allow(clippy::cast_precision_loss)]
    let ratio = if baseline_messages == 0 {
        f64::NAN
    } else {
        shared_messages as f64 / baseline_messages as f64
    };
    let shared_ok = contracts_hold(&shared);
    let baseline_ok = contracts_hold(&baseline);

    println!(
        "{:<34} {:>12} {:>10} {:>12} {:>10}",
        "leg", "messages", "gap", "wall_ms", "contracts"
    );
    for (label, leg, msgs) in [
        ("shared (QueryMux, N=32)", &shared, shared_messages),
        ("baseline (32 engines)", &baseline, baseline_messages),
    ] {
        println!(
            "{label:<34} {msgs:>12} {:>10.2} {:>12.1} {:>10}",
            mean_occasion_gap(leg),
            leg.wall_ns / 1e6,
            if contracts_hold(leg) {
                "ok"
            } else {
                "VIOLATED"
            },
        );
    }
    println!("message ratio shared/baseline: {ratio:.3} (gate ≤ 0.5)");

    let alloc_before_traffic = AllocSnapshot::now();
    let traffic = run_traffic(scale, ticks * 2);
    let traffic_alloc = AllocSnapshot::now().delta_since(&alloc_before_traffic);
    println!(
        "heavy-traffic: {} queries served (peak {} active), {} occasions, \
         {} messages, mean occasion gap {:.2} ticks",
        traffic.served, traffic.peak_active, traffic.occasions, traffic.messages, traffic.mean_gap,
    );

    let per_query: Vec<_> = shared
        .audits
        .iter()
        .zip(&baseline.audits)
        .map(|((id, s), (_, b))| {
            json!({
                "query": *id,
                "confidence": s.confidence,
                "shared_occasions": s.occasions,
                "shared_violation_rate": s.violation_rate,
                "baseline_occasions": b.occasions,
                "baseline_violation_rate": b.violation_rate,
                "violation_bound": s.violation_bound(),
            })
        })
        .collect();

    let out = json!({
        "benchmark": "BENCH_mux",
        "scale": scale.label(),
        "ticks": ticks,
        "queries": N_QUERIES,
        "coincident": {
            "shared_messages": shared_messages,
            "baseline_messages": baseline_messages,
            "message_ratio": ratio,
            "gate": 0.5,
            "shared_mean_occasion_gap": mean_occasion_gap(&shared),
            "baseline_mean_occasion_gap": mean_occasion_gap(&baseline),
            "shared_wall_ns": shared.wall_ns,
            "baseline_wall_ns": baseline.wall_ns,
            "shared_contracts_hold": shared_ok,
            "baseline_contracts_hold": baseline_ok,
            "shared_alloc": shared_alloc.to_json(),
            "baseline_alloc": baseline_alloc.to_json(),
            "per_query": per_query,
        },
        "heavy_traffic": {
            "ticks": ticks * 2,
            "served": traffic.served,
            "peak_active": traffic.peak_active,
            "occasions": traffic.occasions,
            "messages": traffic.messages,
            "mean_occasion_gap": traffic.mean_gap,
            "wall_ns": traffic.wall_ns,
            "alloc": traffic_alloc.to_json(),
        },
        "memory": memory_json(),
    });
    let path = std::path::Path::new("BENCH_mux.json");
    match std::fs::File::create(path) {
        Ok(mut f) => {
            if let Err(e) = writeln!(
                f,
                "{}",
                serde_json::to_string_pretty(&out).expect("valid json")
            ) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!();
                println!("[profile written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot create {}: {e}", path.display()),
    }

    if ratio <= 0.5 && shared_ok && baseline_ok {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "FAILED: ratio {ratio:.3} (gate 0.5), shared contracts {shared_ok}, \
             baseline contracts {baseline_ok}"
        );
        ExitCode::FAILURE
    }
}
