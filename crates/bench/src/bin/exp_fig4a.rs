//! Figure 4-a reproduction: effect of the extrapolation algorithm.
//!
//! TEMPERATURE dataset, fixed confidence (`ε = 2, p = 0.95`), sweeping the
//! resolution `δ/σ̂ ∈ {0.25 … 2}`. For each δ we count the snapshot
//! queries executed by `ALL` and by `PRED-k, k = 1..4`. Expected shape
//! (paper): near-`ALL` at small δ, then a steep drop — ≈ 75 % fewer
//! snapshots at `δ/σ̂ = 1`.

use digest_bench::{banner, engine_for, run_full, temperature, write_json, Scale};
use digest_core::{EstimatorKind, SchedulerKind};
use digest_workload::Workload;
use serde_json::json;

fn main() {
    let scale = Scale::from_args();
    banner(
        "FIGURE 4-a",
        "Snapshot queries vs δ/σ̂ (ALL vs PRED-k), TEMPERATURE",
        scale,
    );

    let ratios = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0];
    let schedulers: Vec<(String, SchedulerKind)> =
        std::iter::once(("ALL".to_owned(), SchedulerKind::All))
            .chain((1..=4).map(|k| (format!("PRED{k}"), SchedulerKind::Pred(k))))
            .collect();

    let probe = temperature(scale, 0);
    let sigma = probe.sigma_ref();
    let epsilon = 2.0;
    let p = 0.95;
    drop(probe);

    println!();
    print!("{:>8}", "δ/σ̂");
    for (name, _) in &schedulers {
        print!(" {name:>8}");
    }
    println!("   (snapshot queries; δ-violation rate in parens)");

    let mut results = Vec::new();
    for &ratio in &ratios {
        let delta = ratio * sigma;
        print!("{ratio:>8.2}");
        let mut row = serde_json::Map::new();
        row.insert("delta_over_sigma".into(), json!(ratio));
        for (name, kind) in &schedulers {
            let mut w = temperature(scale, 0);
            let mut engine = engine_for(&w, *kind, EstimatorKind::Repeated, delta, epsilon, p)
                .expect("valid engine");
            let report = run_full(&mut w, &mut engine, delta, epsilon, 11).expect("run");
            print!(" {:>8}", report.total_snapshots());
            row.insert(
                name.clone(),
                json!({
                    "snapshots": report.total_snapshots(),
                    "resolution_violation_rate": report.resolution_violation_rate(),
                }),
            );
        }
        println!();
        results.push(serde_json::Value::Object(row));
    }

    println!();
    println!(
        "shape check: at δ/σ̂ = 1 the PRED schedulers should run far fewer \
         snapshots than ALL (paper: ~75% fewer)."
    );
    write_json(
        "fig4a",
        scale,
        &json!({ "epsilon": epsilon, "p": p, "sigma": sigma, "rows": results }),
    );
}
