//! Parallel sampling-executor benchmark: occasion latency vs worker count.
//!
//! Builds a Barabási–Albert overlay (≥1000 nodes), fills every node with
//! tuples, then draws the same batch panels through the sampling operator
//! at 1, 2, 4, and 8 workers, in two modes:
//!
//! * **steady** (headline) — the operator's recommended configuration:
//!   walks continue across occasions and the occasion snapshot is cached,
//!   so after one untimed warm-up occasion every timed occasion pays only
//!   reset-length walk segments plus a cache probe. This is the paper's
//!   continuous-query steady state (§VI) and the scenario the PR 4
//!   occasion-latency target is measured on.
//! * **cold** — fresh walks every occasion (`continue_walks: false`),
//!   matching what the PR 3 benchmark measured; each occasion pays full
//!   mixing-length walks. Snapshot caching still applies.
//!
//! For each mode × worker count it measures wall-clock latency per
//! occasion (best of several repetitions) and verifies the panels are
//! **byte-identical** to the single-worker run — the executor's
//! determinism contract — before reporting speedups. A separate
//! wall-clock profiling pass (untimed) captures the per-phase breakdown
//! (snapshot build vs walk vs dispatch/reassembly) and the snapshot
//! cache statistics, all written to `BENCH_sampling.json`.
//!
//! The process exits non-zero if panels diverge in either mode **or** if
//! the steady-state run shows no snapshot reuse — CI's bench smoke rides
//! on both checks.
//!
//! `--scale quick` (default) is the CI smoke configuration; `--scale
//! full` runs a larger world with more repetitions. Timings are
//! wall-clock and machine-dependent; only the equality and reuse checks
//! are a correctness surface.

use digest_bench::metrics::{memory_json, AllocSnapshot, CountingAlloc};
use digest_bench::{banner, Scale};
use digest_db::{P2PDatabase, Schema, Tuple};
use digest_net::{topology, NodeId};
use digest_sampling::{SamplingConfig, SamplingOperator, SnapshotStats};
use digest_telemetry::{ClockMode, Stage};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde_json::json;
use std::io::Write as _;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// PR 3's committed quick-scale baseline (occasion_ns at workers = 1,
/// rebuild-per-occasion, fresh walks) — the reference the ≥2× occasion
/// latency target of PR 4 is measured against.
const PR3_BASELINE_OCCASION_NS: u64 = 629_161;

struct BenchParams {
    nodes: usize,
    panel: usize,
    occasions: usize,
    reps: usize,
}

impl BenchParams {
    fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Quick => Self {
                nodes: 1_500,
                panel: 128,
                occasions: 4,
                reps: 3,
            },
            Scale::Full => Self {
                nodes: 10_000,
                panel: 256,
                occasions: 8,
                reps: 5,
            },
        }
    }
}

/// Which occasion regime a measurement runs under.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Recommended config: continued walks + cached snapshots, one
    /// untimed warm-up occasion.
    Steady,
    /// Fresh mixing-length walks every occasion (the PR 3 measurement
    /// regime).
    Cold,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Steady => "steady",
            Mode::Cold => "cold",
        }
    }
}

/// One worker-count measurement: best-of-reps latency plus the exact
/// bytes of every panel drawn (for the cross-worker equality check).
struct Measurement {
    workers: usize,
    best_ns: u128,
    fingerprint: Vec<u8>,
    total_messages: u64,
    snapshot: SnapshotStats,
}

fn operator_for(nodes: usize, workers: usize, mode: Mode) -> SamplingOperator {
    let config = match mode {
        Mode::Steady => SamplingConfig {
            workers,
            ..SamplingConfig::recommended(nodes)
        },
        // Fresh walks each occasion (no pooling) keep per-occasion work
        // constant, matching the PR 3 measurement regime.
        Mode::Cold => SamplingConfig {
            workers,
            continue_walks: false,
            ..SamplingConfig::recommended(nodes)
        },
    };
    SamplingOperator::new(config).expect("valid sampling config")
}

fn fingerprint_batch(
    fingerprint: &mut Vec<u8>,
    batch: &[(digest_db::TupleHandle, Tuple, digest_sampling::SampleCost)],
) {
    for (handle, tuple, cost) in batch {
        fingerprint.extend_from_slice(handle.to_string().as_bytes());
        for v in tuple.values() {
            fingerprint.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        fingerprint.extend_from_slice(&cost.walk_messages.to_le_bytes());
        fingerprint.extend_from_slice(&cost.report_messages.to_le_bytes());
    }
}

/// Draws `occasions` panels of `panel` tuples and returns the elapsed
/// time (excluding the steady-mode warm-up occasion), a byte
/// fingerprint of everything the operator returned (including warm-up),
/// the message total, and the operator's snapshot-cache statistics.
fn run_once(
    g: &digest_net::Graph,
    db: &P2PDatabase,
    origin: NodeId,
    params: &BenchParams,
    workers: usize,
    mode: Mode,
) -> (u128, Vec<u8>, u64, SnapshotStats) {
    let mut op = operator_for(params.nodes, workers, mode);
    let mut rng = ChaCha8Rng::seed_from_u64(0x00D1_6E57);
    let mut fingerprint = Vec::new();
    if mode == Mode::Steady {
        // Warm-up: fills the walk pool and the snapshot cache; the
        // steady-state number measures occasions, not cold start.
        let batch = op
            .sample_tuples(g, db, origin, params.panel, &mut rng)
            .expect("warm-up batch");
        fingerprint_batch(&mut fingerprint, &batch);
    }
    let start = Instant::now();
    for _ in 0..params.occasions {
        if mode == Mode::Steady {
            // Occasion boundary: rewind the pool cursor so each timed
            // occasion continues the warmed walks at reset length.
            op.begin_occasion();
        }
        let batch = op
            .sample_tuples(g, db, origin, params.panel, &mut rng)
            .expect("benchmark batch");
        fingerprint_batch(&mut fingerprint, &batch);
    }
    let elapsed = start.elapsed().as_nanos();
    (
        elapsed,
        fingerprint,
        op.total_messages(),
        op.snapshot_stats(),
    )
}

/// Best-of-reps measurements for one mode across all worker counts.
fn measure_mode(
    g: &digest_net::Graph,
    db: &P2PDatabase,
    origin: NodeId,
    params: &BenchParams,
    mode: Mode,
) -> Vec<Measurement> {
    let mut measurements = Vec::new();
    for &workers in &WORKER_COUNTS {
        let mut best_ns = u128::MAX;
        let mut fingerprint = Vec::new();
        let mut total_messages = 0;
        let mut snapshot = SnapshotStats::default();
        for _ in 0..params.reps {
            let (ns, fp, messages, stats) = run_once(g, db, origin, params, workers, mode);
            best_ns = best_ns.min(ns);
            fingerprint = fp;
            total_messages = messages;
            snapshot = stats;
        }
        measurements.push(Measurement {
            workers,
            best_ns,
            fingerprint,
            total_messages,
            snapshot,
        });
    }
    measurements
}

/// Prints one mode's table and returns `(json runs, panels identical)`.
fn report_mode(
    params: &BenchParams,
    mode: Mode,
    measurements: &[Measurement],
) -> (Vec<serde_json::Value>, bool) {
    let baseline = &measurements[0];
    let identical = measurements.iter().all(|m| {
        m.fingerprint == baseline.fingerprint && m.total_messages == baseline.total_messages
    });
    println!("mode: {}", mode.label());
    println!(
        "{:>8} {:>14} {:>14} {:>9} {:>10}",
        "workers", "total_ns", "occasion_ns", "speedup", "panels"
    );
    let mut runs = Vec::new();
    for m in measurements {
        let speedup = if m.best_ns > 0 {
            (baseline.best_ns as f64) / (m.best_ns as f64)
        } else {
            f64::INFINITY
        };
        let occasion_ns = m.best_ns / (params.occasions as u128);
        println!(
            "{:>8} {:>14} {:>14} {:>8.2}x {:>10}",
            m.workers,
            m.best_ns,
            occasion_ns,
            speedup,
            if m.fingerprint == baseline.fingerprint {
                "identical"
            } else {
                "DIVERGED"
            },
        );
        runs.push(json!({
            "workers": m.workers,
            "total_ns": m.best_ns as u64,
            "occasion_ns": occasion_ns as u64,
            "speedup": speedup,
            "total_messages": m.total_messages,
            "panel_identical": m.fingerprint == baseline.fingerprint,
            "snapshot": {
                "built": m.snapshot.built,
                "reused": m.snapshot.reused,
                "patched": m.snapshot.patched,
            },
        }));
    }
    println!();
    (runs, identical)
}

/// Wall-clock profiling pass (untimed, workers = 1, steady mode):
/// captures the per-phase nanosecond breakdown and the snapshot cache
/// statistics of one steady run.
fn profile_phases(
    g: &digest_net::Graph,
    db: &P2PDatabase,
    origin: NodeId,
    params: &BenchParams,
) -> (serde_json::Value, SnapshotStats) {
    digest_telemetry::set_clock_mode(ClockMode::Wall);
    digest_telemetry::reset_stages();
    digest_telemetry::reset_metrics();
    let (_, _, _, snapshot) = run_once(g, db, origin, params, 1, Mode::Steady);
    let mut snapshot_build_ns = 0u64;
    let mut walk_ns = 0u64;
    let mut batch_ns = 0u64;
    for report in digest_telemetry::stage_reports() {
        match report.stage {
            Stage::SnapshotBuild => snapshot_build_ns = report.total,
            Stage::SamplingWalk => walk_ns = report.total,
            Stage::SamplingBatch => batch_ns = report.total,
            _ => {}
        }
    }
    digest_telemetry::set_clock_mode(ClockMode::Deterministic);
    // The batch span covers dispatch, every walk, and slot-order
    // reassembly; the snapshot refresh runs outside it, in the operator.
    let reassembly_ns = batch_ns.saturating_sub(walk_ns);
    let occasions = (params.occasions + 1) as u64; // + warm-up
    let phases = json!({
        "clock": "wall",
        "workers": 1,
        "mode": "steady",
        "occasions_profiled": occasions,
        "snapshot_build_ns": snapshot_build_ns,
        "walk_ns": walk_ns,
        "batch_ns": batch_ns,
        "reassembly_ns": reassembly_ns,
        "per_occasion": {
            "snapshot_build_ns": snapshot_build_ns / occasions,
            "walk_ns": walk_ns / occasions,
            "reassembly_ns": reassembly_ns / occasions,
        },
    });
    println!(
        "phase breakdown (wall, steady, workers=1, {} occasions incl. warm-up):",
        occasions
    );
    println!("  snapshot build : {snapshot_build_ns:>12} ns");
    println!("  walks          : {walk_ns:>12} ns");
    println!("  dispatch+reasm : {reassembly_ns:>12} ns");
    println!(
        "  snapshot cache : {} built, {} reused, {} patched",
        snapshot.built, snapshot.reused, snapshot.patched
    );
    println!();
    (phases, snapshot)
}

#[allow(clippy::too_many_lines)]
fn main() {
    let scale = Scale::from_args();
    let params = BenchParams::for_scale(scale);
    banner("BENCH_sampling", "sampling occasion latency", scale);

    let mut world_rng = ChaCha8Rng::seed_from_u64(20080402);
    let g = topology::barabasi_albert(params.nodes, 3, &mut world_rng).expect("topology");
    let mut db = P2PDatabase::new(Schema::single("a"));
    for node in g.nodes() {
        db.register_node(node);
        let tuples = world_rng.gen_range(1..5_u32);
        for _ in 0..tuples {
            let value = world_rng.gen_range(0.0..100.0_f64);
            db.insert(node, Tuple::single(value)).expect("insert");
        }
    }
    let origin = g.nodes().next().expect("non-empty graph");
    let hardware_threads =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "world: BA graph, {} nodes, {} tuples; panel {} × {} occasions, best of {} reps",
        g.node_count(),
        db.total_tuples(),
        params.panel,
        params.occasions,
        params.reps,
    );
    println!("hardware threads: {hardware_threads}");
    let single_core_warning = (hardware_threads < 2).then(|| {
        "WARNING: hardware_threads == 1 — worker counts > 1 cannot speed up and sub-1x \
         speedups are scheduler overhead, not a regression; only the single-worker \
         latency and the panel-equality check are meaningful on this host"
            .to_string()
    });
    if let Some(warning) = &single_core_warning {
        println!("{warning}");
    }
    println!();

    let alloc_start = AllocSnapshot::now();
    let steady = measure_mode(&g, &db, origin, &params, Mode::Steady);
    let alloc_after_steady = AllocSnapshot::now();
    let cold = measure_mode(&g, &db, origin, &params, Mode::Cold);
    let steady_alloc = alloc_after_steady.delta_since(&alloc_start);
    let cold_alloc = AllocSnapshot::now().delta_since(&alloc_after_steady);
    let (steady_runs, steady_identical) = report_mode(&params, Mode::Steady, &steady);
    let (cold_runs, cold_identical) = report_mode(&params, Mode::Cold, &cold);
    let identical = steady_identical && cold_identical;

    let (phases, snapshot) = profile_phases(&g, &db, origin, &params);
    let reuse_visible = snapshot.reused > 0;

    let steady_occasion_ns = (steady[0].best_ns / (params.occasions as u128)) as u64;
    let cold_occasion_ns = (cold[0].best_ns / (params.occasions as u128)) as u64;
    // The PR 3 baseline is the quick-scale BA-1500/128-panel scenario;
    // improvement factors are meaningless for other worlds.
    let improvement = (scale == Scale::Quick && steady_occasion_ns > 0)
        .then(|| PR3_BASELINE_OCCASION_NS as f64 / steady_occasion_ns as f64);
    let cold_improvement = (scale == Scale::Quick && cold_occasion_ns > 0)
        .then(|| PR3_BASELINE_OCCASION_NS as f64 / cold_occasion_ns as f64);

    if identical {
        println!("panels byte-identical across all worker counts (both modes)");
    } else {
        println!("ERROR: panels diverged across worker counts");
    }
    if !reuse_visible {
        println!("ERROR: steady-state run shows no snapshot reuse");
    }
    if let Some(x) = improvement {
        println!(
            "steady occasion latency {steady_occasion_ns} ns vs PR 3 baseline \
             {PR3_BASELINE_OCCASION_NS} ns → {x:.2}x (cold mode: {cold_occasion_ns} ns → {:.2}x)",
            cold_improvement.unwrap_or(0.0),
        );
    }

    // The vendored serde_json has no `Option` support in `json!`.
    let null_or = |v: Option<f64>| v.map_or(serde_json::Value::Null, |x| json!(x));
    let warning_json = single_core_warning
        .clone()
        .map_or(serde_json::Value::Null, serde_json::Value::String);
    let out = json!({
        "benchmark": "BENCH_sampling",
        "scale": scale.label(),
        "nodes": params.nodes,
        "panel": params.panel,
        "occasions": params.occasions,
        "reps": params.reps,
        "hardware_threads": hardware_threads,
        "single_core_warning": warning_json,
        "baseline": {
            "source": "PR 3 bench_sampling (rebuild-per-occasion, fresh walks), quick scale",
            "occasion_ns": PR3_BASELINE_OCCASION_NS,
        },
        "occasion_ns": steady_occasion_ns,
        "improvement_vs_pr3": null_or(improvement),
        "modes": {
            "steady": {
                "description": "continued walks + cached snapshots (recommended config); warm-up occasion untimed",
                "runs": steady_runs.clone(),
                "panels_identical": steady_identical,
                "occasion_ns": steady_occasion_ns,
                "improvement_vs_pr3": null_or(improvement),
                "alloc": steady_alloc.to_json(),
            },
            "cold": {
                "description": "fresh mixing-length walks every occasion (PR 3 measurement regime)",
                "runs": cold_runs,
                "panels_identical": cold_identical,
                "occasion_ns": cold_occasion_ns,
                "improvement_vs_pr3": null_or(cold_improvement),
                "alloc": cold_alloc.to_json(),
            },
        },
        "memory": memory_json(),
        "phases": phases,
        "snapshot": {
            "built": snapshot.built,
            "reused": snapshot.reused,
            "patched": snapshot.patched,
        },
        "snapshot_reuses": snapshot.reused,
        "runs": steady_runs,
        "panels_identical": identical,
    });
    let path = std::path::Path::new("BENCH_sampling.json");
    match std::fs::File::create(path) {
        Ok(mut f) => {
            if let Err(e) = writeln!(
                f,
                "{}",
                serde_json::to_string_pretty(&out).expect("valid json")
            ) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot create {}: {e}", path.display()),
    }

    if !identical || !reuse_visible {
        std::process::exit(1);
    }
}
