//! Parallel sampling-executor benchmark: occasion latency vs worker count.
//!
//! Builds a Barabási–Albert overlay (≥1000 nodes), fills every node with
//! tuples, then draws the same batch panels through the sampling operator
//! at 1, 2, 4, and 8 workers. For each worker count it measures the
//! wall-clock latency per occasion (best of several repetitions) and
//! verifies the panels are **byte-identical** to the single-worker run —
//! the executor's determinism contract — before reporting speedups and
//! writing `BENCH_sampling.json`.
//!
//! `--scale quick` (default) is the CI smoke configuration; `--scale
//! full` runs a larger world with more repetitions. Timings are
//! wall-clock and machine-dependent; only the equality check is a
//! correctness surface.

use digest_bench::{banner, Scale};
use digest_db::{P2PDatabase, Schema, Tuple};
use digest_net::{topology, NodeId};
use digest_sampling::{SamplingConfig, SamplingOperator};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde_json::json;
use std::io::Write as _;
use std::time::Instant;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct BenchParams {
    nodes: usize,
    panel: usize,
    occasions: usize,
    reps: usize,
}

impl BenchParams {
    fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Quick => Self {
                nodes: 1_500,
                panel: 128,
                occasions: 4,
                reps: 3,
            },
            Scale::Full => Self {
                nodes: 10_000,
                panel: 256,
                occasions: 8,
                reps: 5,
            },
        }
    }
}

/// One worker-count measurement: best-of-reps latency plus the exact
/// bytes of every panel drawn (for the cross-worker equality check).
struct Measurement {
    workers: usize,
    best_ns: u128,
    fingerprint: Vec<u8>,
    total_messages: u64,
}

fn operator_for(nodes: usize, workers: usize) -> SamplingOperator {
    // Fresh walks each occasion (no pooling) keep per-occasion work
    // constant, so the latency comparison across worker counts is clean.
    SamplingOperator::new(SamplingConfig {
        workers,
        continue_walks: false,
        ..SamplingConfig::recommended(nodes)
    })
    .expect("valid sampling config")
}

/// Draws `occasions` panels of `panel` tuples and returns the elapsed
/// time plus a byte fingerprint of everything the operator returned.
fn run_once(
    g: &digest_net::Graph,
    db: &P2PDatabase,
    origin: NodeId,
    params: &BenchParams,
    workers: usize,
) -> (u128, Vec<u8>, u64) {
    let mut op = operator_for(params.nodes, workers);
    let mut rng = ChaCha8Rng::seed_from_u64(0x00D1_6E57);
    let mut fingerprint = Vec::new();
    let start = Instant::now();
    for _ in 0..params.occasions {
        let batch = op
            .sample_tuples(g, db, origin, params.panel, &mut rng)
            .expect("benchmark batch");
        for (handle, tuple, cost) in batch {
            fingerprint.extend_from_slice(handle.to_string().as_bytes());
            for v in tuple.values() {
                fingerprint.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            fingerprint.extend_from_slice(&cost.walk_messages.to_le_bytes());
            fingerprint.extend_from_slice(&cost.report_messages.to_le_bytes());
        }
    }
    let elapsed = start.elapsed().as_nanos();
    (elapsed, fingerprint, op.total_messages())
}

fn main() {
    let scale = Scale::from_args();
    let params = BenchParams::for_scale(scale);
    banner("BENCH_sampling", "parallel walk executor latency", scale);

    let mut world_rng = ChaCha8Rng::seed_from_u64(20080402);
    let g = topology::barabasi_albert(params.nodes, 3, &mut world_rng).expect("topology");
    let mut db = P2PDatabase::new(Schema::single("a"));
    for node in g.nodes() {
        db.register_node(node);
        let tuples = world_rng.gen_range(1..5_u32);
        for _ in 0..tuples {
            let value = world_rng.gen_range(0.0..100.0_f64);
            db.insert(node, Tuple::single(value)).expect("insert");
        }
    }
    let origin = g.nodes().next().expect("non-empty graph");
    let hardware_threads =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "world: BA graph, {} nodes, {} tuples; panel {} × {} occasions, best of {} reps",
        g.node_count(),
        db.total_tuples(),
        params.panel,
        params.occasions,
        params.reps,
    );
    println!("hardware threads: {hardware_threads}");
    if hardware_threads < 2 {
        println!("note: single-core host — expect no speedup, only the equality check matters");
    }
    println!();

    let mut measurements: Vec<Measurement> = Vec::new();
    for &workers in &WORKER_COUNTS {
        let mut best_ns = u128::MAX;
        let mut fingerprint = Vec::new();
        let mut total_messages = 0;
        for _ in 0..params.reps {
            let (ns, fp, messages) = run_once(&g, &db, origin, &params, workers);
            best_ns = best_ns.min(ns);
            fingerprint = fp;
            total_messages = messages;
        }
        measurements.push(Measurement {
            workers,
            best_ns,
            fingerprint,
            total_messages,
        });
    }

    let baseline = &measurements[0];
    let identical = measurements.iter().all(|m| {
        m.fingerprint == baseline.fingerprint && m.total_messages == baseline.total_messages
    });

    println!(
        "{:>8} {:>14} {:>14} {:>9} {:>10}",
        "workers", "total_ns", "occasion_ns", "speedup", "panels"
    );
    let mut runs = Vec::new();
    for m in &measurements {
        let speedup = if m.best_ns > 0 {
            (baseline.best_ns as f64) / (m.best_ns as f64)
        } else {
            f64::INFINITY
        };
        let occasion_ns = m.best_ns / (params.occasions as u128);
        println!(
            "{:>8} {:>14} {:>14} {:>8.2}x {:>10}",
            m.workers,
            m.best_ns,
            occasion_ns,
            speedup,
            if m.fingerprint == baseline.fingerprint {
                "identical"
            } else {
                "DIVERGED"
            },
        );
        runs.push(json!({
            "workers": m.workers,
            "total_ns": m.best_ns as u64,
            "occasion_ns": occasion_ns as u64,
            "speedup": speedup,
            "total_messages": m.total_messages,
            "panel_identical": m.fingerprint == baseline.fingerprint,
        }));
    }
    println!();
    if identical {
        println!("panels byte-identical across all worker counts");
    } else {
        println!("ERROR: panels diverged across worker counts");
    }

    let out = json!({
        "benchmark": "BENCH_sampling",
        "scale": scale.label(),
        "nodes": params.nodes,
        "panel": params.panel,
        "occasions": params.occasions,
        "reps": params.reps,
        "hardware_threads": hardware_threads,
        "runs": runs,
        "panels_identical": identical,
    });
    let path = std::path::Path::new("BENCH_sampling.json");
    match std::fs::File::create(path) {
        Ok(mut f) => {
            if let Err(e) = writeln!(
                f,
                "{}",
                serde_json::to_string_pretty(&out).expect("valid json")
            ) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot create {}: {e}", path.display()),
    }

    if !identical {
        std::process::exit(1);
    }
}
