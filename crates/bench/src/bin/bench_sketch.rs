//! Sketch-aggregate benchmark: merge throughput of the mergeable
//! sketches and per-occasion sweep cost of the continuous estimators
//! (DESIGN.md §17).
//!
//! Two sections:
//!
//! * **merge** — a deterministic value stream is split across 64 shard
//!   sketches (one per simulated panel fragment), each shard is folded
//!   with `accumulate`, and the shards are merged into one summary the
//!   way the sweep estimator combines per-node states at finalisation.
//!   Reports accumulate throughput and merge wall time per kind, and
//!   gates the merged estimate against each sketch's documented error
//!   bound (UDDSketch relative-α quantile bound, HLL++ `3σ` with
//!   `σ = 1.04/√m`, space-saving exact heavy-hitter recovery at
//!   capacity `⌈2k/ε⌉`).
//! * **sweep** — the canonical TEMPERATURE workload drives one
//!   [`SketchSweepEstimator`] per kind (`p90`, `COUNT DISTINCT`,
//!   `top-4` under the per-kind default contracts) through a full run,
//!   reporting mean per-occasion sweep cost and the fresh/retained node
//!   split of the fingerprint cache (§IV-B2 retain/replace analogue),
//!   and gating the final estimate against the exact oracle within each
//!   kind's ε (relative ε for `COUNT DISTINCT`).
//!
//! Timings are wall-clock and machine-dependent; estimates, exact
//! values, and node splits are deterministic for a given seed and scale
//! (the sketches draw no randomness at all).

use digest_bench::metrics::{memory_json, AllocSnapshot, CountingAlloc};
use digest_bench::{banner, temperature, Scale};
use digest_core::{AggregateOp, ContinuousQuery, Precision, SketchSweepEstimator};
use digest_db::Expr;
use digest_sketch::{splitmix64, HllSketch, SpaceSavingSketch, UddSketch};
use digest_workload::Workload;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::json;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const SEED: u64 = 20080402;
const SHARDS: usize = 64;

/// Deterministic value stream shared by every merge leg: uniform-ish in
/// `[0, 1000)` via the SplitMix64 finalizer (R5: no RNG state).
fn stream_value(i: u64) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    let unit = (splitmix64(SEED ^ i) >> 11) as f64 / (1u64 << 53) as f64;
    unit * 1000.0
}

/// Heavy-hitter cell stream: four hot cells carry 60% of the mass, the
/// rest spreads over ~990 cold cells — well inside the space-saving
/// `ε`-deficient-count regime (Metwally et al.; DESIGN.md §17).
fn stream_cell(i: u64) -> i64 {
    let r = splitmix64(SEED.wrapping_add(1) ^ i);
    if r % 10 < 6 {
        i64::try_from(r % 4).unwrap_or(0)
    } else {
        i64::try_from(r % 990).unwrap_or(0) + 10
    }
}

struct MergeLeg {
    accumulate_ns: f64,
    merge_ns: f64,
    estimate: f64,
    exact: f64,
    error: f64,
    bound: f64,
    ok: bool,
}

/// UDDSketch leg: shard, merge, and check the merged p50 against the
/// exact sample median within the sketch's relative-α bound.
fn merge_udd(values_per_shard: u64) -> MergeLeg {
    let total = values_per_shard * SHARDS as u64;
    let mut shards: Vec<UddSketch> = (0..SHARDS)
        .map(|_| UddSketch::new(1e-3, 4096).expect("valid UDD parameters"))
        .collect();
    let start = Instant::now();
    for (s, shard) in shards.iter_mut().enumerate() {
        let base = s as u64 * values_per_shard;
        for i in 0..values_per_shard {
            shard.accumulate(stream_value(base + i));
        }
    }
    #[allow(clippy::cast_precision_loss)]
    let accumulate_ns = start.elapsed().as_secs_f64() * 1e9 / total as f64;

    let start = Instant::now();
    let mut merged = shards.swap_remove(0);
    for shard in &shards {
        merged.merge(shard).expect("compatible UDD shards");
    }
    let merge_ns = start.elapsed().as_secs_f64() * 1e9;

    let mut exact_values: Vec<f64> = (0..total).map(stream_value).collect();
    exact_values.sort_by(f64::total_cmp);
    let exact = exact_values[exact_values.len() / 2];
    let estimate = merged.quantile(0.5).expect("non-empty sketch");
    let error = (estimate - exact).abs() / exact.abs().max(1.0);
    // Relative bound 2α/(1−α) on the value axis, with slack for the
    // collapsed α after merging; α0 = 1e-3 keeps this well under 5%.
    let bound = 0.05;
    MergeLeg {
        accumulate_ns,
        merge_ns,
        estimate,
        exact,
        error,
        bound,
        ok: error <= bound,
    }
}

/// HLL++ leg: shard, merge, and check the merged cardinality against
/// the exact distinct-key count within 3σ, σ = 1.04/√m.
fn merge_hll(values_per_shard: u64, distinct: u64) -> MergeLeg {
    let total = values_per_shard * SHARDS as u64;
    let mut shards: Vec<HllSketch> = (0..SHARDS)
        .map(|_| HllSketch::new(12).expect("valid precision"))
        .collect();
    let start = Instant::now();
    for (s, shard) in shards.iter_mut().enumerate() {
        let base = s as u64 * values_per_shard;
        for i in 0..values_per_shard {
            shard.accumulate_key((base + i) % distinct);
        }
    }
    #[allow(clippy::cast_precision_loss)]
    let accumulate_ns = start.elapsed().as_secs_f64() * 1e9 / total as f64;

    let start = Instant::now();
    let mut merged = shards.swap_remove(0);
    for shard in &shards {
        merged.merge(shard).expect("compatible HLL shards");
    }
    let merge_ns = start.elapsed().as_secs_f64() * 1e9;

    #[allow(clippy::cast_precision_loss)]
    let exact = distinct.min(total) as f64;
    let estimate = merged.estimate();
    let error = (estimate - exact).abs() / exact;
    let bound = 3.0 * merged.standard_error();
    MergeLeg {
        accumulate_ns,
        merge_ns,
        estimate,
        exact,
        error,
        bound,
        ok: error <= bound,
    }
}

/// Space-saving leg: shard, merge, and require the merged summary to
/// recover exactly the four planted heavy hitters.
fn merge_space_saving(values_per_shard: u64) -> MergeLeg {
    let total = values_per_shard * SHARDS as u64;
    let mut shards: Vec<SpaceSavingSketch> = (0..SHARDS)
        .map(|_| SpaceSavingSketch::for_mass_error(4, 0.1).expect("valid sizing"))
        .collect();
    let start = Instant::now();
    for (s, shard) in shards.iter_mut().enumerate() {
        let base = s as u64 * values_per_shard;
        for i in 0..values_per_shard {
            shard.accumulate_cell(stream_cell(base + i));
        }
    }
    #[allow(clippy::cast_precision_loss)]
    let accumulate_ns = start.elapsed().as_secs_f64() * 1e9 / total as f64;

    let start = Instant::now();
    let mut merged = shards.swap_remove(0);
    for shard in &shards {
        merged.merge(shard).expect("compatible summaries");
    }
    let merge_ns = start.elapsed().as_secs_f64() * 1e9;

    let top: Vec<i64> = merged.top_k(4).into_iter().map(|(cell, _)| cell).collect();
    let mut recovered = top.clone();
    recovered.sort_unstable();
    let ok = recovered == vec![0, 1, 2, 3];
    let estimate = merged.top_k_mass(4).unwrap_or(f64::NAN);
    // The planted stream puts 60% of its mass on the four hot cells.
    let exact = 0.6;
    let error = (estimate - exact).abs();
    MergeLeg {
        accumulate_ns,
        merge_ns,
        estimate,
        exact,
        error,
        bound: 0.1,
        ok: ok && error <= 0.1,
    }
}

struct SweepLeg {
    kind: &'static str,
    occasions: u64,
    mean_sweep_ns: f64,
    fresh_nodes: u64,
    retained_nodes: u64,
    final_estimate: f64,
    final_exact: f64,
    tolerance: f64,
    ok: bool,
}

/// Runs one sweep estimator over the live TEMPERATURE overlay for
/// `ticks` ticks and gates the final estimate against the exact oracle.
fn run_sweep(kind: &'static str, query: &ContinuousQuery, scale: Scale, ticks: u64) -> SweepLeg {
    let mut workload = temperature(scale, 2);
    let mut est = SketchSweepEstimator::for_query(query).expect("sketch-served kind");
    let mut rng = ChaCha8Rng::seed_from_u64(SEED ^ 0x5CE7);
    let mut occasions = 0u64;
    let mut fresh_nodes = 0u64;
    let mut retained_nodes = 0u64;
    let mut wall_ns = 0.0f64;
    let mut final_estimate = f64::NAN;
    for _ in 0..ticks {
        workload.advance(&mut rng);
        let start = Instant::now();
        let snap = est
            .sweep(workload.db(), &query.expr, &query.predicate)
            .expect("sweep over live overlay");
        wall_ns += start.elapsed().as_secs_f64() * 1e9;
        occasions += 1;
        fresh_nodes += snap.fresh_nodes;
        retained_nodes += snap.retained_nodes;
        if let Some(value) = snap.estimate {
            final_estimate = value;
        }
    }
    let final_exact = query.oracle(workload.db()).unwrap_or(f64::NAN);
    // COUNT DISTINCT promises a relative half-width (DESIGN.md §17).
    let tolerance = if query.op.uses_relative_epsilon() {
        query.precision.epsilon * final_exact.abs().max(1.0)
    } else {
        query.precision.epsilon
    };
    #[allow(clippy::cast_precision_loss)]
    SweepLeg {
        kind,
        occasions,
        mean_sweep_ns: wall_ns / occasions.max(1) as f64,
        fresh_nodes,
        retained_nodes,
        final_estimate,
        final_exact,
        tolerance,
        ok: (final_estimate - final_exact).abs() <= tolerance,
    }
}

fn merge_json(label: &str, leg: &MergeLeg) -> serde_json::Value {
    json!({
        "sketch": label,
        "accumulate_ns_per_value": leg.accumulate_ns,
        "merge_wall_ns": leg.merge_ns,
        "estimate": leg.estimate,
        "exact": leg.exact,
        "error": leg.error,
        "bound": leg.bound,
        "within_bound": leg.ok,
    })
}

fn sweep_json(leg: &SweepLeg) -> serde_json::Value {
    json!({
        "kind": leg.kind,
        "occasions": leg.occasions,
        "mean_sweep_ns": leg.mean_sweep_ns,
        "fresh_nodes": leg.fresh_nodes,
        "retained_nodes": leg.retained_nodes,
        "final_estimate": leg.final_estimate,
        "final_exact": leg.final_exact,
        "tolerance": leg.tolerance,
        "within_tolerance": leg.ok,
    })
}

fn main() -> ExitCode {
    let scale = Scale::from_args();
    banner(
        "BENCH_sketch",
        "mergeable sketches: merge throughput + sweep cost",
        scale,
    );
    let (values_per_shard, ticks) = match scale {
        Scale::Full => (50_000u64, 240u64),
        Scale::Quick => (10_000u64, 60u64),
    };

    let alloc_start = AllocSnapshot::now();
    let udd = merge_udd(values_per_shard);
    let hll = merge_hll(values_per_shard, 100_000);
    let ss = merge_space_saving(values_per_shard);
    let merge_alloc = AllocSnapshot::now().delta_since(&alloc_start);

    println!(
        "{:<14} {:>14} {:>12} {:>12} {:>12} {:>10}",
        "sketch", "acc ns/value", "merge µs", "estimate", "exact", "bound"
    );
    for (label, leg) in [("uddsketch", &udd), ("hll++", &hll), ("space-saving", &ss)] {
        println!(
            "{label:<14} {:>14.1} {:>12.1} {:>12.3} {:>12.3} {:>10}",
            leg.accumulate_ns,
            leg.merge_ns / 1e3,
            leg.estimate,
            leg.exact,
            if leg.ok { "ok" } else { "EXCEEDED" },
        );
    }

    let schema_expr = {
        let workload = temperature(scale, 2);
        Expr::first_attr(workload.db().schema())
    };
    let contracts = [
        (
            "p90",
            ContinuousQuery::new(
                AggregateOp::Percentile { q_permille: 900 },
                schema_expr.clone(),
                Precision::new(4.0, 2.0, 0.95).expect("valid contract"),
            ),
        ),
        (
            "distinct",
            ContinuousQuery::new(
                AggregateOp::Distinct,
                schema_expr.clone(),
                Precision::new(8.0, 0.15, 0.95).expect("valid contract"),
            ),
        ),
        (
            "top4",
            ContinuousQuery::new(
                AggregateOp::TopK { k: 4 },
                schema_expr,
                Precision::new(0.05, 0.1, 0.95).expect("valid contract"),
            ),
        ),
    ];
    let alloc_before_sweep = AllocSnapshot::now();
    let sweeps: Vec<SweepLeg> = contracts
        .iter()
        .map(|(kind, query)| run_sweep(kind, query, scale, ticks))
        .collect();
    let sweep_alloc = AllocSnapshot::now().delta_since(&alloc_before_sweep);

    println!();
    println!(
        "{:<10} {:>10} {:>14} {:>10} {:>10} {:>12} {:>12}",
        "kind", "occasions", "sweep µs", "fresh", "retained", "estimate", "exact"
    );
    for leg in &sweeps {
        println!(
            "{:<10} {:>10} {:>14.1} {:>10} {:>10} {:>12.3} {:>12.3}",
            leg.kind,
            leg.occasions,
            leg.mean_sweep_ns / 1e3,
            leg.fresh_nodes,
            leg.retained_nodes,
            leg.final_estimate,
            leg.final_exact,
        );
    }

    let merge_ok = udd.ok && hll.ok && ss.ok;
    let sweep_ok = sweeps.iter().all(|leg| leg.ok);
    let out = json!({
        "benchmark": "BENCH_sketch",
        "scale": scale.label(),
        "shards": SHARDS,
        "values_per_shard": values_per_shard,
        "merge": {
            "legs": [
                merge_json("uddsketch", &udd),
                merge_json("hll++", &hll),
                merge_json("space-saving", &ss),
            ],
            "alloc": merge_alloc.to_json(),
        },
        "sweep": {
            "ticks": ticks,
            "legs": sweeps.iter().map(sweep_json).collect::<Vec<_>>(),
            "alloc": sweep_alloc.to_json(),
        },
        "merge_bounds_hold": merge_ok,
        "sweep_bounds_hold": sweep_ok,
        "memory": memory_json(),
    });
    let path = std::path::Path::new("BENCH_sketch.json");
    match std::fs::File::create(path) {
        Ok(mut f) => {
            if let Err(e) = writeln!(
                f,
                "{}",
                serde_json::to_string_pretty(&out).expect("valid json")
            ) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!();
                println!("[profile written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot create {}: {e}", path.display()),
    }

    if merge_ok && sweep_ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("FAILED: merge bounds {merge_ok}, sweep bounds {sweep_ok}");
        ExitCode::FAILURE
    }
}
