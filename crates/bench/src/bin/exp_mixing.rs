//! Theorem 4 / §VI-B3 reproduction: mixing behaviour of the sampling
//! operator.
//!
//! 1. Exact TVD curves and measured mixing times `τ(0.01)` on power-law
//!    (Barabási–Albert) overlays of growing size — Theorem 4 predicts
//!    poly-logarithmic growth, so `τ(γ)/log²N` should stay roughly flat
//!    while `τ(γ)/N` collapses.
//! 2. Spectral gaps (Theorem 3) for the same graphs.
//! 3. The measured message cost per sample on the two paper-scale
//!    overlays (530-node mesh, 820-node power-law), next to the paper's
//!    65 / 43 messages.

use digest_bench::{banner, write_json, Scale};
use digest_db::{P2PDatabase, Schema, Tuple};
use digest_net::{topology, Graph, NodeId};
use digest_sampling::{mixing, uniform_weight, NodeWeight, SamplingConfig, SamplingOperator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::json;

fn worst_start_index(g: &Graph) -> usize {
    // A minimum-degree node is the slowest to mix from.
    let nodes: Vec<NodeId> = g.nodes().collect();
    nodes
        .iter()
        .enumerate()
        .min_by_key(|(_, &v)| g.degree(v))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn mixing_tau(g: &Graph, gamma: f64, max_steps: usize) -> (Option<usize>, f64) {
    let w = uniform_weight();
    let (p, _, target) = mixing::transition_matrix(g, &w).expect("valid transition matrix");
    let start = worst_start_index(g);
    let curve = mixing::tvd_curve(&p, &target, start, max_steps).expect("curve");
    let tau = curve.iter().position(|&d| d <= gamma);
    let diag = mixing::spectral_diagnostics(&p, &target, 300).expect("diagnostics");
    (tau, diag.eigengap)
}

fn msgs_per_sample(g: &Graph, per_node_tuples: usize, seed: u64, config: SamplingConfig) -> f64 {
    let mut db = P2PDatabase::new(Schema::single("a"));
    for v in g.nodes() {
        db.register_node(v);
        for j in 0..per_node_tuples {
            db.insert(v, Tuple::single(j as f64)).expect("registered");
        }
    }
    let mut op = SamplingOperator::new(config).expect("valid config");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let origin = g.nodes().next().expect("non-empty");
    let samples = 400;
    for _ in 0..samples {
        op.sample_tuple(g, &db, origin, &mut rng).expect("sample");
    }
    op.total_messages() as f64 / f64::from(samples)
}

/// Prints heuristic-vs-calibrated walk configuration for a topology.
fn calibration_row(name: &str, g: &Graph, w: &impl NodeWeight) -> serde_json::Value {
    let heuristic = SamplingConfig::recommended(g.node_count());
    let diag = mixing::sparse_spectral_diagnostics(g, w, 300).expect("diagnostics");
    let calibrated = SamplingConfig::calibrated(g, w, 0.05).expect("calibrated");
    println!(
        "{name:>10} ({:>4} nodes): eigengap {:.4}  heuristic walk {:>4}  Theorem-3 walk {:>5}",
        g.node_count(),
        diag.eigengap,
        heuristic.walk_length,
        calibrated.walk_length,
    );
    json!({
        "topology": name,
        "nodes": g.node_count(),
        "eigengap": diag.eigengap,
        "heuristic_walk": heuristic.walk_length,
        "calibrated_walk": calibrated.walk_length,
    })
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "MIXING",
        "Theorem 4: mixing time growth + messages per sample",
        scale,
    );

    let sizes: &[usize] = match scale {
        Scale::Full => &[64, 128, 256, 512, 1024],
        Scale::Quick => &[64, 128, 256],
    };
    let gamma = 0.01;

    println!();
    println!(
        "{:>6} {:>9} {:>12} {:>12} {:>10}",
        "N", "τ(0.01)", "τ/ln²N", "τ/N", "eigengap"
    );
    let mut rows = Vec::new();
    for &n in sizes {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let g = topology::barabasi_albert(n, 2, &mut rng).expect("BA graph");
        let (tau, gap) = mixing_tau(&g, gamma, 4000);
        let tau = tau.unwrap_or(usize::MAX);
        let ln2 = (n as f64).ln().powi(2);
        println!(
            "{n:>6} {tau:>9} {:>12.3} {:>12.4} {gap:>10.4}",
            tau as f64 / ln2,
            tau as f64 / n as f64
        );
        rows.push(json!({
            "n": n, "tau": tau, "tau_over_ln2N": tau as f64 / ln2,
            "tau_over_N": tau as f64 / n as f64, "eigengap": gap,
        }));
    }
    println!();
    println!(
        "shape check: τ/ln²N stays roughly flat while τ/N shrinks → \
         poly-logarithmic mixing (Theorem 4)."
    );

    // Messages per sample on the two paper overlays.
    println!();
    println!("--- Messages per sample (paper: 65 mesh / 43 power-law) ---");
    let (mesh_g, mesh_tuples) = match scale {
        Scale::Full => (topology::mesh(10, 53, false).expect("mesh"), 15),
        Scale::Quick => (topology::mesh(10, 20, false).expect("mesh"), 10),
    };
    let mesh_cost = msgs_per_sample(
        &mesh_g,
        mesh_tuples,
        7,
        SamplingConfig::recommended(mesh_g.node_count()),
    );
    let pl_g = {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        match scale {
            Scale::Full => topology::barabasi_albert(820, 2, &mut rng).expect("BA"),
            Scale::Quick => topology::barabasi_albert(200, 2, &mut rng).expect("BA"),
        }
    };
    let pl_cost = msgs_per_sample(&pl_g, 2, 8, SamplingConfig::recommended(pl_g.node_count()));
    println!(
        "mesh      ({:>4} nodes): {mesh_cost:>6.1} msgs/sample",
        mesh_g.node_count()
    );
    println!(
        "power-law ({:>4} nodes): {pl_cost:>6.1} msgs/sample",
        pl_g.node_count()
    );

    // Large-N extension: the dense TVD machinery caps out around 10³
    // nodes, but the matrix-free spectral gap scales to overlay sizes the
    // paper's setting actually cares about. The Theorem-3 bound
    // θ⁻¹(ln p_min⁻¹ + ln γ⁻¹) then upper-bounds τ(γ); its poly-log
    // growth in N is Theorem 4 at scale.
    if matches!(scale, Scale::Full) {
        println!();
        println!("--- Large-N sweep (matrix-free eigengap, Theorem-3 τ bound) ---");
        println!(
            "{:>7} {:>10} {:>12} {:>14}",
            "N", "eigengap", "τ bound", "bound/ln²N"
        );
        let w = uniform_weight();
        for &n in &[1024usize, 2048, 4096, 8192] {
            let mut rng = ChaCha8Rng::seed_from_u64(99);
            let g = topology::barabasi_albert(n, 2, &mut rng).expect("BA graph");
            let diag = mixing::sparse_spectral_diagnostics(&g, &w, 300).expect("diagnostics");
            let bound = mixing::calibrated_walk_length(&g, &w, gamma).expect("bound");
            let ln2 = (n as f64).ln().powi(2);
            println!(
                "{n:>7} {:>10.4} {bound:>12} {:>14.1}",
                diag.eigengap,
                bound as f64 / ln2
            );
        }
    }

    // Heuristic vs Theorem-3-calibrated walk lengths: the matrix-free
    // spectral gap tells each deployment how long a guarantee-grade fresh
    // walk must be on *its* topology (persistent pooled walks amortise it).
    println!();
    println!("--- Walk-length calibration (Theorem 3, γ = 0.05) ---");
    let w = uniform_weight();
    let calib = vec![
        calibration_row("mesh", &mesh_g, &w),
        calibration_row("power-law", &pl_g, &w),
    ];

    write_json(
        "mixing",
        scale,
        &json!({
            "gamma": gamma,
            "rows": rows,
            "msgs_per_sample": {
                "mesh": { "nodes": mesh_g.node_count(), "measured": mesh_cost, "paper": 65.0 },
                "power_law": { "nodes": pl_g.node_count(), "measured": pl_cost, "paper": 43.0 },
            },
            "calibration": calib,
        }),
    );
}
