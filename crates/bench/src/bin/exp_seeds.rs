//! Replication study: error bars for the headline comparison.
//!
//! The paper combines results from queries issued at random nodes "to
//! derive a statistically reliable estimation" (§VI-A) but reports point
//! values. This experiment replays Figure 5-a's headline cell — Digest
//! (`PRED3+RPT`) vs naive (`ALL+INDEP`) on TEMPERATURE — across many
//! independently seeded worlds in parallel, reporting mean ± std for the
//! sample, message, and violation metrics, so the reproduction's claims
//! carry uncertainty estimates.

use digest_bench::{banner, write_json, Scale};
use digest_core::{
    ContinuousQuery, DigestEngine, EngineConfig, EstimatorKind, Precision, SchedulerKind,
};
use digest_db::Expr;
use digest_sampling::SamplingConfig;
use digest_sim::{run_replications, summarize, MetricSummary, RunConfig};
use digest_workload::{TemperatureConfig, TemperatureWorkload, Workload};
use serde_json::json;

fn make_workload(scale: Scale) -> impl Fn(u64) -> TemperatureWorkload + Sync {
    move |seed| {
        let mut cfg = match scale {
            Scale::Full => TemperatureConfig::paper_scale(),
            Scale::Quick => TemperatureConfig::reduced(2_000, 10, 20, 240),
        };
        cfg.seed = cfg.seed.wrapping_add(seed.wrapping_mul(7_919));
        TemperatureWorkload::new(cfg)
    }
}

fn make_system(
    scale: Scale,
    scheduler: SchedulerKind,
    estimator: EstimatorKind,
    delta: f64,
    epsilon: f64,
) -> impl Fn(u64) -> DigestEngine + Sync {
    move |_seed| {
        let probe = make_workload(scale)(0);
        let query = ContinuousQuery::avg(
            Expr::first_attr(probe.db().schema()),
            Precision::new(delta, epsilon, 0.95).expect("valid precision"),
        );
        DigestEngine::new(
            query,
            EngineConfig {
                scheduler,
                estimator,
                sampling: SamplingConfig::recommended(probe.graph().node_count()),
                ..Default::default()
            },
        )
        .expect("valid engine")
    }
}

fn print_summary(label: &str, s: &MetricSummary) {
    println!(
        "  {label:<22} mean {:>12.1}  ± {:>10.1}  [{:.1} … {:.1}]",
        s.mean, s.std, s.min, s.max
    );
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "SEEDS",
        "Replication study: Digest vs naive with error bars (TEMPERATURE)",
        scale,
    );

    let replications = match scale {
        Scale::Full => 8,
        Scale::Quick => 5,
    };
    let probe = make_workload(scale)(0);
    let sigma = probe.sigma_ref();
    let (delta, epsilon) = (sigma, 0.25 * sigma);
    drop(probe);

    let mut out = serde_json::Map::new();
    for (name, scheduler, estimator) in [
        ("ALL+INDEP", SchedulerKind::All, EstimatorKind::Independent),
        ("PRED3+RPT", SchedulerKind::Pred(3), EstimatorKind::Repeated),
    ] {
        println!();
        println!("--- {name} × {replications} seeds ---");
        let reports = run_replications(
            replications,
            make_workload(scale),
            make_system(scale, scheduler, estimator, delta, epsilon),
            RunConfig::default(),
            delta,
            epsilon,
        )
        .expect("replications run");

        let samples = summarize(&reports, |r| r.total_samples() as f64);
        let messages = summarize(&reports, |r| r.total_messages() as f64);
        let snapshots = summarize(&reports, |r| r.total_snapshots() as f64);
        let eps_viol = summarize(&reports, digest_sim::RunReport::confidence_violation_rate);
        let delta_viol = summarize(&reports, digest_sim::RunReport::resolution_violation_rate);
        print_summary("samples", &samples);
        print_summary("messages", &messages);
        print_summary("snapshots", &snapshots);
        print_summary("ε-violation rate", &eps_viol);
        print_summary("δ-violation rate", &delta_viol);

        out.insert(
            name.to_owned(),
            json!({
                "replications": replications,
                "samples": { "mean": samples.mean, "std": samples.std },
                "messages": { "mean": messages.mean, "std": messages.std },
                "snapshots": { "mean": snapshots.mean, "std": snapshots.std },
                "eps_violation": { "mean": eps_viol.mean, "std": eps_viol.std },
                "delta_violation": { "mean": delta_viol.mean, "std": delta_viol.std },
            }),
        );
    }

    println!();
    println!(
        "shape check: the Digest-vs-naive gap dwarfs the seed-to-seed spread \
         (mean difference ≫ combined std)."
    );
    write_json("seeds", scale, &serde_json::Value::Object(out));
}
