//! Eqs. 8–11 verification: Monte-Carlo check of the repeated-sampling
//! variance algebra.
//!
//! For a synthetic population evolving as a cross-sectionally Gaussian
//! AR(1) with controllable occasion correlation ρ, we repeatedly draw a
//! panel of `n` samples, split it `g`/`f`, form the combined estimator of
//! §IV-B2, and compare the *empirical* variance with:
//!
//! * the closed-form combined variance (Eq. 8) at several partitions,
//! * the minimum variance under `g_opt` (Eqs. 9–10),
//! * the improvement ratio over independent sampling (Eq. 11).

use digest_bench::{banner, write_json, Scale};
use digest_stats::repeated::{
    combined_estimate, combined_variance, improvement_ratio, min_combined_variance,
    optimal_partition,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde_json::json;

fn gaussian(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Empirical variance of the combined estimator at partition `g` of `n`,
/// over `trials` Monte-Carlo replications with population correlation ρ.
fn empirical_variance(
    rho: f64,
    n: usize,
    g: usize,
    trials: usize,
    pop: usize,
    rng: &mut ChaCha8Rng,
) -> f64 {
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for _ in 0..trials {
        // Population at occasion 1 and 2: x2 = ρ x1 + √(1−ρ²) ξ (unit σ).
        let x1: Vec<f64> = (0..pop).map(|_| gaussian(rng)).collect();
        let noise = (1.0 - rho * rho).sqrt();
        let x2: Vec<f64> = x1
            .iter()
            .map(|&x| rho * x + noise * gaussian(rng))
            .collect();
        let mean2 = x2.iter().sum::<f64>() / pop as f64;

        // Occasion 1: the full panel of n samples; ȳ₁ is *their* mean
        // (Table 1's auxiliary estimate — feeding the true population mean
        // here would drop the ρ²σ²/n term of the variance).
        let panel: Vec<usize> = (0..n).map(|_| rng.gen_range(0..pop)).collect();
        let y1_bar = panel.iter().map(|&i| x1[i]).sum::<f64>() / n as f64;

        // Occasion 2: retain the first g panel members, replace the rest
        // with fresh draws.
        let prev: Vec<f64> = panel[..g].iter().map(|&i| x1[i]).collect();
        let cur: Vec<f64> = panel[..g].iter().map(|&i| x2[i]).collect();
        let fresh: Vec<f64> = (0..n - g).map(|_| x2[rng.gen_range(0..pop)]).collect();
        let est = combined_estimate(&fresh, &prev, &cur, y1_bar).expect("estimate");
        let err = est.estimate - mean2;
        sum += err;
        sum_sq += err * err;
    }
    let t = trials as f64;
    sum_sq / t - (sum / t).powi(2)
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "EQ 8–11",
        "Monte-Carlo verification of the RPT variance algebra",
        scale,
    );

    // Population ≫ n suffices (sampling is with replacement); trials set
    // the Monte-Carlo error of the variance estimate (~√(2/trials)).
    let (trials, pop) = match scale {
        Scale::Full => (12_000, 5_000),
        Scale::Quick => (4_000, 5_000),
    };
    let n = 100;
    let rhos = [0.0, 0.3, 0.6, 0.8, 0.9, 0.95, 0.99];
    let mut rng = ChaCha8Rng::seed_from_u64(17);

    println!();
    println!(
        "{:>6} {:>6} {:>12} {:>12} {:>9} | {:>12} {:>12} {:>8}",
        "ρ", "g_opt", "emp var", "Eq.8 var", "ratio", "emp min", "Eq.10 min", "Eq.11 I"
    );
    let mut rows = Vec::new();
    for &rho in &rhos {
        let part = optimal_partition(n, rho);
        let emp_opt = empirical_variance(rho, n, part.retained, trials, pop, &mut rng);
        let theory_opt = combined_variance(1.0, n, part.retained, rho).expect("eq8");
        let theory_min = min_combined_variance(1.0, n, rho).expect("eq10");
        let indep_var = 1.0 / n as f64;
        let emp_i = indep_var / emp_opt;
        println!(
            "{rho:>6.2} {:>6} {emp_opt:>12.6} {theory_opt:>12.6} {:>9.3} | {emp_opt:>12.6} {theory_min:>12.6} {:>8.3}",
            part.retained,
            emp_opt / theory_opt,
            improvement_ratio(rho),
        );
        rows.push(json!({
            "rho": rho,
            "g_opt": part.retained,
            "empirical_variance": emp_opt,
            "eq8_variance": theory_opt,
            "eq10_min_variance": theory_min,
            "empirical_improvement": emp_i,
            "eq11_improvement": improvement_ratio(rho),
        }));
    }

    // Cross-partition check at a fixed ρ: Eq. 8 across g and the optimum.
    let rho = 0.9;
    println!();
    println!("partition sweep at ρ = {rho} (n = {n}):");
    println!("{:>6} {:>12} {:>12}", "g", "emp var", "Eq.8 var");
    let mut sweep = Vec::new();
    for g in [0usize, 25, 50, optimal_partition(n, rho).retained, 75, 99] {
        let emp = empirical_variance(rho, n, g, trials, pop, &mut rng);
        let theory = combined_variance(1.0, n, g, rho).expect("eq8");
        println!("{g:>6} {emp:>12.6} {theory:>12.6}");
        sweep.push(json!({ "g": g, "empirical": emp, "eq8": theory }));
    }

    println!();
    println!(
        "shape check: empirical/theory ratios ≈ 1 across ρ; the optimal \
         partition's variance is the sweep minimum; I grows to 2 as ρ → 1."
    );
    write_json(
        "eq11_variance",
        scale,
        &json!({ "n": n, "rows": rows, "partition_sweep": sweep }),
    );
}
