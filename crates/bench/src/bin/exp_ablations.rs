//! Ablations of Digest's design choices (DESIGN.md §6).
//!
//! 1. **Laziness ½** — on a bipartite mesh the non-lazy Metropolis walk
//!    is periodic and its TVD to the target oscillates forever; the lazy
//!    walk converges (Theorem 2's aperiodicity argument, made visible).
//! 2. **Reset-time continuation** — messages per sample with continued
//!    vs fresh walks (§VI-A's experimental device).
//! 3. **Two-stage vs cluster sampling** — estimator error when node
//!    contents are internally correlated (§III's argument).
//! 4. **Panel partitioning** — all-replace / optimal / all-retain
//!    (the extremes of Eq. 8 vs the optimum of Eq. 9).
//! 5. **PRED-k history depth** — snapshots saved vs resolution violations
//!    as k grows.

use digest_bench::{banner, engine_for, run_full, temperature, write_json, Scale};
use digest_core::{EstimatorKind, SchedulerKind};
use digest_db::{P2PDatabase, Schema, Tuple};
use digest_net::{topology, Graph, NodeId};
use digest_sampling::{mixing, uniform_weight, SamplingConfig, SamplingOperator};
use digest_stats::repeated::{combined_variance, optimal_partition};
use digest_stats::{DiscreteDistribution, Matrix};
use digest_workload::Workload;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde_json::json;

/// Non-lazy Metropolis transition matrix (laziness removed — the ablated
/// variant; the library deliberately does not offer this).
fn non_lazy_transition(g: &Graph) -> (Matrix, DiscreteDistribution) {
    let nodes: Vec<NodeId> = g.nodes().collect();
    let n = nodes.len();
    let mut index = vec![usize::MAX; g.id_upper_bound()];
    for (i, &v) in nodes.iter().enumerate() {
        index[v.0 as usize] = i;
    }
    let mut p = Matrix::zeros(n, n);
    for (i, &v) in nodes.iter().enumerate() {
        let d_i = g.degree(v) as f64;
        let mut off = 0.0;
        for &nb in g.neighbors(v) {
            let j = index[nb.0 as usize];
            let d_j = g.degree(nb) as f64;
            let p_ij = (1.0 / d_i) * (d_i / d_j).min(1.0);
            p[(i, j)] = p_ij;
            off += p_ij;
        }
        p[(i, i)] = 1.0 - off;
    }
    (p, DiscreteDistribution::uniform(n).expect("non-empty"))
}

fn tvd_at(p: &Matrix, target: &DiscreteDistribution, start: usize, t: usize) -> f64 {
    mixing::tvd_curve(p, target, start, t).expect("curve")[t]
}

fn ablation_laziness() -> serde_json::Value {
    println!();
    println!("--- Ablation 1: laziness ½ (bipartite 4×4 torus, uniform target) ---");
    // A torus with even dimensions is regular AND bipartite: without the
    // laziness the uniform-target Metropolis walk has no self-loops at
    // all, so it alternates between the two colour classes forever.
    let g = topology::mesh(4, 4, true).expect("torus");
    assert!(
        g.is_bipartite(),
        "even torus must be bipartite for this ablation"
    );
    let w = uniform_weight();
    let (lazy_p, _, target) = mixing::transition_matrix(&g, &w).expect("matrix");
    let (nonlazy_p, nl_target) = non_lazy_transition(&g);

    println!("{:>6} {:>12} {:>12}", "t", "lazy TVD", "non-lazy TVD");
    let mut rows = Vec::new();
    for &t in &[0usize, 10, 50, 100, 200, 201] {
        let lazy = tvd_at(&lazy_p, &target, 0, t);
        let nonlazy = tvd_at(&nonlazy_p, &nl_target, 0, t);
        println!("{t:>6} {lazy:>12.4} {nonlazy:>12.4}");
        rows.push(json!({ "t": t, "lazy": lazy, "non_lazy": nonlazy }));
    }
    let lazy_end = tvd_at(&lazy_p, &target, 0, 200);
    let nl_even = tvd_at(&nonlazy_p, &nl_target, 0, 200);
    let nl_odd = tvd_at(&nonlazy_p, &nl_target, 0, 201);
    println!(
        "verdict: lazy converges (TVD {lazy_end:.4}); non-lazy oscillates \
         ({nl_even:.4} vs {nl_odd:.4} on consecutive steps)."
    );
    json!({ "rows": rows, "lazy_tvd_200": lazy_end, "non_lazy_tvd_200": nl_even, "non_lazy_tvd_201": nl_odd })
}

fn ablation_reset_walks(scale: Scale) -> serde_json::Value {
    println!();
    println!("--- Ablation 2: reset-time continuation of walks ---");
    let n = match scale {
        Scale::Full => 530,
        Scale::Quick => 200,
    };
    let g = topology::mesh(10, n / 10, false).expect("mesh");
    let mut db = P2PDatabase::new(Schema::single("a"));
    for v in g.nodes() {
        db.register_node(v);
        for j in 0..10 {
            db.insert(v, Tuple::single(j as f64)).expect("registered");
        }
    }
    let base = SamplingConfig::recommended(g.node_count());
    let origin = g.nodes().next().expect("non-empty");
    let (occasions, batch) = (50u32, 10u32);
    let mut out = serde_json::Map::new();
    for (label, continue_walks) in [("continued", true), ("fresh-every-time", false)] {
        let mut op = SamplingOperator::new(SamplingConfig {
            continue_walks,
            ..base
        })
        .expect("config");
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..occasions {
            op.begin_occasion();
            for _ in 0..batch {
                op.sample_tuple(&g, &db, origin, &mut rng).expect("sample");
            }
        }
        let per = op.total_messages() as f64 / f64::from(occasions * batch);
        println!(
            "{label:>18}: {per:>7.1} msgs/sample  ({} occasions × {} samples)",
            occasions, batch
        );
        out.insert(label.into(), json!(per));
    }
    serde_json::Value::Object(out)
}

fn ablation_cluster_sampling() -> serde_json::Value {
    println!();
    println!("--- Ablation 3: two-stage vs cluster sampling (correlated node contents) ---");
    // Node i's tuples cluster tightly around a node-specific mean: high
    // intra-cluster, low inter-cluster correlation — §III's bad case for
    // cluster sampling.
    let nodes = 40;
    let per_node = 20;
    let g = topology::complete(nodes).expect("graph");
    let mut db = P2PDatabase::new(Schema::single("a"));
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    for (i, v) in g.nodes().enumerate() {
        db.register_node(v);
        let node_mean = (i as f64) * 5.0; // spread 0..195
        for _ in 0..per_node {
            db.insert(v, Tuple::single(node_mean + rng.gen_range(-0.5..0.5)))
                .expect("registered");
        }
    }
    let expr = digest_db::Expr::first_attr(db.schema());
    let truth = db.exact_avg(&expr).expect("avg");

    let budget = 60; // tuples per estimate
    let trials = 200;
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let origin = g.nodes().next().expect("non-empty");

    let mut two_stage_se = 0.0;
    let mut cluster_se = 0.0;
    for _ in 0..trials {
        let mut op = SamplingOperator::new(SamplingConfig::recommended(nodes)).expect("config");
        // Two-stage: `budget` uniform tuples.
        let mut sum = 0.0;
        for _ in 0..budget {
            let (_, t, _) = op.sample_tuple(&g, &db, origin, &mut rng).expect("sample");
            sum += t.value(0).expect("value");
        }
        two_stage_se += (sum / budget as f64 - truth).powi(2);

        // Cluster: whole fragments until the same tuple budget is reached.
        let mut got = 0usize;
        let mut csum = 0.0;
        while got < budget {
            let (_, tuples, _) = op
                .cluster_sample(&g, &db, origin, &mut rng)
                .expect("cluster");
            for t in &tuples {
                if got == budget {
                    break;
                }
                csum += t.value(0).expect("value");
                got += 1;
            }
        }
        cluster_se += (csum / budget as f64 - truth).powi(2);
    }
    let two_stage_rmse = (two_stage_se / f64::from(trials)).sqrt();
    let cluster_rmse = (cluster_se / f64::from(trials)).sqrt();
    println!("two-stage RMSE: {two_stage_rmse:>8.3}");
    println!("cluster   RMSE: {cluster_rmse:>8.3}");
    println!(
        "verdict: cluster sampling is ~{:.1}× worse under intra-node correlation.",
        cluster_rmse / two_stage_rmse
    );
    json!({ "two_stage_rmse": two_stage_rmse, "cluster_rmse": cluster_rmse })
}

fn ablation_partitioning() -> serde_json::Value {
    println!();
    println!("--- Ablation 4: panel partitioning (Eq. 8 extremes vs g_opt) ---");
    let n = 200;
    println!(
        "{:>6} {:>14} {:>14} {:>14}",
        "ρ", "all-replace", "g_opt", "all-retain"
    );
    let mut rows = Vec::new();
    for &rho in &[0.5, 0.8, 0.9, 0.95] {
        let v0 = combined_variance(1.0, n, 0, rho).expect("eq8");
        let gopt = optimal_partition(n, rho).retained;
        let vopt = combined_variance(1.0, n, gopt, rho).expect("eq8");
        let vn = combined_variance(1.0, n, n, rho).expect("eq8");
        println!("{rho:>6.2} {v0:>14.6} {vopt:>14.6} {vn:>14.6}");
        rows.push(json!({ "rho": rho, "all_replace": v0, "g_opt_variance": vopt, "all_retain": vn, "g_opt": gopt }));
    }
    println!("verdict: both extremes equal independent sampling; only g_opt improves variance.");
    json!(rows)
}

fn ablation_pred_depth(scale: Scale) -> serde_json::Value {
    println!();
    println!("--- Ablation 5: PRED-k history depth (TEMPERATURE, δ/σ̂ = 1) ---");
    println!(
        "{:>8} {:>10} {:>12} {:>12}",
        "k", "snapshots", "δ-viol rate", "samples"
    );
    let mut rows = Vec::new();
    for k in 1..=4 {
        let mut w = temperature(scale, 0);
        let sigma = w.sigma_ref();
        let (d, e) = (sigma, 2.0);
        let mut engine = engine_for(
            &w,
            SchedulerKind::Pred(k),
            EstimatorKind::Repeated,
            d,
            e,
            0.95,
        )
        .expect("engine");
        let r = run_full(&mut w, &mut engine, d, e, 51).expect("run");
        println!(
            "{k:>8} {:>10} {:>12.3} {:>12}",
            r.total_snapshots(),
            r.resolution_violation_rate(),
            r.total_samples()
        );
        rows.push(json!({
            "k": k, "snapshots": r.total_snapshots(),
            "resolution_violation_rate": r.resolution_violation_rate(),
            "samples": r.total_samples(),
        }));
    }
    json!(rows)
}

fn ablation_pred_oracle(scale: Scale) -> serde_json::Value {
    println!();
    println!("--- Ablation 6: what makes deep PRED-k conservative? ---");
    // Drive the bare scheduler with oracle aggregates and count snapshot
    // occasions under three conditions: a smooth signal (no diurnal
    // alternation), the default signal (period-2 diurnal component), and
    // the default signal plus sampling-style noise. The remainder bound
    // keys on the *highest-frequency component visible in the history* —
    // the period-2 diurnal term carries huge high-order divided
    // differences, so it (not just sampling noise) is what pins deep
    // PRED-k near continuous querying.
    use digest_core::{PredScheduler, SnapshotScheduler};
    use digest_workload::{TemperatureConfig, TemperatureWorkload, Workload as _};
    let mut rng = ChaCha8Rng::seed_from_u64(61);
    println!(
        "{:>8} {:>14} {:>16} {:>16}",
        "k", "smooth+exact", "diurnal+exact", "diurnal+noisy"
    );
    let mut rows = Vec::new();
    for k in 1..=4 {
        let run = |diurnal: f64, noise_sd: f64, rng: &mut ChaCha8Rng| -> u64 {
            let mut cfg = match scale {
                Scale::Full => TemperatureConfig::paper_scale(),
                Scale::Quick => TemperatureConfig::reduced(2_000, 10, 20, 240),
            };
            cfg.diurnal_amplitude = diurnal;
            let mut w = TemperatureWorkload::new(cfg);
            let delta = w.sigma_ref();
            let mut sched = PredScheduler::new(k).expect("k >= 1");
            let mut snaps = 0u64;
            let mut next_due = 0u64;
            for t in 0..w.duration() {
                w.advance(rng);
                if t < next_due {
                    continue;
                }
                snaps += 1;
                let noise = if noise_sd > 0.0 {
                    use rand::Rng as _;
                    noise_sd * (rng.gen_range(-1.0..1.0f64) + rng.gen_range(-1.0..1.0))
                } else {
                    0.0
                };
                sched.observe(t as f64, w.exact_aggregate() + noise);
                next_due = t + sched.next_delay(delta).expect("valid delta");
            }
            snaps
        };
        // Noise σ ≈ ε/z at the Fig-5a query (ε = 0.25 σ̂, p = .95) ≈ 1.0.
        let smooth = run(0.0, 0.0, &mut rng);
        let diurnal = run(1.0, 0.0, &mut rng);
        let noisy = run(1.0, 1.0, &mut rng);
        println!("{k:>8} {smooth:>14} {diurnal:>16} {noisy:>16}");
        rows.push(json!({
            "k": k,
            "snapshots_smooth_exact": smooth,
            "snapshots_diurnal_exact": diurnal,
            "snapshots_diurnal_noisy": noisy,
        }));
    }
    println!(
        "verdict: on a smooth aggregate every PRED-k skips aggressively; the          period-2 diurnal component (a real high-frequency signal, not          sampling noise) is what forces deep PRED-k toward continuous          querying."
    );
    json!(rows)
}

fn main() {
    let scale = Scale::from_args();
    banner("ABLATIONS", "Design-choice ablations (DESIGN.md §6)", scale);

    let laziness = ablation_laziness();
    let reset = ablation_reset_walks(scale);
    let cluster = ablation_cluster_sampling();
    let partition = ablation_partitioning();
    let pred = ablation_pred_depth(scale);
    let pred_oracle = ablation_pred_oracle(scale);

    write_json(
        "ablations",
        scale,
        &json!({
            "laziness": laziness,
            "reset_walks": reset,
            "cluster_sampling": cluster,
            "partitioning": partition,
            "pred_depth": pred,
            "pred_oracle": pred_oracle,
        }),
    );
}
