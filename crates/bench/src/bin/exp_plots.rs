//! Renders the experiment JSON artefacts in `results/` into SVG figures —
//! the visual counterparts of the paper's Figures 4-a, 4-b, 5-a, 5-b and
//! the mixing sweep. Run the `exp_*` binaries first (any scale), then:
//!
//! ```bash
//! cargo run --release -p digest-bench --bin exp_plots -- --scale full
//! ```

use digest_bench::plot::{ChartKind, Plot, Series};
use digest_bench::{banner, Scale};
use serde_json::Value;
use std::path::PathBuf;

fn load(name: &str, scale: Scale) -> Option<Value> {
    let path = PathBuf::from(format!("results/{name}_{}.json", scale.label()));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| eprintln!("skipping {name}: cannot read {}: {e}", path.display()))
        .ok()?;
    serde_json::from_str(&text)
        .map_err(|e| eprintln!("skipping {name}: bad JSON: {e}"))
        .ok()
}

fn save(plot: &Plot, series: &[Series], name: &str, scale: Scale) {
    let path = PathBuf::from(format!("results/{name}_{}.svg", scale.label()));
    match plot.write_svg(&path, series) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

fn f(v: &Value) -> f64 {
    v.as_f64().unwrap_or(f64::NAN)
}

fn plot_fig4a(scale: Scale) {
    let Some(data) = load("fig4a", scale) else {
        return;
    };
    let rows = data["rows"].as_array().cloned().unwrap_or_default();
    let mut series = Vec::new();
    for name in ["ALL", "PRED1", "PRED2", "PRED3", "PRED4"] {
        let points: Vec<(f64, f64)> = rows
            .iter()
            .map(|r| (f(&r["delta_over_sigma"]), f(&r[name]["snapshots"])))
            .collect();
        series.push(Series::new(name, points));
    }
    let plot = Plot {
        title: "Figure 4-a: snapshot queries vs δ/σ̂ (TEMPERATURE)".into(),
        xlabel: "δ/σ̂".into(),
        ylabel: "snapshot queries".into(),
        log_y: false,
        kind: ChartKind::Lines,
        categories: vec![],
    };
    save(&plot, &series, "fig4a", scale);
}

fn plot_fig4b(scale: Scale) {
    let Some(data) = load("fig4b", scale) else {
        return;
    };
    for ds in ["temperature", "memory"] {
        let rows = data[ds]["rows"].as_array().cloned().unwrap_or_default();
        let series = vec![
            Series::new(
                "INDEP",
                rows.iter()
                    .map(|r| (f(&r["eps_over_sigma"]), f(&r["indep_samples_per_snapshot"])))
                    .collect(),
            ),
            Series::new(
                "RPT",
                rows.iter()
                    .map(|r| (f(&r["eps_over_sigma"]), f(&r["rpt_samples_per_snapshot"])))
                    .collect(),
            ),
        ];
        let plot = Plot {
            title: format!(
                "Figure 4-b: samples per snapshot vs ε/σ̂ ({})",
                ds.to_uppercase()
            ),
            xlabel: "ε/σ̂".into(),
            ylabel: "samples per snapshot".into(),
            log_y: false,
            kind: ChartKind::Lines,
            categories: vec![],
        };
        save(&plot, &series, &format!("fig4b_{ds}"), scale);
    }
}

fn plot_fig5a(scale: Scale) {
    let Some(data) = load("fig5a", scale) else {
        return;
    };
    let combos = ["ALL+INDEP", "ALL+RPT", "PRED3+INDEP", "PRED3+RPT"];
    let mut series = Vec::new();
    for (di, ds) in ["temperature", "memory"].iter().enumerate() {
        let rows = data[*ds].as_array().cloned().unwrap_or_default();
        let points: Vec<(f64, f64)> = combos
            .iter()
            .enumerate()
            .filter_map(|(ci, combo)| {
                rows.iter()
                    .find(|r| r["combo"] == *combo)
                    .map(|r| (ci as f64, f(&r["total_samples"])))
            })
            .collect();
        series.push(Series::new(ds.to_uppercase(), points));
        let _ = di;
    }
    let plot = Plot {
        title: "Figure 5-a: total samples per continuous query".into(),
        xlabel: "scheduler × estimator".into(),
        ylabel: "total samples (log)".into(),
        log_y: true,
        kind: ChartKind::Bars,
        categories: combos.iter().map(|s| (*s).to_owned()).collect(),
    };
    save(&plot, &series, "fig5a", scale);
}

fn plot_fig5b(scale: Scale) {
    let Some(data) = load("fig5b", scale) else {
        return;
    };
    let systems = ["ALL+ALL", "ALL+FILTER", "ALL+INDEP", "PRED3+RPT"];
    let mut series = Vec::new();
    for ds in ["temperature", "memory"] {
        let rows = data[ds].as_array().cloned().unwrap_or_default();
        let points: Vec<(f64, f64)> = systems
            .iter()
            .enumerate()
            .filter_map(|(si, system)| {
                rows.iter()
                    .find(|r| r["system"] == *system)
                    .map(|r| (si as f64, f(&r["messages"])))
            })
            .collect();
        series.push(Series::new(ds.to_uppercase(), points));
    }
    let plot = Plot {
        title: "Figure 5-b: total communication cost".into(),
        xlabel: "system".into(),
        ylabel: "messages (log)".into(),
        log_y: true,
        kind: ChartKind::Bars,
        categories: systems.iter().map(|s| (*s).to_owned()).collect(),
    };
    save(&plot, &series, "fig5b", scale);
}

fn plot_mixing(scale: Scale) {
    let Some(data) = load("mixing", scale) else {
        return;
    };
    let rows = data["rows"].as_array().cloned().unwrap_or_default();
    let series = vec![
        Series::new(
            "τ(0.01)",
            rows.iter().map(|r| (f(&r["n"]), f(&r["tau"]))).collect(),
        ),
        Series::new(
            "τ / ln²N × 10",
            rows.iter()
                .map(|r| (f(&r["n"]), 10.0 * f(&r["tau_over_ln2N"])))
                .collect(),
        ),
    ];
    let plot = Plot {
        title: "Theorem 4: mixing time growth on power-law overlays".into(),
        xlabel: "network size N".into(),
        ylabel: "steps".into(),
        log_y: false,
        kind: ChartKind::Lines,
        categories: vec![],
    };
    save(&plot, &series, "mixing", scale);
}

fn plot_eq11(scale: Scale) {
    let Some(data) = load("eq11_variance", scale) else {
        return;
    };
    let rows = data["rows"].as_array().cloned().unwrap_or_default();
    let series = vec![
        Series::new(
            "empirical",
            rows.iter()
                .map(|r| (f(&r["rho"]), f(&r["empirical_variance"])))
                .collect(),
        ),
        Series::new(
            "Eq. 8 @ g_opt",
            rows.iter()
                .map(|r| (f(&r["rho"]), f(&r["eq8_variance"])))
                .collect(),
        ),
        Series::new(
            "independent σ²/n",
            rows.iter().map(|r| (f(&r["rho"]), 0.01)).collect(),
        ),
    ];
    let plot = Plot {
        title: "Eqs. 8–11: combined-estimator variance vs ρ (n = 100)".into(),
        xlabel: "ρ".into(),
        ylabel: "estimator variance".into(),
        log_y: false,
        kind: ChartKind::Lines,
        categories: vec![],
    };
    save(&plot, &series, "eq11_variance", scale);
}

fn plot_fig1(scale: Scale) {
    let Some(data) = load("fig1_trace", scale) else {
        return;
    };
    let rows = data["series"].as_array().cloned().unwrap_or_default();
    let horizon = 160.min(rows.len());
    let series = vec![
        Series::new(
            "exact X[t]",
            rows[..horizon]
                .iter()
                .map(|r| (f(&r["t"]), f(&r["exact"])))
                .collect(),
        ),
        Series::new(
            "approximate X̂[t]",
            rows[..horizon]
                .iter()
                .map(|r| (f(&r["t"]), f(&r["estimate"])))
                .collect(),
        ),
    ];
    let plot = Plot {
        title: "Figure 1: exact vs fixed-precision approximate result".into(),
        xlabel: "tick (12 h)".into(),
        ylabel: "AVG(temperature) °F".into(),
        log_y: false,
        kind: ChartKind::Lines,
        categories: vec![],
    };
    save(&plot, &series, "fig1_trace", scale);
}

fn main() {
    let scale = Scale::from_args();
    banner("PLOTS", "Rendering results/*.json into SVG figures", scale);
    plot_fig1(scale);
    plot_fig4a(scale);
    plot_fig4b(scale);
    plot_fig5a(scale);
    plot_fig5b(scale);
    plot_mixing(scale);
    plot_eq11(scale);
}
