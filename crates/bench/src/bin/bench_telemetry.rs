//! Stage-profiling benchmark: wall-clock time per pipeline stage.
//!
//! Runs the canonical TEMPERATURE scenario (PRED-3 + RPT, fixed seed)
//! with telemetry spans in [`ClockMode::Wall`], then reports where the
//! time goes — workload advance, engine tick, size estimation, estimator
//! evaluation, scheduler decision, sampling walks — next to the global
//! counters, and writes everything to `BENCH_telemetry.json`.
//!
//! Timings are wall-clock and therefore machine-dependent; the JSON is a
//! profiling artefact, not a determinism surface (the determinism gate
//! runs spans in tick mode instead).

use digest_bench::{banner, temperature, Scale};
use digest_core::{EstimatorKind, SchedulerKind};
use digest_sim::{run, RunConfig};
use digest_telemetry::{ClockMode, MetricHandle};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::json;
use std::io::Write as _;

fn main() {
    let scale = Scale::from_args();
    banner("BENCH_telemetry", "per-stage wall-clock profile", scale);

    digest_telemetry::set_clock_mode(ClockMode::Wall);
    digest_telemetry::reset_run_state();

    let mut workload = temperature(scale, 0);
    let mut engine = digest_bench::engine_for(
        &workload,
        SchedulerKind::Pred(3),
        EstimatorKind::Repeated,
        8.0,
        2.0,
        0.95,
    )
    .expect("valid engine config");
    let mut rng = ChaCha8Rng::seed_from_u64(20080402);
    let report = run(
        &mut workload,
        &mut engine,
        RunConfig::for_ticks(120),
        8.0,
        2.0,
        &mut rng,
    )
    .expect("benchmark run");

    println!(
        "ran {} ticks: {} snapshots, {} samples, {} messages",
        report.ticks(),
        report.total_snapshots(),
        report.total_samples(),
        report.total_messages(),
    );
    println!();
    println!(
        "{:<20} {:>10} {:>14} {:>12}",
        "stage", "spans", "total_ns", "mean_ns"
    );

    let mut stages = Vec::new();
    for s in digest_telemetry::stage_reports() {
        if s.count == 0 {
            continue;
        }
        println!(
            "{:<20} {:>10} {:>14} {:>12.0}",
            s.stage.name(),
            s.count,
            s.total,
            s.mean(),
        );
        stages.push(json!({
            "stage": s.stage.name(),
            "spans": s.count,
            "total_ns": s.total,
            "mean_ns": s.mean(),
        }));
    }

    let mut counters = serde_json::Map::new();
    for d in digest_telemetry::descriptors() {
        match d.handle {
            MetricHandle::Counter(c) if c.get() != 0 => {
                counters.insert(d.name.to_owned(), json!(c.get()));
            }
            MetricHandle::Gauge(g) if g.get() != 0.0 => {
                counters.insert(d.name.to_owned(), json!(g.get()));
            }
            MetricHandle::Histogram(h) if h.count() != 0 => {
                counters.insert(
                    d.name.to_owned(),
                    json!({"count": h.count(), "mean": h.mean(), "max": h.max()}),
                );
            }
            _ => {}
        }
    }

    let out = json!({
        "benchmark": "BENCH_telemetry",
        "scale": scale.label(),
        "clock": "wall",
        "ticks": report.ticks(),
        "stages": stages,
        "metrics": serde_json::Value::Object(counters),
    });
    let path = std::path::Path::new("BENCH_telemetry.json");
    match std::fs::File::create(path) {
        Ok(mut f) => {
            if let Err(e) = writeln!(
                f,
                "{}",
                serde_json::to_string_pretty(&out).expect("valid json")
            ) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!();
                println!("[profile written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot create {}: {e}", path.display()),
    }
}
