//! Figure 5-b reproduction: communication cost, Digest vs push baselines.
//!
//! Same query as Figure 5-a (`δ/σ̂ = 1, ε/σ̂ = 0.25, p = 0.95`), total
//! node-to-node messages for:
//!
//! * `ALL+ALL` — push every tuple every tick (exact; paper's baseline),
//! * `ALL+FILTER` — Olston-style adaptive filters,
//! * `ALL+INDEP` — naive sampling,
//! * `PRED3+RPT` — Digest.
//!
//! Expected shape (paper, log-scale): Digest ≥ 1 order of magnitude under
//! ALL+FILTER and ≈ 2 orders under ALL+ALL; even naive sampling beats the
//! filter-based push approach. The paper also reports the average walk
//! cost per sample: 65 msgs (530-node mesh) and 43 msgs (820-node
//! power-law) — we print ours next to it.

use digest_bench::{banner, engine_for, memory, run_full, temperature, write_json, Scale};
use digest_core::baselines::{FilterConfig, FilterEngine, PushAllEngine};
use digest_core::{ContinuousQuery, EstimatorKind, Precision, SchedulerKind};
use digest_db::Expr;
use digest_sim::RunReport;
use digest_workload::Workload;
use serde_json::json;

fn query_for<W: Workload>(w: &W, delta: f64, epsilon: f64) -> ContinuousQuery {
    ContinuousQuery::avg(
        Expr::first_attr(w.db().schema()),
        Precision::new(delta, epsilon, 0.95).expect("valid precision"),
    )
}

struct Row {
    name: &'static str,
    messages: u64,
    samples: u64,
    report: RunReport,
}

fn run_dataset<W: Workload, F: Fn() -> W>(make: F) -> Vec<Row> {
    let probe = make();
    let sigma = probe.sigma_ref();
    let (delta, epsilon) = (sigma, 0.25 * sigma);
    drop(probe);

    let mut rows = Vec::new();

    // ALL+ALL.
    {
        let mut w = make();
        let mut sys = PushAllEngine::new(query_for(&w, delta, epsilon));
        let r = run_full(&mut w, &mut sys, delta, epsilon, 41).expect("run");
        rows.push(Row {
            name: "ALL+ALL",
            messages: r.total_messages(),
            samples: 0,
            report: r,
        });
    }
    // ALL+FILTER.
    {
        let mut w = make();
        let mut sys = FilterEngine::new(query_for(&w, delta, epsilon), FilterConfig::default())
            .expect("AVG query");
        let r = run_full(&mut w, &mut sys, delta, epsilon, 42).expect("run");
        rows.push(Row {
            name: "ALL+FILTER",
            messages: r.total_messages(),
            samples: 0,
            report: r,
        });
    }
    // ALL+INDEP.
    {
        let mut w = make();
        let mut sys = engine_for(
            &w,
            SchedulerKind::All,
            EstimatorKind::Independent,
            delta,
            epsilon,
            0.95,
        )
        .expect("engine");
        let r = run_full(&mut w, &mut sys, delta, epsilon, 43).expect("run");
        rows.push(Row {
            name: "ALL+INDEP",
            messages: r.total_messages(),
            samples: r.total_fresh_samples(),
            report: r,
        });
    }
    // Digest: PRED3+RPT.
    {
        let mut w = make();
        let mut sys = engine_for(
            &w,
            SchedulerKind::Pred(3),
            EstimatorKind::Repeated,
            delta,
            epsilon,
            0.95,
        )
        .expect("engine");
        let r = run_full(&mut w, &mut sys, delta, epsilon, 44).expect("run");
        rows.push(Row {
            name: "PRED3+RPT",
            messages: r.total_messages(),
            samples: r.total_fresh_samples(),
            report: r,
        });
    }
    rows
}

fn print_rows(rows: &[Row]) -> Vec<serde_json::Value> {
    let digest_msgs = rows.last().expect("four rows").messages.max(1);
    println!(
        "{:>12} {:>14} {:>10} {:>14} {:>10}",
        "system", "messages", "log10", "vs Digest", "msg/smpl"
    );
    let mut out = Vec::new();
    for row in rows {
        let per_sample = if row.samples > 0 {
            row.messages as f64 / row.samples as f64
        } else {
            f64::NAN
        };
        println!(
            "{:>12} {:>14} {:>10.2} {:>13.1}x {:>10.1}",
            row.name,
            row.messages,
            (row.messages.max(1) as f64).log10(),
            row.messages as f64 / digest_msgs as f64,
            per_sample,
        );
        out.push(json!({
            "system": row.name,
            "messages": row.messages,
            "messages_per_fresh_sample": if per_sample.is_nan() { serde_json::Value::Null } else { json!(per_sample) },
            "snapshots": row.report.total_snapshots(),
            "confidence_violation_rate": row.report.confidence_violation_rate(),
        }));
    }
    out
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "FIGURE 5-b",
        "Total communication cost (log scale), Digest vs baselines",
        scale,
    );

    println!();
    println!("--- TEMPERATURE (mesh; paper: ~65 msgs/sample) ---");
    let temp_rows = run_dataset(|| temperature(scale, 0));
    let temp_json = print_rows(&temp_rows);

    println!();
    println!("--- MEMORY (power-law; paper: ~43 msgs/sample) ---");
    let mem_rows = run_dataset(|| memory(scale, 0));
    let mem_json = print_rows(&mem_rows);

    println!();
    println!(
        "shape check: ALL+ALL ≫ ALL+FILTER ≫ ALL+INDEP > PRED3+RPT; Digest \
         sits ≥1 order of magnitude under the filter-based push approach."
    );
    write_json(
        "fig5b",
        scale,
        &json!({ "temperature": temp_json, "memory": mem_json }),
    );
}
