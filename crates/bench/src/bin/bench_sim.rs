//! Million-node overlay benchmark: the flat SoA substrate end to end.
//!
//! Three phases, each with its own allocation-pressure delta from the
//! counting global allocator:
//!
//! * **build** — constructs the Barabási–Albert overlay directly into a
//!   `NodeStore` (CSR adjacency, u32 ids) and reports nodes/sec plus
//!   resident bytes/node of the cold store.
//! * **run (workers = 1)** — the event-driven flat simulation
//!   (`digest_sim::run_flat`): churn batches + periodic continuous-query
//!   occasions over the same overlay, reporting events/sec. The event
//!   queue only charges for due ticks, so the quiet spans between churn
//!   and query occasions cost nothing — `ticks_executed` ≪ `ticks` is
//!   the point.
//! * **run (workers = 4)** — the same simulation with the sharded
//!   walk executor running on four OS threads; the report must be
//!   **byte-identical** to the single-worker run (per-shard counter-split
//!   RNG streams + fixed-order merge), or the process exits non-zero.
//!
//! `--scale quick` (default, 10⁵ nodes) is the CI smoke configuration;
//! `--scale full` runs the paper-scale 10⁶-node overlay. Regression
//! gates: resident bytes/node ≤ 64, workers {1,4} byte-identical, and an
//! events/sec floor generous enough to only catch order-of-magnitude
//! regressions (wall-clock is machine-dependent).
//!
//! Results are written to `BENCH_sim.json`.

use digest_bench::metrics::{memory_json, AllocSnapshot, CountingAlloc};
use digest_bench::{banner, Scale};
use digest_net::topology;
use digest_sim::{run_flat, FlatSimConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::json;
use std::io::Write as _;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const SEED: u64 = 20080402;

/// Gate: the flat store must stay within the ISSUE's resident-footprint
/// budget at every scale.
const MAX_BYTES_PER_NODE: f64 = 64.0;

/// Gate: events/sec floor (simulation phase, workers = 1). Set two
/// orders of magnitude below what a modest host measures so only
/// catastrophic regressions (e.g. the event loop degenerating to
/// per-tick scans) trip it.
const MIN_EVENTS_PER_SEC: f64 = 50.0;

fn config_for(scale: Scale, workers: usize) -> FlatSimConfig {
    match scale {
        Scale::Quick => FlatSimConfig {
            nodes: 100_000,
            attach: 3,
            ticks: 2_000,
            churn_interval: 100,
            churn_leaves: 100,
            churn_joins: 100,
            query_interval: 50,
            walks: 128,
            walk_length: 25,
            shards: 64,
            workers,
            seed: SEED,
        },
        Scale::Full => FlatSimConfig {
            nodes: 1_000_000,
            attach: 3,
            ticks: 10_000,
            churn_interval: 100,
            churn_leaves: 500,
            churn_joins: 500,
            query_interval: 50,
            walks: 256,
            walk_length: 30,
            shards: 64,
            workers,
            seed: SEED,
        },
    }
}

#[allow(clippy::cast_precision_loss, clippy::too_many_lines)]
fn main() {
    let scale = Scale::from_args();
    banner("BENCH_sim", "million-node flat overlay simulation", scale);
    let config = config_for(scale, 1);
    println!(
        "world: BA overlay, {} nodes (attach {}), {} ticks, churn every {} ticks \
         ({} leave / {} join), query every {} ticks ({} walks × {} hops), {} shards",
        config.nodes,
        config.attach,
        config.ticks,
        config.churn_interval,
        config.churn_leaves,
        config.churn_joins,
        config.query_interval,
        config.walks,
        config.walk_length,
        config.shards,
    );
    println!();

    // Phase 1: overlay construction into the flat store.
    let alloc_before_build = AllocSnapshot::now();
    let mut build_rng = ChaCha8Rng::seed_from_u64(SEED);
    let build_start = Instant::now();
    let store = topology::barabasi_albert_store(config.nodes, config.attach, &mut build_rng)
        .expect("overlay build");
    let build_ns = build_start.elapsed().as_nanos() as u64;
    let build_alloc = AllocSnapshot::now().delta_since(&alloc_before_build);
    let build_nodes_per_sec = config.nodes as f64 / (build_ns.max(1) as f64 / 1e9);
    let cold_bytes_per_node = store.bytes_per_node();
    println!(
        "build: {} nodes in {:.1} ms → {:.0} nodes/sec, {:.1} bytes/node cold \
         ({} allocations, {} bytes allocated)",
        config.nodes,
        build_ns as f64 / 1e6,
        build_nodes_per_sec,
        cold_bytes_per_node,
        build_alloc.allocations,
        build_alloc.bytes,
    );
    drop(store);

    // Phase 2: the event-driven simulation, single-threaded reference.
    let alloc_before_w1 = AllocSnapshot::now();
    let w1_start = Instant::now();
    let report_w1 = run_flat(&config).expect("flat run (workers=1)");
    let w1_ns = w1_start.elapsed().as_nanos() as u64;
    let w1_alloc = AllocSnapshot::now().delta_since(&alloc_before_w1);
    // run_flat rebuilds the overlay internally; charge the sim phase the
    // run wall minus the separately measured build wall (clamped: the
    // estimate is from an identical-cost build with a different seed).
    let sim_ns = w1_ns.saturating_sub(build_ns).max(1);
    let events_per_sec = report_w1.events_executed as f64 / (sim_ns as f64 / 1e9);
    println!(
        "run(w=1): {} / {} ticks executed ({} events: {} occasions, {} churn batches), \
         {} walks, {} messages in {:.1} ms → {:.0} events/sec",
        report_w1.ticks_executed,
        report_w1.ticks,
        report_w1.events_executed,
        report_w1.occasions,
        report_w1.churn_batches,
        report_w1.walks,
        report_w1.messages,
        w1_ns as f64 / 1e6,
        events_per_sec,
    );
    println!(
        "         {} live nodes, {} store bytes → {:.1} bytes/node \
         ({} allocations, {} bytes allocated)",
        report_w1.live_nodes,
        report_w1.store_bytes,
        report_w1.bytes_per_node,
        w1_alloc.allocations,
        w1_alloc.bytes,
    );

    // Phase 3: the same simulation on four worker threads.
    let config_w4 = config_for(scale, 4);
    let alloc_before_w4 = AllocSnapshot::now();
    let w4_start = Instant::now();
    let report_w4 = run_flat(&config_w4).expect("flat run (workers=4)");
    let w4_ns = w4_start.elapsed().as_nanos() as u64;
    let w4_alloc = AllocSnapshot::now().delta_since(&alloc_before_w4);
    let identical = report_w1 == report_w4;
    println!(
        "run(w=4): {:.1} ms, reports {}",
        w4_ns as f64 / 1e6,
        if identical {
            "byte-identical to w=1"
        } else {
            "DIVERGED from w=1"
        },
    );
    println!();

    let bytes_ok = report_w1.bytes_per_node <= MAX_BYTES_PER_NODE;
    let events_ok = events_per_sec >= MIN_EVENTS_PER_SEC;
    println!(
        "gates: bytes/node {:.1} ≤ {MAX_BYTES_PER_NODE} [{}], events/sec {:.0} ≥ \
         {MIN_EVENTS_PER_SEC} [{}], workers {{1,4}} identical [{}]",
        report_w1.bytes_per_node,
        if bytes_ok { "ok" } else { "FAIL" },
        events_per_sec,
        if events_ok { "ok" } else { "FAIL" },
        if identical { "ok" } else { "FAIL" },
    );

    let estimates_tail: Vec<_> = report_w1
        .estimates
        .iter()
        .rev()
        .take(4)
        .rev()
        .map(|&(tick, est)| json!({"tick": tick, "estimate": est}))
        .collect();
    let out = json!({
        "benchmark": "BENCH_sim",
        "scale": scale.label(),
        "config": {
            "nodes": config.nodes,
            "attach": config.attach,
            "ticks": config.ticks,
            "churn_interval": config.churn_interval,
            "churn_leaves": config.churn_leaves,
            "churn_joins": config.churn_joins,
            "query_interval": config.query_interval,
            "walks": config.walks,
            "walk_length": config.walk_length,
            "shards": config.shards,
            "seed": SEED,
        },
        "build": {
            "wall_ns": build_ns,
            "nodes_per_sec": build_nodes_per_sec,
            "cold_bytes_per_node": cold_bytes_per_node,
            "alloc": build_alloc.to_json(),
        },
        "run": {
            "ticks": report_w1.ticks,
            "ticks_executed": report_w1.ticks_executed,
            "events_executed": report_w1.events_executed,
            "occasions": report_w1.occasions,
            "churn_batches": report_w1.churn_batches,
            "joins": report_w1.joins,
            "leaves": report_w1.leaves,
            "walks": report_w1.walks,
            "messages": report_w1.messages,
            "live_nodes": report_w1.live_nodes,
            "store_bytes": report_w1.store_bytes,
            "bytes_per_node": report_w1.bytes_per_node,
            "wall_ns_w1": w1_ns,
            "wall_ns_w4": w4_ns,
            "sim_ns_w1": sim_ns,
            "events_per_sec": events_per_sec,
            "alloc_w1": w1_alloc.to_json(),
            "alloc_w4": w4_alloc.to_json(),
            "estimates_tail": estimates_tail,
        },
        "gates": {
            "max_bytes_per_node": MAX_BYTES_PER_NODE,
            "bytes_per_node_ok": bytes_ok,
            "min_events_per_sec": MIN_EVENTS_PER_SEC,
            "events_per_sec_ok": events_ok,
            "workers_identical": identical,
        },
        "memory": memory_json(),
    });
    let path = std::path::Path::new("BENCH_sim.json");
    match std::fs::File::create(path) {
        Ok(mut f) => {
            if let Err(e) = writeln!(
                f,
                "{}",
                serde_json::to_string_pretty(&out).expect("valid json")
            ) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot create {}: {e}", path.display()),
    }

    if !bytes_ok || !events_ok || !identical {
        std::process::exit(1);
    }
}
