//! Figure 1 reproduction: exact result `X[t]` vs the fixed-precision
//! approximate result `X̂[t]`.
//!
//! Runs Digest (`PRED3+RPT`) over the TEMPERATURE workload and prints the
//! two curves, marking the update occasions `t_uᵢ`. The approximate curve
//! holds its value between updates and re-aligns on every δ-crossing —
//! the staircase of the paper's Figure 1.

use digest_bench::{banner, engine_for, run_full, temperature, write_json, Scale};
use digest_core::{EstimatorKind, SchedulerKind};
use digest_workload::Workload;
use serde_json::json;

fn main() {
    let scale = Scale::from_args();
    banner(
        "FIGURE 1",
        "Exact X[t] vs approximate X̂[t] with (δ, ε, p)",
        scale,
    );

    let mut w = temperature(scale, 0);
    let sigma = w.sigma_ref();
    let (delta, epsilon, p) = (sigma, 0.25 * sigma, 0.95);
    println!("query: SELECT AVG(temperature) FROM R  [δ={delta:.1}, ε={epsilon:.1}, p={p}]");

    let mut engine = engine_for(
        &w,
        SchedulerKind::Pred(3),
        EstimatorKind::Repeated,
        delta,
        epsilon,
        p,
    )
    .expect("valid engine");
    let report = run_full(&mut w, &mut engine, delta, epsilon, 7).expect("run succeeds");

    let horizon = match scale {
        Scale::Full => 160,
        Scale::Quick => 120,
    };
    println!();
    println!(
        "{:>5} {:>10} {:>10} {:>8} {:>7}",
        "tick", "X[t]", "X̂[t]", "snapshot", "update"
    );
    for r in report.records.iter().take(horizon) {
        println!(
            "{:>5} {:>10.3} {:>10.3} {:>8} {:>7}",
            r.tick,
            r.exact,
            r.estimate,
            if r.snapshot { "*" } else { "" },
            if r.updated { "U" } else { "" },
        );
    }
    println!();
    println!(
        "summary: snapshots={} updates={} max_snapshot_err={:.3} (ε={epsilon:.2}) \
         ε-violations={:.3} δ-violations={:.3}",
        report.total_snapshots(),
        report.total_updates(),
        report.max_snapshot_error(),
        report.confidence_violation_rate(),
        report.resolution_violation_rate()
    );

    let series: Vec<_> = report
        .records
        .iter()
        .map(|r| {
            json!({"t": r.tick, "exact": r.exact, "estimate": r.estimate,
                        "snapshot": r.snapshot, "updated": r.updated})
        })
        .collect();
    write_json(
        "fig1_trace",
        scale,
        &json!({
            "delta": delta, "epsilon": epsilon, "p": p,
            "snapshots": report.total_snapshots(),
            "confidence_violation_rate": report.confidence_violation_rate(),
            "resolution_violation_rate": report.resolution_violation_rate(),
            "series": series,
        }),
    );
}
