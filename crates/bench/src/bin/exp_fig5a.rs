//! Figure 5-a reproduction: overall efficiency of Digest.
//!
//! Both datasets, `δ/σ̂ = 1, ε/σ̂ = 0.25, p = 0.95`. Total samples needed
//! to answer the continuous query under the four scheduler × estimator
//! combinations. Paper: Digest (`PRED3+RPT`) beats the naive
//! (`ALL+INDEP`) by up to 320 % on TEMPERATURE.

use digest_bench::{banner, engine_for, memory, run_full, temperature, write_json, Scale};
use digest_core::{EstimatorKind, SchedulerKind};
use digest_workload::Workload;
use serde_json::json;

fn main() {
    let scale = Scale::from_args();
    banner(
        "FIGURE 5-a",
        "Total samples for four scheduler×estimator combos",
        scale,
    );

    let combos = [
        ("ALL+INDEP", SchedulerKind::All, EstimatorKind::Independent),
        ("ALL+RPT", SchedulerKind::All, EstimatorKind::Repeated),
        (
            "PRED3+INDEP",
            SchedulerKind::Pred(3),
            EstimatorKind::Independent,
        ),
        ("PRED3+RPT", SchedulerKind::Pred(3), EstimatorKind::Repeated),
    ];

    let mut out = serde_json::Map::new();
    for dataset in ["TEMPERATURE", "MEMORY"] {
        println!();
        println!("--- {dataset} ---");
        println!(
            "{:>12} {:>12} {:>10} {:>10} {:>12}",
            "combo", "samples", "snaps", "ratio", "viol(δ+ε)"
        );
        let mut baseline = None;
        let mut rows = Vec::new();
        for (name, sched, est) in combos {
            let (total, snaps, viol) = match dataset {
                "TEMPERATURE" => {
                    let mut w = temperature(scale, 0);
                    let sigma = w.sigma_ref();
                    let (d, e) = (sigma, 0.25 * sigma);
                    let mut engine = engine_for(&w, sched, est, d, e, 0.95).expect("engine");
                    let r = run_full(&mut w, &mut engine, d, e, 31).expect("run");
                    (
                        r.total_samples(),
                        r.total_snapshots(),
                        r.resolution_violation_rate(),
                    )
                }
                _ => {
                    let mut w = memory(scale, 0);
                    let sigma = w.sigma_ref();
                    let (d, e) = (sigma, 0.25 * sigma);
                    let mut engine = engine_for(&w, sched, est, d, e, 0.95).expect("engine");
                    let r = run_full(&mut w, &mut engine, d, e, 32).expect("run");
                    (
                        r.total_samples(),
                        r.total_snapshots(),
                        r.resolution_violation_rate(),
                    )
                }
            };
            let base = *baseline.get_or_insert(total);
            let ratio = base as f64 / total.max(1) as f64;
            println!("{name:>12} {total:>12} {snaps:>10} {ratio:>9.2}x {viol:>12.3}");
            rows.push(json!({
                "combo": name, "total_samples": total, "snapshots": snaps,
                "improvement_over_naive": ratio, "resolution_violation_rate": viol,
            }));
        }
        out.insert(dataset.to_lowercase(), json!(rows));
    }

    println!();
    println!(
        "shape check: every refinement helps; PRED3+RPT (Digest) is best, \
         with a combined improvement of several× over ALL+INDEP \
         (paper: up to 320% ≈ 3.2–4.2× on TEMPERATURE)."
    );
    write_json("fig5a", scale, &serde_json::Value::Object(out));
}
