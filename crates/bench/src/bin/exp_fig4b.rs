//! Figure 4-b reproduction: effect of the repeated sampling algorithm.
//!
//! Both datasets, fixed resolution (`δ/σ̂ = 1`) and confidence level
//! (`p = 0.95`), sweeping the confidence half-width `ε`. For each ε we
//! report the average number of samples per snapshot query (retained +
//! fresh, as in the paper's figure) for `INDEP` and `RPT`, and the
//! measured improvement factor `I = n_indep / n_rpt` (paper: 1.63 for
//! TEMPERATURE, 1.21 for MEMORY).

use digest_bench::{banner, engine_for, memory, run_full, temperature, write_json, Scale};
use digest_core::{EstimatorKind, SchedulerKind};
use digest_sim::RunReport;
use digest_workload::Workload;
use serde_json::json;

fn sweep<W, F>(make: F, scale: Scale) -> (Vec<serde_json::Value>, f64)
where
    W: Workload,
    F: Fn(Scale, u64) -> W,
{
    let probe = make(scale, 0);
    let sigma = probe.sigma_ref();
    let delta = sigma;
    drop(probe);
    let p = 0.95;
    let eps_ratios = [0.0625, 0.125, 0.25, 0.375, 0.5];

    let mut rows = Vec::new();
    let mut improvement_sum = 0.0;
    let mut improvement_count = 0usize;
    println!();
    println!(
        "{:>8} {:>14} {:>14} {:>8}",
        "ε/σ̂", "INDEP smp/snap", "RPT smp/snap", "I"
    );
    for &ratio in &eps_ratios {
        let epsilon = ratio * sigma;
        let per_snap = |estimator: EstimatorKind, seed: u64| -> RunReport {
            let mut w = make(scale, 0);
            let mut engine = engine_for(&w, SchedulerKind::All, estimator, delta, epsilon, p)
                .expect("valid engine");
            run_full(&mut w, &mut engine, delta, epsilon, seed).expect("run")
        };
        let ind = per_snap(EstimatorKind::Independent, 21);
        let rpt = per_snap(EstimatorKind::Repeated, 22);
        let n_ind = ind.samples_per_snapshot();
        let n_rpt = rpt.samples_per_snapshot();
        let improvement = if n_rpt > 0.0 { n_ind / n_rpt } else { f64::NAN };
        // Average I only over rows where the CLT size is clearly above the
        // pilot floor — below it both estimators are pinned to the pilot.
        if n_ind > 45.0 {
            improvement_sum += improvement;
            improvement_count += 1;
        }
        println!("{ratio:>8.3} {n_ind:>14.1} {n_rpt:>14.1} {improvement:>8.3}");
        rows.push(json!({
            "eps_over_sigma": ratio,
            "indep_samples_per_snapshot": n_ind,
            "rpt_samples_per_snapshot": n_rpt,
            "improvement": improvement,
            "indep_confidence_violation": ind.confidence_violation_rate(),
            "rpt_confidence_violation": rpt.confidence_violation_rate(),
        }));
    }
    (rows, improvement_sum / improvement_count.max(1) as f64)
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "FIGURE 4-b",
        "Samples per snapshot vs ε (INDEP vs RPT), both datasets",
        scale,
    );

    println!("--- TEMPERATURE (paper I ≈ 1.63) ---");
    let (temp_rows, temp_i) = sweep(temperature, scale);
    println!("average improvement factor I = {temp_i:.3}");

    println!();
    println!("--- MEMORY (paper I ≈ 1.21) ---");
    let (mem_rows, mem_i) = sweep(memory, scale);
    println!("average improvement factor I = {mem_i:.3}");

    println!();
    println!(
        "shape check: RPT needs fewer samples than INDEP on both datasets, \
         and the gain is larger for TEMPERATURE (higher ρ, no churn) than MEMORY."
    );
    write_json(
        "fig4b",
        scale,
        &json!({
            "temperature": { "rows": temp_rows, "avg_improvement": temp_i, "paper_improvement": 1.63 },
            "memory": { "rows": mem_rows, "avg_improvement": mem_i, "paper_improvement": 1.21 },
        }),
    );
}
