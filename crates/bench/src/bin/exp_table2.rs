//! Table II reproduction: dataset parameters, measured.
//!
//! Generates both synthetic datasets and *measures* the statistics the
//! paper reports — tuple counts, unit/node counts, and crucially the
//! realised occasion-to-occasion correlation `ρ` and cross-sectional
//! dispersion `σ̂` — so the calibration claimed in DESIGN.md is verified,
//! not assumed.

use digest_bench::{banner, memory, temperature, write_json, Scale};
use digest_workload::{measure_table2, Workload};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::json;

fn main() {
    let scale = Scale::from_args();
    banner(
        "TABLE II",
        "Parameters of the datasets (paper vs measured)",
        scale,
    );

    // TEMPERATURE: one occasion per tick (updates arrive twice a day and
    // snapshots align with them).
    let mut temp = temperature(scale, 0);
    let temp_occasions = match scale {
        Scale::Full => 120,
        Scale::Quick => 60,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let t_stats = measure_table2(&mut temp, temp_occasions, 1, &mut rng);

    // MEMORY: one workload tick is one 40 s snapshot occasion.
    let mut mem = memory(scale, 0);
    let mem_occasions = match scale {
        Scale::Full => 85,
        Scale::Quick => 65,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let m_stats = measure_table2(&mut mem, mem_occasions, 1, &mut rng);

    println!();
    println!("{:<28} {:>16} {:>16}", "", "TEMPERATURE", "MEMORY");
    println!(
        "{:<28} {:>16} {:>16}",
        "paper: number of tuples", "8640000", "95445"
    );
    // Records scale linearly in recording time; project the measured rate
    // onto each dataset's full recording duration.
    let temp_full_records = temp.db().total_tuples() as u64 * temp.duration();
    let mem_rate = mem.update_records() as f64 / mem.current_tick() as f64;
    let mem_full_records = (mem_rate * mem.duration() as f64) as u64;
    println!(
        "{:<28} {:>16} {:>16}",
        "ours : records (full span)", temp_full_records, mem_full_records
    );
    println!("{:<28} {:>16} {:>16}", "paper: number of units", 8000, 1000);
    println!(
        "{:<28} {:>16} {:>16}",
        "ours : live tuples", t_stats.tuples, m_stats.tuples
    );
    println!("{:<28} {:>16} {:>16}", "paper: number of nodes", 530, 820);
    println!(
        "{:<28} {:>16} {:>16}",
        "ours : nodes", t_stats.nodes, m_stats.nodes
    );
    println!("{:<28} {:>16} {:>16}", "paper: rho", 0.89, 0.68);
    println!(
        "{:<28} {:>16.3} {:>16.3}",
        "ours : rho (measured)", t_stats.rho, m_stats.rho
    );
    println!("{:<28} {:>16} {:>16}", "paper: sigma", 8, 10);
    println!(
        "{:<28} {:>16.3} {:>16.3}",
        "ours : sigma (measured)", t_stats.sigma, m_stats.sigma
    );
    println!(
        "{:<28} {:>16} {:>16}",
        "churn events (ours)",
        0,
        mem.churn_events()
    );

    write_json(
        "table2",
        scale,
        &json!({
            "temperature": {
                "tuples": t_stats.tuples,
                "nodes": t_stats.nodes,
                "rho_measured": t_stats.rho,
                "sigma_measured": t_stats.sigma,
                "rho_paper": 0.89,
                "sigma_paper": 8.0,
            },
            "memory": {
                "tuples": m_stats.tuples,
                "nodes": m_stats.nodes,
                "rho_measured": m_stats.rho,
                "sigma_measured": m_stats.sigma,
                "rho_paper": 0.68,
                "sigma_paper": 10.0,
                "update_records_projected": mem_full_records,
                "churn_events": mem.churn_events(),
            },
        }),
    );
}
