//! Auditor-overhead benchmark: what guarantee auditing costs per tick.
//!
//! Runs the canonical TEMPERATURE scenario (PRED-3 + RPT, fixed seed)
//! twice — once plain, once with a [`digest_audit::QueryAudit`] observer
//! attached (ground-truth oracle, confidence calibration, message-cost
//! ledger) — and reports the wall-clock delta next to the audit findings.
//! The per-tick traces of both legs must be bit-identical (the observer
//! is passive by contract); the bench exits non-zero if they diverge, so
//! the CI smoke run doubles as an enforcement point.
//!
//! Timings are wall-clock and therefore machine-dependent; the JSON is a
//! profiling artefact, not a determinism surface.

use digest_audit::QueryAudit;
use digest_bench::metrics::{memory_json, AllocSnapshot, CountingAlloc};
use digest_bench::{banner, temperature, Scale};
use digest_core::{EstimatorKind, NoopObserver, SchedulerKind};
use digest_sim::{run_observed, RunConfig, RunReport};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::json;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const TICKS: u64 = 120;
const SEED: u64 = 20080402;

fn run_leg(scale: Scale, audit: Option<&mut QueryAudit>) -> (RunReport, f64) {
    let mut workload = temperature(scale, 0);
    let mut engine = digest_bench::engine_for(
        &workload,
        SchedulerKind::Pred(3),
        EstimatorKind::Repeated,
        8.0,
        2.0,
        0.95,
    )
    .expect("valid engine config");
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    let mut noop = NoopObserver;
    let observer: &mut dyn digest_core::TickObserver = match audit {
        Some(audit) => audit,
        None => &mut noop,
    };
    let start = Instant::now();
    let report = run_observed(
        &mut workload,
        &mut engine,
        RunConfig::for_ticks(TICKS),
        8.0,
        2.0,
        &mut rng,
        observer,
    )
    .expect("benchmark run");
    (report, start.elapsed().as_secs_f64() * 1e9)
}

fn main() -> ExitCode {
    let scale = Scale::from_args();
    banner("BENCH_audit", "guarantee-auditor overhead", scale);

    let alloc_start = AllocSnapshot::now();
    let (plain_report, plain_ns) = run_leg(scale, None);
    let alloc_after_plain = AllocSnapshot::now();
    let plain_alloc = alloc_after_plain.delta_since(&alloc_start);
    let mut audit = {
        let workload = temperature(scale, 0);
        let engine = digest_bench::engine_for(
            &workload,
            SchedulerKind::Pred(3),
            EstimatorKind::Repeated,
            8.0,
            2.0,
            0.95,
        )
        .expect("valid engine config");
        QueryAudit::new(engine.query(), 0).expect("valid audit config")
    };
    let alloc_before_audited = AllocSnapshot::now();
    let (audited_report, audited_ns) = run_leg(scale, Some(&mut audit));
    let audited_alloc = AllocSnapshot::now().delta_since(&alloc_before_audited);

    // Observer passivity: both legs must replay the same trace bit for
    // bit (same estimates, same message counts, same occasions).
    let identical = plain_report.records.len() == audited_report.records.len()
        && plain_report
            .records
            .iter()
            .zip(&audited_report.records)
            .all(|(a, b)| {
                a.tick == b.tick
                    && a.estimate.to_bits() == b.estimate.to_bits()
                    && a.messages == b.messages
                    && a.snapshot == b.snapshot
            });

    let report = audit.report();
    let ticks = plain_report.ticks().max(1);
    #[allow(clippy::cast_precision_loss)]
    let overhead_ns_per_tick = (audited_ns - plain_ns) / ticks as f64;
    let overhead_pct = if plain_ns > 0.0 {
        (audited_ns - plain_ns) / plain_ns * 100.0
    } else {
        0.0
    };

    println!("{:<28} {:>14} {:>14}", "leg", "total_ns", "ns_per_tick");
    #[allow(clippy::cast_precision_loss)]
    {
        println!(
            "{:<28} {:>14.0} {:>14.0}",
            "plain (NoopObserver)",
            plain_ns,
            plain_ns / ticks as f64
        );
        println!(
            "{:<28} {:>14.0} {:>14.0}",
            "audited (QueryAudit)",
            audited_ns,
            audited_ns / ticks as f64
        );
    }
    println!("auditor overhead: {overhead_ns_per_tick:.0} ns/tick ({overhead_pct:.1}% of plain)");
    println!(
        "audit: {} occasions, violation rate {:.4} (gate ≤ {:.4}), \
         messages digest {} / ALL {} / ALL+FILTER {}",
        report.occasions,
        report.violation_rate,
        report.violation_bound(),
        report.digest_messages,
        report.all_messages,
        report.filter_messages,
    );
    println!("traces identical across legs: {identical}");

    let out = json!({
        "benchmark": "BENCH_audit",
        "scale": scale.label(),
        "ticks": plain_report.ticks(),
        "plain_ns": plain_ns,
        "audited_ns": audited_ns,
        "overhead_ns_per_tick": overhead_ns_per_tick,
        "overhead_pct": overhead_pct,
        "traces_identical": identical,
        "plain_alloc": plain_alloc.to_json(),
        "audited_alloc": audited_alloc.to_json(),
        "report": report.to_json_value(),
        "memory": memory_json(),
    });
    let path = std::path::Path::new("BENCH_audit.json");
    match std::fs::File::create(path) {
        Ok(mut f) => {
            if let Err(e) = writeln!(
                f,
                "{}",
                serde_json::to_string_pretty(&out).expect("valid json")
            ) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!();
                println!("[profile written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot create {}: {e}", path.display()),
    }

    if identical {
        ExitCode::SUCCESS
    } else {
        eprintln!("FAILED: the audit observer perturbed the run");
        ExitCode::FAILURE
    }
}
