//! # digest-bench
//!
//! The experiment harness: one binary per table/figure of the paper
//! (see DESIGN.md §3 for the experiment index), plus Criterion
//! microbenchmarks of the hot kernels.
//!
//! | Binary | Reproduces |
//! |--------|------------|
//! | `exp_table2`        | Table II — dataset parameters (measured) |
//! | `exp_fig1_trace`    | Figure 1 — exact vs. approximate result trace |
//! | `exp_fig4a`         | Figure 4-a — snapshot count vs. `δ/σ̂` (ALL vs PRED-k) |
//! | `exp_fig4b`         | Figure 4-b — samples/snapshot vs. `ε` (INDEP vs RPT) |
//! | `exp_fig5a`         | Figure 5-a — total samples, four scheduler×estimator combos |
//! | `exp_fig5b`         | Figure 5-b — total messages, Digest vs push baselines |
//! | `exp_mixing`        | Theorem 4 / §VI-B3 aside — mixing time & msgs/sample |
//! | `exp_eq11_variance` | Eqs. 8–11 — Monte-Carlo check of the RPT variance algebra |
//! | `exp_ablations`     | DESIGN.md §6 — laziness, reset walks, cluster sampling, `g_opt`, PRED-k degree |
//!
//! Every binary accepts `--scale quick|full` (default `quick`): `full`
//! replicates the paper's Table II scale; `quick` shrinks the world for
//! smoke runs and CI. Results print as aligned text tables and are also
//! dumped as JSON under `results/`.

// `deny` rather than `forbid`: the counting global allocator in
// `metrics` needs one audited `unsafe impl GlobalAlloc`.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod metrics;
pub mod plot;

use digest_core::{
    ContinuousQuery, DigestEngine, EngineConfig, EstimatorKind, Precision, QuerySystem, Result,
    SchedulerKind,
};
use digest_db::Expr;
use digest_sampling::SamplingConfig;
use digest_sim::{run, RunConfig, RunReport};
use digest_workload::{
    MemoryConfig, MemoryWorkload, TemperatureConfig, TemperatureWorkload, Workload,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::io::Write as _;

/// Experiment scale parsed from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Shrunk world for smoke tests and CI.
    Quick,
    /// The paper's Table II scale.
    Full,
}

impl Scale {
    /// Parses `--scale quick|full` from `std::env::args` (default quick).
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        for pair in args.windows(2) {
            if pair[0] == "--scale" && pair[1] == "full" {
                return Scale::Full;
            }
        }
        if args.iter().any(|a| a == "--full") {
            return Scale::Full;
        }
        Scale::Quick
    }

    /// Label for output files.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }
}

/// Builds the TEMPERATURE workload at the requested scale.
#[must_use]
pub fn temperature(scale: Scale, seed: u64) -> TemperatureWorkload {
    let mut cfg = match scale {
        Scale::Full => TemperatureConfig::paper_scale(),
        Scale::Quick => TemperatureConfig::reduced(2_000, 10, 20, 240),
    };
    cfg.seed = cfg.seed.wrapping_add(seed);
    TemperatureWorkload::new(cfg)
}

/// Builds the MEMORY workload at the requested scale.
#[must_use]
pub fn memory(scale: Scale, seed: u64) -> MemoryWorkload {
    let mut cfg = match scale {
        Scale::Full => MemoryConfig::paper_scale(),
        Scale::Quick => MemoryConfig::reduced(500, 200, 2_880),
    };
    cfg.seed = cfg.seed.wrapping_add(seed);
    MemoryWorkload::new(cfg)
}

/// Builds a Digest engine for `AVG(expr)` on `w` with the given policies
/// and sampling configuration recommended for the workload's size.
///
/// # Errors
///
/// Propagates engine-construction errors.
pub fn engine_for<W: Workload>(
    w: &W,
    scheduler: SchedulerKind,
    estimator: EstimatorKind,
    delta: f64,
    epsilon: f64,
    confidence: f64,
) -> Result<DigestEngine> {
    let query = ContinuousQuery::avg(
        Expr::first_attr(w.db().schema()),
        Precision::new(delta, epsilon, confidence)?,
    );
    DigestEngine::new(
        query,
        EngineConfig {
            scheduler,
            estimator,
            sampling: SamplingConfig::recommended(w.graph().node_count()),
            ..Default::default()
        },
    )
}

/// Runs `system` over a freshly built workload (via `mk`) for the
/// workload's full duration.
///
/// # Errors
///
/// Propagates engine errors.
pub fn run_full<W: Workload, S: QuerySystem + ?Sized>(
    workload: &mut W,
    system: &mut S,
    delta: f64,
    epsilon: f64,
    seed: u64,
) -> Result<RunReport> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    run(
        workload,
        system,
        RunConfig::default(),
        delta,
        epsilon,
        &mut rng,
    )
}

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str, scale: Scale) {
    println!("================================================================");
    println!("{id}: {title}   [scale: {}]", scale.label());
    println!("================================================================");
}

/// Writes a JSON result artefact under `results/` (best-effort: failures
/// only warn, experiments still print their tables).
pub fn write_json(name: &str, scale: Scale, value: &serde_json::Value) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}_{}.json", scale.label()));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            if let Err(e) = writeln!(f, "{}", serde_json::to_string_pretty(value).unwrap()) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot create {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_workloads_are_consistent() {
        let t = temperature(Scale::Quick, 0);
        assert_eq!(t.name(), "TEMPERATURE");
        assert!(t.db().total_tuples() > 0);
        let m = memory(Scale::Quick, 0);
        assert_eq!(m.name(), "MEMORY");
        assert!(m.graph().is_connected());
    }

    #[test]
    fn engine_builder_names() {
        let t = temperature(Scale::Quick, 0);
        let e = engine_for(
            &t,
            SchedulerKind::Pred(3),
            EstimatorKind::Repeated,
            8.0,
            2.0,
            0.95,
        )
        .unwrap();
        assert_eq!(e.name(), "PRED3+RPT");
    }

    #[test]
    fn scale_label() {
        assert_eq!(Scale::Quick.label(), "quick");
        assert_eq!(Scale::Full.label(), "full");
    }
}
