//! The bundled per-query audit observer.
//!
//! [`QueryAudit`] is the one-stop [`TickObserver`] a driver attaches to an
//! audited run: per tick it feeds the message-cost ledger and the
//! pointwise resolution check, per reporting occasion it feeds the
//! guarantee auditor, and at end of run it folds everything into a single
//! [`AuditReport`].

use crate::auditor::{AuditReport, Auditor, AuditorConfig};
use crate::ledger::MessageLedger;
use crate::Result;
use digest_core::{ContinuousQuery, MuxObserver, TickContext, TickObserver, TickOutcome};
use std::collections::BTreeMap;

/// Full guarantee audit of one continuous query over one run.
#[derive(Debug)]
pub struct QueryAudit {
    auditor: Auditor,
    ledger: MessageLedger,
    query: String,
    delta: f64,
    epsilon: f64,
    relative_epsilon: bool,
    digest_messages: u64,
    ticks: u64,
    resolution_violations: u64,
    started: bool,
}

impl QueryAudit {
    /// Builds the audit for `query`; `query_index` distinguishes events
    /// of concurrent queries in one run.
    ///
    /// # Errors
    ///
    /// As for [`Auditor::new`].
    pub fn new(query: &ContinuousQuery, query_index: u64) -> Result<Self> {
        // Kind-specific ε-semantics (DESIGN.md §17): `COUNT DISTINCT`
        // promises a relative half-width; everything else keeps the
        // paper's absolute §II contract.
        let relative_epsilon = query.op.uses_relative_epsilon();
        let auditor = Auditor::new(AuditorConfig {
            delta: query.precision.delta,
            epsilon: query.precision.epsilon,
            confidence: query.precision.confidence,
            query_index,
            relative_epsilon,
        })?;
        let ledger = MessageLedger::new(
            query.expr.clone(),
            query.predicate.clone(),
            query.precision.epsilon,
        );
        Ok(Self {
            auditor,
            ledger,
            query: query.to_string(),
            delta: query.precision.delta,
            epsilon: query.precision.epsilon,
            relative_epsilon,
            digest_messages: 0,
            ticks: 0,
            resolution_violations: 0,
            started: false,
        })
    }

    /// Freezes the audit into its end-of-run report.
    #[must_use]
    pub fn report(&self) -> AuditReport {
        let totals = self.ledger.totals();
        self.auditor.report(
            self.query.clone(),
            self.ticks,
            self.digest_messages,
            totals.all_messages,
            totals.filter_messages,
            self.resolution_violations,
        )
    }

    /// Observes one tick, optionally attributing the occasion to a
    /// coalesced multi-query sampling round (the round's trace id lands
    /// on the emitted `audit.occasion` event). [`TickObserver::observe`]
    /// is this with `round = None`.
    pub fn observe_with_round(
        &mut self,
        ctx: &TickContext<'_>,
        outcome: &TickOutcome,
        exact: f64,
        round: Option<u64>,
    ) {
        self.ticks += 1;
        self.digest_messages += outcome.messages_this_tick;
        self.ledger.observe(ctx.db);
        if outcome.snapshot_executed {
            self.started = true;
            self.auditor.observe_occasion_in_round(
                ctx.tick,
                outcome.estimate,
                exact,
                outcome.samples_this_tick,
                outcome.messages_this_tick,
                round,
            );
        }
        // Pointwise resolution check (paper §II): between occasions the
        // *reported* result may lag the truth by at most δ + ε (with ε
        // scaled per the kind's semantics — DESIGN.md §17). Only
        // meaningful once the system has produced its first report.
        let eps_band = if self.relative_epsilon {
            self.epsilon * exact.abs().max(1.0)
        } else {
            self.epsilon
        };
        if self.started && (outcome.estimate - exact).abs() > self.delta + eps_band {
            self.resolution_violations += 1;
        }
    }
}

impl TickObserver for QueryAudit {
    fn observe(&mut self, ctx: &TickContext<'_>, outcome: &TickOutcome, exact: f64) {
        self.observe_with_round(ctx, outcome, exact, None);
    }
}

/// Guarantee audit of a whole multiplexed run: one [`QueryAudit`] per
/// member query, driven through the [`MuxObserver`] seam so every member
/// gets its own `audit.occasion` stream (own ε-violation and resolution
/// accounting against its own `(δ, ε, p)` contract), with occasions served
/// from coalesced rounds causally parented to the round's trace id.
#[derive(Debug, Default)]
pub struct MuxAudit {
    audits: BTreeMap<u64, QueryAudit>,
}

impl MuxAudit {
    /// An audit with no members yet.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches an audit for member `id` (the mux's query id, also used
    /// as the `query` index stamped on events).
    ///
    /// # Errors
    ///
    /// As for [`QueryAudit::new`].
    pub fn register(&mut self, id: u64, query: &ContinuousQuery) -> Result<()> {
        self.audits.insert(id, QueryAudit::new(query, id)?);
        Ok(())
    }

    /// The audit attached to member `id`.
    #[must_use]
    pub fn audit(&self, id: u64) -> Option<&QueryAudit> {
        self.audits.get(&id)
    }

    /// Member ids in ascending order.
    #[must_use]
    pub fn ids(&self) -> Vec<u64> {
        self.audits.keys().copied().collect()
    }

    /// End-of-run reports for every member, ascending by id.
    #[must_use]
    pub fn reports(&self) -> Vec<(u64, AuditReport)> {
        self.audits
            .iter()
            .map(|(&id, audit)| (id, audit.report()))
            .collect()
    }
}

impl MuxObserver for MuxAudit {
    fn observe_query(
        &mut self,
        query: u64,
        ctx: &TickContext<'_>,
        outcome: &TickOutcome,
        exact: f64,
        round: Option<u64>,
    ) {
        if let Some(audit) = self.audits.get_mut(&query) {
            audit.observe_with_round(ctx, outcome, exact, round);
        }
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use digest_core::Precision;
    use digest_db::{Expr, P2PDatabase, Schema, Tuple};
    use digest_net::{topology, NodeId};

    fn fixture() -> (digest_net::Graph, P2PDatabase, ContinuousQuery) {
        let graph = topology::complete(4).unwrap();
        let mut db = P2PDatabase::new(Schema::single("a"));
        for v in 0..4 {
            db.register_node(NodeId(v));
            for i in 0..5 {
                db.insert(NodeId(v), Tuple::single(10.0 + f64::from(i)))
                    .unwrap();
            }
        }
        let query = ContinuousQuery::avg(
            Expr::first_attr(db.schema()),
            Precision::new(2.0, 1.0, 0.95).unwrap(),
        );
        (graph, db, query)
    }

    fn outcome(estimate: f64, snapshot: bool) -> TickOutcome {
        TickOutcome {
            estimate,
            updated: snapshot,
            snapshot_executed: snapshot,
            samples_this_tick: if snapshot { 8 } else { 0 },
            fresh_samples_this_tick: 0,
            messages_this_tick: if snapshot { 40 } else { 0 },
        }
    }

    #[test]
    fn occasions_and_ledger_accumulate_through_the_observer() {
        let (graph, db, query) = fixture();
        let mut audit = QueryAudit::new(&query, 0).unwrap();
        let exact = 12.0;
        for tick in 0..6 {
            let ctx = TickContext {
                tick,
                graph: &graph,
                db: &db,
                origin: NodeId(0),
            };
            // Snapshot on even ticks; estimate tracks truth closely.
            audit.observe(&ctx, &outcome(exact + 0.2, tick % 2 == 0), exact);
        }
        let report = audit.report();
        assert_eq!(report.ticks, 6);
        assert_eq!(report.occasions, 3);
        assert_eq!(report.violations, 0);
        assert_eq!(report.digest_messages, 120);
        // 20 steady tuples ship once under both baselines.
        assert_eq!(report.all_messages, 20);
        assert_eq!(report.filter_messages, 20);
        assert_eq!(report.resolution_violations, 0);
    }

    #[test]
    fn resolution_violations_count_reported_lag() {
        let (graph, db, query) = fixture();
        let mut audit = QueryAudit::new(&query, 0).unwrap();
        let ctx = TickContext {
            tick: 0,
            graph: &graph,
            db: &db,
            origin: NodeId(0),
        };
        // First report lands on target, then the truth runs away from the
        // held estimate by more than δ + ε = 3.
        audit.observe(&ctx, &outcome(12.0, true), 12.0);
        audit.observe(&ctx, &outcome(12.0, false), 16.0);
        let report = audit.report();
        assert_eq!(report.resolution_violations, 1);
        assert_eq!(report.occasions, 1);
    }
}
