//! Chrome/Perfetto trace-event export of the telemetry JSONL stream.
//!
//! Converts the deterministic event stream (each line one schema-validated
//! JSON object with `kind`, `tick`, optional `trace` envelope) into the
//! [trace-event JSON format] both `chrome://tracing` and Perfetto open
//! directly. Spans (`kind == "span"`) become complete (`ph: "X"`) events;
//! everything else becomes a thread-scoped instant (`ph: "i"`). One
//! simulation tick maps to one millisecond of trace time so occasion
//! spacing is visible at the default zoom.
//!
//! The export is a pure function of the input lines — parsing, mapping,
//! and the sorted-key serialiser introduce no nondeterminism, so two
//! replays of the same run produce byte-identical trace files.
//!
//! [trace-event JSON format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use serde_json::{json, Map, Value};

/// Microseconds of trace time per simulation tick (1 tick = 1 ms).
const TICK_US: u64 = 1_000;

/// Converts collected telemetry JSONL lines into a Chrome trace-event
/// JSON document. Lines that fail to parse as objects are skipped (the
/// schema gate catches malformed events separately).
#[must_use]
pub fn chrome_trace_json(lines: &[String]) -> String {
    let mut events: Vec<Value> = Vec::with_capacity(lines.len());
    for line in lines {
        let Ok(value) = serde_json::from_str(line) else {
            continue;
        };
        let Some(object) = value.as_object() else {
            continue;
        };
        let kind = object.get("kind").and_then(Value::as_str).unwrap_or("?");
        let tick = object.get("tick").and_then(Value::as_u64).unwrap_or(0);
        let ts = tick * TICK_US;

        let mut args = Map::new();
        for (key, field) in object.iter() {
            if key == "kind" || key == "tick" {
                continue;
            }
            args.insert(key.clone(), field.clone());
        }

        let event = if kind == "span" {
            let stage = object.get("stage").and_then(Value::as_str).unwrap_or("?");
            // Zero-duration spans are invisible in the viewers; stretch
            // them to 1 µs (still well under one tick).
            let dur = object
                .get("dur")
                .and_then(Value::as_u64)
                .unwrap_or(0)
                .saturating_mul(TICK_US)
                .max(1);
            json!({
                "name": stage,
                "ph": "X",
                "ts": ts,
                "dur": dur,
                "pid": 1,
                "tid": 1,
                "args": Value::Object(args),
            })
        } else {
            json!({
                "name": kind,
                "ph": "i",
                "s": "t",
                "ts": ts,
                "pid": 1,
                "tid": 1,
                "args": Value::Object(args),
            })
        };
        events.push(event);
    }
    let document = json!({
        "displayTimeUnit": "ms",
        "traceEvents": Value::Array(events),
    });
    serde_json::to_string(&document).unwrap_or_default()
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    #[test]
    fn spans_become_complete_events_and_others_instants() {
        let lines = vec![
            r#"{"dur":2,"kind":"span","stage":"engine_tick","tick":3,"trace":1}"#.to_string(),
            r#"{"estimate":5.0,"kind":"tick","tick":3,"trace":1}"#.to_string(),
        ];
        let out = chrome_trace_json(&lines);
        let doc = serde_json::from_str(&out).unwrap();
        let events = doc.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        assert_eq!(events.len(), 2);

        let span = &events[0];
        assert_eq!(span.get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(
            span.get("name").and_then(Value::as_str),
            Some("engine_tick")
        );
        assert_eq!(span.get("ts").and_then(Value::as_u64), Some(3_000));
        assert_eq!(span.get("dur").and_then(Value::as_u64), Some(2_000));
        // The trace envelope rides along in args.
        assert_eq!(
            span.get("args")
                .and_then(|a| a.get("trace"))
                .and_then(Value::as_u64),
            Some(1)
        );

        let instant = &events[1];
        assert_eq!(instant.get("ph").and_then(Value::as_str), Some("i"));
        assert_eq!(instant.get("name").and_then(Value::as_str), Some("tick"));
        assert_eq!(
            instant
                .get("args")
                .and_then(|a| a.get("estimate"))
                .and_then(Value::as_f64),
            Some(5.0)
        );
    }

    #[test]
    fn zero_duration_spans_are_stretched_to_one_microsecond() {
        let lines = vec![r#"{"dur":0,"kind":"span","stage":"sampling_walk","tick":0}"#.to_string()];
        let out = chrome_trace_json(&lines);
        let doc = serde_json::from_str(&out).unwrap();
        let dur = doc
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .and_then(|e| e.first())
            .and_then(|e| e.get("dur"))
            .and_then(Value::as_u64);
        assert_eq!(dur, Some(1));
    }

    #[test]
    fn export_is_deterministic_and_skips_garbage() {
        let lines = vec![
            "not json at all".to_string(),
            r#"{"kind":"tick","tick":1}"#.to_string(),
        ];
        let a = chrome_trace_json(&lines);
        let b = chrome_trace_json(&lines);
        assert_eq!(a, b);
        let doc = serde_json::from_str(&a).unwrap();
        assert_eq!(
            doc.get("traceEvents")
                .and_then(|e| e.as_array())
                .map(Vec::len),
            Some(1)
        );
    }
}
