//! The message-cost ledger: what the push baselines would have spent.
//!
//! The paper's evaluation (§VI-B3) compares Digest against two push-based
//! comparators: `ALL`, where every source ships every value change to the
//! query origin, and `ALL+FILTER`, where each source holds an Olston-style
//! adaptive filter of width `2ε` and ships only changes that escape it.
//! Running those baselines as separate simulations introduces workload
//! divergence; the ledger instead *re-accounts* the same run — it watches
//! the oracle-visible database each tick and tallies exactly the messages
//! each baseline would have sent on the identical data stream, giving a
//! per-query cost comparison with zero cross-run noise.

use digest_db::{Expr, P2PDatabase, Predicate, TupleHandle};
use std::collections::BTreeMap;
use std::mem;

/// Per-tuple filter state.
#[derive(Debug, Clone, Copy)]
struct FilterEntry {
    /// The value as of the previous tick (change detection for `ALL`).
    last: f64,
    /// The value last shipped through the `ALL+FILTER` filter (the
    /// filter's centre; escape when `|v − shipped| > ε`).
    shipped: f64,
}

/// Totals the ledger has accumulated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerTotals {
    /// Messages the `ALL` baseline would have sent.
    pub all_messages: u64,
    /// Messages the `ALL+FILTER` baseline would have sent.
    pub filter_messages: u64,
    /// Ticks observed.
    pub ticks: u64,
}

/// Same-run message accounting for the `ALL` / `ALL+FILTER` baselines.
#[derive(Debug)]
pub struct MessageLedger {
    epsilon: f64,
    expr: Expr,
    predicate: Predicate,
    entries: BTreeMap<TupleHandle, FilterEntry>,
    scratch: BTreeMap<TupleHandle, FilterEntry>,
    totals: LedgerTotals,
}

impl MessageLedger {
    /// Builds a ledger for the query's expression/predicate with filter
    /// half-width `epsilon`.
    #[must_use]
    pub fn new(expr: Expr, predicate: Predicate, epsilon: f64) -> Self {
        Self {
            epsilon,
            expr,
            predicate,
            entries: BTreeMap::new(),
            scratch: BTreeMap::new(),
            totals: LedgerTotals::default(),
        }
    }

    /// Observes one tick of database state and charges both baselines.
    ///
    /// A tuple's first appearance ships under both baselines (the initial
    /// value must reach the origin either way); afterwards `ALL` pays for
    /// every value change while `ALL+FILTER` pays only for changes that
    /// escape the width-`2ε` filter, recentring the filter on each ship.
    /// Departed tuples are dropped from the filter table.
    pub fn observe(&mut self, db: &P2PDatabase) {
        self.totals.ticks += 1;
        // Rebuild the entry table each tick: surviving tuples carry their
        // filter state over, departed tuples fall away.
        let mut next = mem::take(&mut self.scratch);
        next.clear();
        for (handle, tuple) in db.iter() {
            if !self.predicate.eval(tuple).unwrap_or(false) {
                continue;
            }
            let Ok(value) = self.expr.eval(tuple) else {
                continue;
            };
            let entry = match self.entries.get(&handle) {
                None => {
                    // New tuple: both baselines ship the initial value.
                    self.totals.all_messages += 1;
                    self.totals.filter_messages += 1;
                    FilterEntry {
                        last: value,
                        shipped: value,
                    }
                }
                Some(&prev) => {
                    let mut entry = prev;
                    // Bit comparison: any representational change is a
                    // change the source would push (exact float equality
                    // is the intended semantics here, not tolerance).
                    if value.to_bits() != prev.last.to_bits() {
                        self.totals.all_messages += 1;
                    }
                    if (value - prev.shipped).abs() > self.epsilon {
                        self.totals.filter_messages += 1;
                        entry.shipped = value;
                    }
                    entry.last = value;
                    entry
                }
            };
            next.insert(handle, entry);
        }
        self.scratch = mem::replace(&mut self.entries, next);
    }

    /// The accumulated baseline totals.
    #[must_use]
    pub fn totals(&self) -> LedgerTotals {
        self.totals
    }

    /// Tuples currently tracked by the filter table.
    #[must_use]
    pub fn tracked(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use digest_db::{P2PDatabase, Schema, Tuple};
    use digest_net::NodeId;

    fn db_with(values: &[f64]) -> (P2PDatabase, Vec<TupleHandle>) {
        let mut db = P2PDatabase::new(Schema::single("a"));
        db.register_node(NodeId(0));
        let handles = values
            .iter()
            .map(|&v| db.insert(NodeId(0), Tuple::single(v)).unwrap())
            .collect();
        (db, handles)
    }

    fn ledger_for(db: &P2PDatabase, epsilon: f64) -> MessageLedger {
        MessageLedger::new(Expr::first_attr(db.schema()), Predicate::True, epsilon)
    }

    #[test]
    fn initial_tick_ships_every_tuple_once() {
        let (db, _) = db_with(&[1.0, 2.0, 3.0]);
        let mut ledger = ledger_for(&db, 0.5);
        ledger.observe(&db);
        let t = ledger.totals();
        assert_eq!(t.all_messages, 3);
        assert_eq!(t.filter_messages, 3);
        assert_eq!(ledger.tracked(), 3);
    }

    #[test]
    fn steady_values_cost_nothing_after_the_first_ship() {
        let (db, _) = db_with(&[1.0, 2.0]);
        let mut ledger = ledger_for(&db, 0.5);
        for _ in 0..5 {
            ledger.observe(&db);
        }
        let t = ledger.totals();
        assert_eq!(t.all_messages, 2);
        assert_eq!(t.filter_messages, 2);
        assert_eq!(t.ticks, 5);
    }

    #[test]
    fn all_charges_every_change_filter_charges_escapes() {
        let (mut db, handles) = db_with(&[10.0]);
        let mut ledger = ledger_for(&db, 1.0);
        ledger.observe(&db); // initial ship: all 1, filter 1

        // Small drift inside the filter: ALL pays, FILTER holds.
        db.update(handles[0], &[10.5]).unwrap();
        ledger.observe(&db);
        // Another small step, still within ε of the shipped 10.0.
        db.update(handles[0], &[10.9]).unwrap();
        ledger.observe(&db);
        let t = ledger.totals();
        assert_eq!(t.all_messages, 3);
        assert_eq!(t.filter_messages, 1);

        // Escape the filter: both pay, filter recentres at 11.5.
        db.update(handles[0], &[11.5]).unwrap();
        ledger.observe(&db);
        let t = ledger.totals();
        assert_eq!(t.all_messages, 4);
        assert_eq!(t.filter_messages, 2);

        // Drift within ε of the *new* centre: FILTER holds again.
        db.update(handles[0], &[12.0]).unwrap();
        ledger.observe(&db);
        let t = ledger.totals();
        assert_eq!(t.all_messages, 5);
        assert_eq!(t.filter_messages, 2);
    }

    #[test]
    fn departed_tuples_are_pruned_and_reinsertions_ship_again() {
        let (mut db, handles) = db_with(&[1.0, 2.0]);
        let mut ledger = ledger_for(&db, 0.5);
        ledger.observe(&db);
        assert_eq!(ledger.tracked(), 2);

        db.delete(handles[0]).unwrap();
        ledger.observe(&db);
        assert_eq!(ledger.tracked(), 1);

        // A fresh tuple (new handle) ships under both baselines.
        db.insert(NodeId(0), Tuple::single(1.0)).unwrap();
        ledger.observe(&db);
        let t = ledger.totals();
        assert_eq!(ledger.tracked(), 2);
        assert_eq!(t.all_messages, 3);
        assert_eq!(t.filter_messages, 3);
    }

    #[test]
    fn predicate_restricts_the_accounted_population() {
        let (db, _) = db_with(&[1.0, 5.0, 9.0]);
        let schema = db.schema().clone();
        let pred = Predicate::parse("a > 4", &schema).unwrap();
        let mut ledger = MessageLedger::new(Expr::first_attr(&schema), pred, 0.5);
        ledger.observe(&db);
        let t = ledger.totals();
        assert_eq!(t.all_messages, 2);
        assert_eq!(ledger.tracked(), 2);
    }
}
