//! # digest-audit
//!
//! The continuous-guarantee auditor: simulation-side observability that
//! checks, rather than assumes, the fixed-precision contract of the paper
//! (§II — `|X̂[t] − X[t]| ≤ ε` with probability ≥ p at every reporting
//! occasion).
//!
//! The crate hangs off the simulator's [`digest_core::TickObserver`] hook
//! and never feeds back into the system under test: it consumes no
//! randomness, takes no locks, and touches only the oracle-visible state a
//! real peer could not see. Three pieces compose:
//!
//! * [`auditor::Auditor`] — folds per-occasion `(estimate, exact)` pairs
//!   into the empirical ε-violation rate and a confidence-calibration
//!   table (nominal coverage level vs observed coverage at the CLT-scaled
//!   half-width), and emits `audit.occasion` telemetry events;
//! * [`ledger::MessageLedger`] — recomputes, in the same run, what the
//!   push-based `ALL` and `ALL+FILTER` baselines (paper §VI-B3, Olston
//!   adaptive filters) would have spent on the same data stream, giving
//!   per-query message-cost comparisons that share every tick of workload
//!   dynamics with the digest engine being audited;
//! * [`chrome::chrome_trace_json`] — exports a collected telemetry event
//!   stream (with its causal `trace` envelopes) to Chrome/Perfetto
//!   trace-event JSON for timeline inspection.
//!
//! [`observer::QueryAudit`] bundles the three behind one `TickObserver`
//! and renders the end-of-run [`auditor::AuditReport`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod auditor;
pub mod chrome;
pub mod ledger;
pub mod observer;

pub use auditor::{AuditReport, Auditor, AuditorConfig, CalibrationRow, NOMINAL_LEVELS};
pub use chrome::chrome_trace_json;
pub use ledger::{LedgerTotals, MessageLedger};
pub use observer::{MuxAudit, QueryAudit};

/// Errors the auditor can produce.
#[derive(Debug)]
pub enum AuditError {
    /// A statistics-kernel error (quantile domain, degenerate inputs).
    Stats(digest_stats::StatsError),
    /// An invalid auditor configuration.
    InvalidConfig {
        /// What was wrong.
        reason: &'static str,
    },
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::Stats(e) => write!(f, "stats error: {e}"),
            AuditError::InvalidConfig { reason } => {
                write!(f, "invalid audit config: {reason}")
            }
        }
    }
}

impl std::error::Error for AuditError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AuditError::Stats(e) => Some(e),
            AuditError::InvalidConfig { .. } => None,
        }
    }
}

impl From<digest_stats::StatsError> for AuditError {
    fn from(e: digest_stats::StatsError) -> Self {
        AuditError::Stats(e)
    }
}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, AuditError>;
