//! Ground-truth guarantee auditing (paper §II, Eq. 8–11).
//!
//! The fixed-precision contract says each reported estimate satisfies
//! `|X̂[t_u] − X[t_u]| ≤ ε` with probability at least `p`. The auditor
//! turns that from a promise into a measurement: at every reporting
//! occasion it takes the oracle's exact aggregate alongside the engine's
//! estimate, classifies the occasion as an ε-violation or not, and folds
//! the pair into two end-of-run statistics:
//!
//! * the **empirical violation rate**, compared against the promised
//!   `1 − p` plus three-σ binomial sampling slack (the rate over `n`
//!   occasions is itself a binomial estimate);
//! * a **confidence-calibration table**: for a grid of nominal levels
//!   `q`, the fraction of occasions with `|err| ≤ ε · z_q / z_p` — under
//!   the CLT normality assumption the estimator actually relies on, that
//!   observed coverage should track `q` across the whole grid, not just
//!   at the advertised `p`.

use crate::{AuditError, Result};
use digest_stats::z_for_confidence;
use digest_telemetry::Field;
use serde_json::{json, Value};

/// Nominal confidence levels probed by the calibration table.
pub const NOMINAL_LEVELS: [f64; 5] = [0.5, 0.8, 0.9, 0.95, 0.99];

/// Standard deviations of binomial slack granted on top of the promised
/// violation rate before the gate trips.
const BINOMIAL_SLACK_SIGMAS: f64 = 3.0;

/// What the auditor needs to know about the query under audit.
#[derive(Debug, Clone, Copy)]
pub struct AuditorConfig {
    /// Resolution threshold `δ` of the query.
    pub delta: f64,
    /// CI half-width `ε` the engine promised.
    pub epsilon: f64,
    /// Confidence level `p` the engine promised.
    pub confidence: f64,
    /// Index of the query within the run (stamped on events).
    pub query_index: u64,
    /// Whether `ε` is *relative* to the exact value (the `COUNT
    /// DISTINCT` contract of DESIGN.md §17: an occasion violates when
    /// `|err| > ε · max(|exact|, 1)`), rather than the paper's absolute
    /// §II half-width.
    pub relative_epsilon: bool,
}

/// One row of the confidence-calibration table.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationRow {
    /// Nominal coverage level `q`.
    pub nominal: f64,
    /// Half-width `ε · z_q / z_p` probed for this row.
    pub half_width: f64,
    /// Occasions with `|err| ≤ half_width`.
    pub covered: u64,
    /// `covered / occasions` (0 when no occasions ran).
    pub coverage: f64,
}

/// Per-occasion guarantee auditor for one continuous query.
#[derive(Debug)]
pub struct Auditor {
    config: AuditorConfig,
    half_widths: [f64; NOMINAL_LEVELS.len()],
    covered: [u64; NOMINAL_LEVELS.len()],
    occasions: u64,
    violations: u64,
    abs_error_sum: f64,
    max_abs_error: f64,
    last_occasion_tick: Option<u64>,
    staleness_sum: u64,
    max_staleness: u64,
}

impl Auditor {
    /// Builds an auditor for a query promising `(δ, ε, p)`.
    ///
    /// # Errors
    ///
    /// [`AuditError::InvalidConfig`] on non-positive `ε` or `p` outside
    /// `(0, 1)`; [`AuditError::Stats`] if a calibration quantile is out
    /// of the normal table's domain (unreachable for the fixed grid).
    pub fn new(config: AuditorConfig) -> Result<Self> {
        if !(config.epsilon.is_finite() && config.epsilon > 0.0) {
            return Err(AuditError::InvalidConfig {
                reason: "epsilon must be positive and finite",
            });
        }
        if !(config.confidence > 0.0 && config.confidence < 1.0) {
            return Err(AuditError::InvalidConfig {
                reason: "confidence must be in (0, 1)",
            });
        }
        let z_p = z_for_confidence(config.confidence)?;
        let mut half_widths = [0.0; NOMINAL_LEVELS.len()];
        for (hw, q) in half_widths.iter_mut().zip(NOMINAL_LEVELS) {
            *hw = config.epsilon * z_for_confidence(q)? / z_p;
        }
        Ok(Self {
            config,
            half_widths,
            covered: [0; NOMINAL_LEVELS.len()],
            occasions: 0,
            violations: 0,
            abs_error_sum: 0.0,
            max_abs_error: 0.0,
            last_occasion_tick: None,
            staleness_sum: 0,
            max_staleness: 0,
        })
    }

    /// Folds one reporting occasion into the audit and emits its
    /// `audit.occasion` telemetry event. `panel` is the occasion's sample
    /// count, `messages` its message spend.
    pub fn observe_occasion(
        &mut self,
        tick: u64,
        estimate: f64,
        exact: f64,
        panel: u64,
        messages: u64,
    ) {
        self.observe_occasion_in_round(tick, estimate, exact, panel, messages, None);
    }

    /// Like [`Auditor::observe_occasion`], for occasions served from a
    /// coalesced multi-query sampling round: the round's trace id is
    /// stamped on the `audit.occasion` event as a `round` field, so each
    /// member query of the round gets its *own* occasion event (its own
    /// ε-violation accounting against its own contract) while remaining
    /// causally parented to the shared round that paid for the panel.
    pub fn observe_occasion_in_round(
        &mut self,
        tick: u64,
        estimate: f64,
        exact: f64,
        panel: u64,
        messages: u64,
        round: Option<u64>,
    ) {
        let error = estimate - exact;
        let abs_error = error.abs();
        // Kind-specific ε-semantics (DESIGN.md §17): a relative contract
        // scales the probed half-widths by the occasion's exact value
        // (floored at 1 so an empty relation cannot zero the band).
        let scale = if self.config.relative_epsilon {
            exact.abs().max(1.0)
        } else {
            1.0
        };
        let violation = abs_error > self.config.epsilon * scale;
        let staleness = tick - self.last_occasion_tick.unwrap_or(tick);
        self.last_occasion_tick = Some(tick);

        self.occasions += 1;
        if violation {
            self.violations += 1;
        }
        self.abs_error_sum += abs_error;
        self.max_abs_error = self.max_abs_error.max(abs_error);
        self.staleness_sum += staleness;
        self.max_staleness = self.max_staleness.max(staleness);
        for (covered, hw) in self.covered.iter_mut().zip(self.half_widths) {
            if abs_error <= hw * scale {
                *covered += 1;
            }
        }

        if digest_telemetry::events_enabled() {
            let mut fields = vec![
                ("estimate", Field::F64(estimate)),
                ("exact", Field::F64(exact)),
                ("error", Field::F64(error)),
                ("violation", Field::Bool(violation)),
                ("staleness", Field::U64(staleness)),
                ("panel", Field::U64(panel)),
                ("messages", Field::U64(messages)),
                ("query", Field::U64(self.config.query_index)),
            ];
            if let Some(round) = round {
                fields.push(("round", Field::U64(round)));
            }
            digest_telemetry::emit("audit.occasion", &fields);
        }
    }

    /// Occasions folded so far.
    #[must_use]
    pub fn occasions(&self) -> u64 {
        self.occasions
    }

    /// ε-violations observed so far.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Freezes the audit into a report. The caller supplies the context
    /// the auditor cannot see: the query's display string, tick count,
    /// the digest engine's actual message total, and the ledger's
    /// baseline totals.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn report(
        &self,
        query: String,
        ticks: u64,
        digest_messages: u64,
        all_messages: u64,
        filter_messages: u64,
        resolution_violations: u64,
    ) -> AuditReport {
        let n = self.occasions.max(1) as f64;
        let calibration = NOMINAL_LEVELS
            .iter()
            .zip(self.half_widths)
            .zip(self.covered)
            .map(|((&nominal, half_width), covered)| CalibrationRow {
                nominal,
                half_width,
                covered,
                coverage: if self.occasions == 0 {
                    0.0
                } else {
                    covered as f64 / n
                },
            })
            .collect();
        AuditReport {
            query,
            delta: self.config.delta,
            epsilon: self.config.epsilon,
            relative_epsilon: self.config.relative_epsilon,
            confidence: self.config.confidence,
            occasions: self.occasions,
            violations: self.violations,
            violation_rate: if self.occasions == 0 {
                0.0
            } else {
                self.violations as f64 / n
            },
            mean_abs_error: if self.occasions == 0 {
                0.0
            } else {
                self.abs_error_sum / n
            },
            max_abs_error: self.max_abs_error,
            mean_staleness: if self.occasions == 0 {
                0.0
            } else {
                self.staleness_sum as f64 / n
            },
            max_staleness: self.max_staleness,
            calibration,
            ticks,
            resolution_violations,
            digest_messages,
            all_messages,
            filter_messages,
        }
    }
}

/// The end-of-run guarantee report for one query.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Display form of the audited query.
    pub query: String,
    /// Promised resolution `δ`.
    pub delta: f64,
    /// Promised CI half-width `ε`.
    pub epsilon: f64,
    /// Whether `ε` was audited relative to the exact value (DESIGN.md
    /// §17 `COUNT DISTINCT` semantics) or as an absolute §II half-width.
    pub relative_epsilon: bool,
    /// Promised confidence `p`.
    pub confidence: f64,
    /// Reporting occasions audited.
    pub occasions: u64,
    /// Occasions with `|err| > ε`.
    pub violations: u64,
    /// `violations / occasions`.
    pub violation_rate: f64,
    /// Mean `|err|` over occasions.
    pub mean_abs_error: f64,
    /// Max `|err|` over occasions.
    pub max_abs_error: f64,
    /// Mean ticks between consecutive occasions.
    pub mean_staleness: f64,
    /// Max ticks between consecutive occasions.
    pub max_staleness: u64,
    /// The confidence-calibration table over [`NOMINAL_LEVELS`].
    pub calibration: Vec<CalibrationRow>,
    /// Ticks the run covered.
    pub ticks: u64,
    /// Ticks on which the *reported* result was off by more than `δ + ε`
    /// (the paper's resolution-violation notion applied pointwise).
    pub resolution_violations: u64,
    /// Messages the digest engine actually spent.
    pub digest_messages: u64,
    /// Messages the `ALL` push baseline would have spent on the same data.
    pub all_messages: u64,
    /// Messages the `ALL+FILTER` (Olston) baseline would have spent.
    pub filter_messages: u64,
}

impl AuditReport {
    /// The promised violation rate `1 − p`.
    #[must_use]
    pub fn promised_violation_rate(&self) -> f64 {
        1.0 - self.confidence
    }

    /// Three-σ binomial sampling slack for the observed rate over
    /// `occasions` trials: `3 · sqrt(p(1−p)/n)`.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn binomial_slack(&self) -> f64 {
        let n = self.occasions.max(1) as f64;
        BINOMIAL_SLACK_SIGMAS * (self.confidence * (1.0 - self.confidence) / n).sqrt()
    }

    /// The gate bound: promised rate plus binomial slack.
    #[must_use]
    pub fn violation_bound(&self) -> f64 {
        self.promised_violation_rate() + self.binomial_slack()
    }

    /// Worst absolute calibration miss: `max_q |coverage(q) − q|`.
    #[must_use]
    pub fn calibration_drift(&self) -> f64 {
        self.calibration
            .iter()
            .map(|row| (row.coverage - row.nominal).abs())
            .fold(0.0, f64::max)
    }

    /// Applies the audit gate: the violation rate must stay within the
    /// binomial bound and the calibration drift within `drift_tolerance`.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first failed check.
    pub fn gate(&self, drift_tolerance: f64) -> std::result::Result<(), String> {
        if self.occasions == 0 {
            return Err("audit gate: no reporting occasions observed".to_string());
        }
        if self.violation_rate > self.violation_bound() {
            return Err(format!(
                "audit gate: violation rate {:.4} exceeds promised {:.4} + slack {:.4}",
                self.violation_rate,
                self.promised_violation_rate(),
                self.binomial_slack()
            ));
        }
        let drift = self.calibration_drift();
        if drift > drift_tolerance {
            return Err(format!(
                "audit gate: calibration drift {drift:.4} exceeds tolerance {drift_tolerance:.4}"
            ));
        }
        Ok(())
    }

    /// Renders the report as an aligned human-readable table.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("guarantee audit — {}\n", self.query));
        out.push_str(&format!(
            "  occasions {:>6}   ticks {:>6}   mean staleness {:.2}   max {}\n",
            self.occasions, self.ticks, self.mean_staleness, self.max_staleness
        ));
        if self.relative_epsilon {
            out.push_str("  ε-semantics: relative (±ε · max(|exact|, 1))\n");
        }
        out.push_str(&format!(
            "  ε-violations {:>3}   rate {:.4}   promised ≤ {:.4}   gate ≤ {:.4}\n",
            self.violations,
            self.violation_rate,
            self.promised_violation_rate(),
            self.violation_bound()
        ));
        out.push_str(&format!(
            "  |error| mean {:.4}   max {:.4}   resolution misses {}/{}\n",
            self.mean_abs_error, self.max_abs_error, self.resolution_violations, self.ticks
        ));
        out.push_str("  calibration (nominal → observed coverage):\n");
        for row in &self.calibration {
            out.push_str(&format!(
                "    {:.2} → {:.4}   (half-width {:.4}, {}/{})\n",
                row.nominal, row.coverage, row.half_width, row.covered, self.occasions
            ));
        }
        out.push_str(&format!(
            "  calibration drift {:.4}\n",
            self.calibration_drift()
        ));
        out.push_str(&format!(
            "  messages: digest {}   ALL {}   ALL+FILTER {}\n",
            self.digest_messages, self.all_messages, self.filter_messages
        ));
        out
    }

    /// Canonical JSON rendering of the report (sorted keys; byte-stable
    /// across replays).
    #[must_use]
    pub fn to_json_value(&self) -> Value {
        let calibration: Vec<Value> = self
            .calibration
            .iter()
            .map(|row| {
                json!({
                    "nominal": row.nominal,
                    "half_width": row.half_width,
                    "covered": row.covered,
                    "coverage": row.coverage,
                })
            })
            .collect();
        json!({
            "query": self.query.clone(),
            "delta": self.delta,
            "epsilon": self.epsilon,
            "relative_epsilon": self.relative_epsilon,
            "confidence": self.confidence,
            "occasions": self.occasions,
            "violations": self.violations,
            "violation_rate": self.violation_rate,
            "promised_violation_rate": self.promised_violation_rate(),
            "binomial_slack": self.binomial_slack(),
            "violation_bound": self.violation_bound(),
            "mean_abs_error": self.mean_abs_error,
            "max_abs_error": self.max_abs_error,
            "mean_staleness": self.mean_staleness,
            "max_staleness": self.max_staleness,
            "calibration": Value::Array(calibration),
            "calibration_drift": self.calibration_drift(),
            "ticks": self.ticks,
            "resolution_violations": self.resolution_violations,
            "messages": json!({
                "digest": self.digest_messages,
                "all": self.all_messages,
                "all_filter": self.filter_messages,
            }),
        })
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    fn auditor(epsilon: f64, p: f64) -> Auditor {
        Auditor::new(AuditorConfig {
            delta: 2.0 * epsilon,
            epsilon,
            confidence: p,
            query_index: 0,
            relative_epsilon: false,
        })
        .unwrap()
    }

    #[test]
    fn relative_epsilon_scales_the_violation_band() {
        let mut a = Auditor::new(AuditorConfig {
            delta: 1.0,
            epsilon: 0.1,
            confidence: 0.95,
            query_index: 0,
            relative_epsilon: true,
        })
        .unwrap();
        a.observe_occasion(0, 105.0, 100.0, 8, 10); // |err| 5 ≤ 0.1·100
        a.observe_occasion(1, 120.0, 100.0, 8, 10); // |err| 20 > 0.1·100
        a.observe_occasion(2, 0.05, 0.0, 8, 10); // band floored at ε·1
        assert_eq!(a.violations(), 1);
        let r = a.report("q".to_string(), 3, 30, 0, 0, 0);
        assert!(r.relative_epsilon);
    }

    #[test]
    fn config_is_validated() {
        assert!(Auditor::new(AuditorConfig {
            delta: 1.0,
            epsilon: 0.0,
            confidence: 0.95,
            query_index: 0,
            relative_epsilon: false,
        })
        .is_err());
        assert!(Auditor::new(AuditorConfig {
            delta: 1.0,
            epsilon: 1.0,
            confidence: 1.0,
            query_index: 0,
            relative_epsilon: false,
        })
        .is_err());
    }

    #[test]
    fn violations_are_counted_at_epsilon() {
        let mut a = auditor(2.0, 0.95);
        a.observe_occasion(0, 10.0, 10.5, 8, 100); // |err| 0.5 ≤ ε
        a.observe_occasion(1, 10.0, 13.0, 8, 100); // |err| 3.0 > ε
        a.observe_occasion(2, 10.0, 12.0, 8, 100); // |err| 2.0 = ε (ok)
        assert_eq!(a.occasions(), 3);
        assert_eq!(a.violations(), 1);
        let r = a.report("q".to_string(), 3, 300, 0, 0, 0);
        assert!((r.violation_rate - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.mean_abs_error - (0.5 + 3.0 + 2.0) / 3.0).abs() < 1e-12);
        assert_eq!(r.max_abs_error, 3.0);
    }

    #[test]
    fn staleness_tracks_occasion_gaps() {
        let mut a = auditor(1.0, 0.9);
        a.observe_occasion(5, 1.0, 1.0, 4, 10);
        a.observe_occasion(8, 1.0, 1.0, 4, 10);
        a.observe_occasion(9, 1.0, 1.0, 4, 10);
        let r = a.report("q".to_string(), 10, 30, 0, 0, 0);
        // Gaps: 0 (first), 3, 1.
        assert!((r.mean_staleness - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.max_staleness, 3);
    }

    #[test]
    fn calibration_half_widths_scale_by_z_ratio() {
        let a = auditor(2.0, 0.95);
        // The p-level row must probe exactly ε.
        let row_p = NOMINAL_LEVELS.iter().position(|&q| q == 0.95).unwrap();
        assert!((a.half_widths[row_p] - 2.0).abs() < 1e-12);
        // Rows are monotone in the nominal level.
        for pair in a.half_widths.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        // The 0.5 row probes ε·z(.5)/z(.95) ≈ 2·0.6745/1.95996.
        assert!((a.half_widths[0] - 2.0 * 0.674_49 / 1.959_96).abs() < 1e-3);
    }

    #[test]
    fn perfectly_calibrated_errors_pass_the_gate() {
        let mut a = auditor(1.0, 0.95);
        // 20 occasions, all well inside ε.
        for t in 0..20 {
            a.observe_occasion(t, 5.0, 5.0 + 0.01 * (t as f64 % 3.0), 8, 50);
        }
        let r = a.report("q".to_string(), 20, 1000, 2000, 1500, 0);
        assert_eq!(r.violations, 0);
        // Tiny errors cover every level: drift is max_q (1 − q) = 0.5.
        assert!(r.gate(0.55).is_ok());
        assert!(r.gate(0.4).is_err());
    }

    #[test]
    fn gate_rejects_excess_violations() {
        let mut a = auditor(1.0, 0.95);
        for t in 0..20 {
            // Half the occasions violate ε.
            let exact = if t % 2 == 0 { 5.0 } else { 8.0 };
            a.observe_occasion(t, 5.0, exact, 8, 50);
        }
        let r = a.report("q".to_string(), 20, 1000, 0, 0, 0);
        assert!(r.violation_rate > r.violation_bound());
        assert!(r.gate(1.0).is_err());
    }

    #[test]
    fn empty_audit_fails_the_gate_but_reports_zeros() {
        let a = auditor(1.0, 0.95);
        let r = a.report("q".to_string(), 0, 0, 0, 0, 0);
        assert_eq!(r.violation_rate, 0.0);
        assert_eq!(r.mean_abs_error, 0.0);
        assert!(r.gate(1.0).is_err());
    }

    #[test]
    fn json_report_round_trips_key_fields() {
        let mut a = auditor(2.0, 0.95);
        a.observe_occasion(0, 10.0, 11.0, 8, 100);
        let r = a.report("SELECT AVG(x) FROM R".to_string(), 5, 100, 250, 80, 0);
        let v = r.to_json_value();
        let text = serde_json::to_string(&v).unwrap();
        let back = serde_json::from_str(&text).unwrap();
        assert_eq!(back.get("occasions").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(
            back.get("messages")
                .and_then(|m| m.get("all"))
                .and_then(|x| x.as_u64()),
            Some(250)
        );
        assert_eq!(
            back.get("calibration")
                .and_then(|c| c.as_array())
                .map(Vec::len),
            Some(NOMINAL_LEVELS.len())
        );
    }
}
