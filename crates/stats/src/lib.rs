//! # digest-stats
//!
//! Statistical substrate for the Digest query-answering system.
//!
//! This crate implements, from scratch, every piece of numerical machinery
//! the two tiers of Digest rely on:
//!
//! * [`moments`] — numerically stable running moments (Welford) and paired
//!   moments (covariance / correlation) for streaming data.
//! * [`normal`] — the standard normal distribution: `Φ`, `φ`, and a
//!   high-accuracy inverse CDF used to turn a confidence level `p` into a
//!   quantile `z_p`.
//! * [`clt`] — central-limit-theorem sample sizing: how many i.i.d. samples
//!   are needed so that the sample mean lands within `±ε` of the population
//!   mean with probability `p` (paper Eq. 6).
//! * [`linalg`] — small dense matrices and linear solvers (LU with partial
//!   pivoting, Cholesky) backing the least-squares fitters.
//! * [`lm`] — the Levenberg–Marquardt damped least-squares optimiser the
//!   paper prescribes for fitting the Taylor polynomial of the running
//!   aggregate.
//! * [`poly`] — dense univariate polynomials and (non)linear least-squares
//!   polynomial fitting.
//! * [`taylor`] — Taylor-polynomial extrapolation with Lagrange remainder
//!   bounds: predicts the earliest time the running aggregate can have
//!   drifted by the resolution threshold `δ` (paper §IV-A, Eqs. 1–4).
//! * [`quantile`] — sample quantiles with distribution-free
//!   (order-statistic) confidence intervals, powering `MEDIAN` queries.
//! * [`regression`] — simple linear regression between paired samples,
//!   the auxiliary-variate machinery behind repeated sampling.
//! * [`repeated`] — the repeated-sampling estimator algebra of paper
//!   §IV-B2: optimal panel partitioning `g_opt`, the combined
//!   regression+mean estimator, and its variance (Eqs. 7–11).
//! * [`tvd`] — discrete probability distributions and total-variation
//!   distance, used to certify the mixing of the MCMC sampling operator.
//!
//! All algorithms are deterministic and allocation-conscious; no external
//! numerical crates are used.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod clt;
pub mod error;

/// Converts a non-negative finite `f64` to `usize`, saturating at the
/// type bounds. The single place sample-size arithmetic (always small,
/// always non-negative) is allowed to leave floating point.
#[must_use]
pub(crate) fn f64_to_usize_saturating(x: f64) -> usize {
    if x.is_nan() || x < 0.0 {
        return 0;
    }
    if x >= usize::MAX as f64 {
        return usize::MAX;
    }
    // In-range by the guards above.
    #[allow(clippy::cast_possible_truncation)]
    let out = x as usize;
    out
}
pub mod linalg;
pub mod lm;
pub mod moments;
pub mod normal;
pub mod poly;
pub mod quantile;
pub mod regression;
pub mod repeated;
pub mod taylor;
pub mod tvd;

pub use clt::{required_sample_size, required_sample_size_for_variance};
pub use error::StatsError;
pub use linalg::Matrix;
pub use lm::{LevenbergMarquardt, LmConfig, LmOutcome, LmReport, ResidualModel};
pub use moments::{PairedMoments, RunningMoments};
pub use normal::{inverse_phi, phi, phi_pdf, z_for_confidence};
pub use poly::Polynomial;
pub use quantile::{quantile_interval, sample_quantile, QuantileInterval};
pub use regression::SimpleLinearRegression;
pub use repeated::{combined_estimate, optimal_partition, CombinedEstimate, PanelPartition};
pub use taylor::{Extrapolator, ExtrapolatorConfig, Prediction};
pub use tvd::{total_variation_distance, DiscreteDistribution};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StatsError>;
