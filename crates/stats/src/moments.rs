//! Numerically stable streaming moments.
//!
//! The query engine continuously folds sampled tuple values into running
//! estimates of the mean and variance (for CLT sizing) and, for repeated
//! sampling, into paired moments (covariance / correlation between a tuple's
//! value at consecutive sampling occasions). Both accumulators use Welford's
//! online algorithm, which is stable even when the values are large and the
//! variance is small — exactly the regime of slowly drifting aggregates.

/// Streaming univariate moments (count, mean, variance) via Welford's
/// algorithm.
///
/// ```
/// use digest_stats::RunningMoments;
/// let mut m = RunningMoments::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     m.push(x);
/// }
/// assert_eq!(m.count(), 8);
/// assert!((m.mean() - 5.0).abs() < 1e-12);
/// assert!((m.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMoments {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningMoments {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observation into the accumulator.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Folds a slice of observations.
    pub fn extend_from(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Builds an accumulator from a slice in one call.
    #[must_use]
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut m = Self::new();
        m.extend_from(xs);
        m
    }

    /// Number of observations folded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the observations (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`); 0 when fewer than one
    /// observation has been seen.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n − 1`); 0 when fewer than two
    /// observations have been seen.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Population standard deviation.
    #[must_use]
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Standard error of the mean, `s / √n` (0 when empty).
    #[must_use]
    pub fn standard_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sample_std() / (self.count as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &RunningMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let total_f = total as f64;
        self.m2 += other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total_f;
        self.mean += delta * other.count as f64 / total_f;
        self.count = total;
    }
}

/// Streaming paired moments for observations `(x, y)`: means, variances,
/// covariance, and the Pearson correlation coefficient.
///
/// In repeated sampling (paper §IV-B2), `x` is a retained tuple's value at
/// the previous sampling occasion and `y` its value at the current occasion;
/// the correlation `ρ̂` drives both the optimal replacement policy and the
/// regression estimator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PairedMoments {
    count: u64,
    mean_x: f64,
    mean_y: f64,
    m2x: f64,
    m2y: f64,
    cxy: f64,
}

impl PairedMoments {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one paired observation.
    pub fn push(&mut self, x: f64, y: f64) {
        self.count += 1;
        let n = self.count as f64;
        let dx = x - self.mean_x;
        let dy = y - self.mean_y;
        self.mean_x += dx / n;
        self.mean_y += dy / n;
        // After updating mean_x, (x − mean_x) uses the *new* mean.
        self.m2x += dx * (x - self.mean_x);
        self.m2y += dy * (y - self.mean_y);
        self.cxy += dx * (y - self.mean_y);
    }

    /// Builds an accumulator from paired slices; extra elements in the
    /// longer slice are ignored.
    #[must_use]
    pub fn from_pairs(xs: &[f64], ys: &[f64]) -> Self {
        let mut m = Self::new();
        for (&x, &y) in xs.iter().zip(ys.iter()) {
            m.push(x, y);
        }
        m
    }

    /// Number of pairs folded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the `x` series.
    #[must_use]
    pub fn mean_x(&self) -> f64 {
        self.mean_x
    }

    /// Mean of the `y` series.
    #[must_use]
    pub fn mean_y(&self) -> f64 {
        self.mean_y
    }

    /// Sample variance of the `x` series.
    #[must_use]
    pub fn sample_variance_x(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2x / (self.count - 1) as f64
        }
    }

    /// Sample variance of the `y` series.
    #[must_use]
    pub fn sample_variance_y(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2y / (self.count - 1) as f64
        }
    }

    /// Sample covariance of `x` and `y`.
    #[must_use]
    pub fn sample_covariance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.cxy / (self.count - 1) as f64
        }
    }

    /// Pearson correlation coefficient `ρ̂ ∈ [−1, 1]`; 0 when undefined
    /// (fewer than two pairs, or either series constant).
    #[must_use]
    pub fn correlation(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let denom = (self.m2x * self.m2y).sqrt();
        if denom <= f64::EPSILON * self.count as f64 {
            return 0.0;
        }
        (self.cxy / denom).clamp(-1.0, 1.0)
    }

    /// Ordinary-least-squares slope of the regression of `y` on `x`
    /// (`b = s_xy / s_x²`); 0 when undefined.
    #[must_use]
    pub fn regression_slope(&self) -> f64 {
        if self.count < 2 || self.m2x <= f64::EPSILON * self.count as f64 {
            0.0
        } else {
            self.cxy / self.m2x
        }
    }

    /// OLS intercept of the regression of `y` on `x`.
    #[must_use]
    pub fn regression_intercept(&self) -> f64 {
        self.mean_y - self.regression_slope() * self.mean_x
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    fn naive_variance(xs: &[f64]) -> f64 {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n
    }

    #[test]
    fn empty_moments_are_zero() {
        let m = RunningMoments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.population_variance(), 0.0);
        assert_eq!(m.sample_variance(), 0.0);
        assert_eq!(m.standard_error(), 0.0);
    }

    #[test]
    fn single_observation() {
        let m = RunningMoments::from_slice(&[3.25]);
        assert_eq!(m.count(), 1);
        assert_eq!(m.mean(), 3.25);
        assert_eq!(m.population_variance(), 0.0);
        assert_eq!(m.sample_variance(), 0.0);
    }

    #[test]
    fn matches_naive_computation() {
        let xs = [1.0, 2.5, -3.0, 4.25, 10.0, -7.5, 0.0, 2.0];
        let m = RunningMoments::from_slice(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((m.mean() - mean).abs() < 1e-12);
        assert!((m.population_variance() - naive_variance(&xs)).abs() < 1e-12);
    }

    #[test]
    fn stable_for_large_offsets() {
        // Values clustered near 1e9 with tiny variance — catastrophic for
        // the naive sum-of-squares formula, fine for Welford.
        let base = 1.0e9;
        let xs: Vec<f64> = (0..1000).map(|i| base + (i % 7) as f64 * 0.001).collect();
        let m = RunningMoments::from_slice(&xs);
        let expected = naive_variance(&xs.iter().map(|x| x - base).collect::<Vec<_>>());
        assert!((m.population_variance() - expected).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let mut a = RunningMoments::from_slice(&xs[..3]);
        let b = RunningMoments::from_slice(&xs[3..]);
        a.merge(&b);
        let full = RunningMoments::from_slice(&xs);
        assert_eq!(a.count(), full.count());
        assert!((a.mean() - full.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - full.sample_variance()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs = [1.0, 2.0, 3.0];
        let mut a = RunningMoments::from_slice(&xs);
        a.merge(&RunningMoments::new());
        assert_eq!(a, RunningMoments::from_slice(&xs));

        let mut e = RunningMoments::new();
        e.merge(&RunningMoments::from_slice(&xs));
        assert_eq!(e, RunningMoments::from_slice(&xs));
    }

    #[test]
    fn paired_empty_is_zero() {
        let m = PairedMoments::new();
        assert_eq!(m.correlation(), 0.0);
        assert_eq!(m.regression_slope(), 0.0);
        assert_eq!(m.sample_covariance(), 0.0);
    }

    #[test]
    fn perfectly_correlated_pairs() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 2.0).collect();
        let m = PairedMoments::from_pairs(&xs, &ys);
        assert!((m.correlation() - 1.0).abs() < 1e-12);
        assert!((m.regression_slope() - 3.0).abs() < 1e-12);
        assert!((m.regression_intercept() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn anticorrelated_pairs() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -2.0 * x + 7.0).collect();
        let m = PairedMoments::from_pairs(&xs, &ys);
        assert!((m.correlation() + 1.0).abs() < 1e-12);
        assert!((m.regression_slope() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_has_zero_correlation() {
        let xs = [5.0; 10];
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let m = PairedMoments::from_pairs(&xs, &ys);
        assert_eq!(m.correlation(), 0.0);
        assert_eq!(m.regression_slope(), 0.0);
    }

    #[test]
    fn covariance_matches_naive() {
        let xs = [1.0, 2.0, 4.0, 8.0, 16.0];
        let ys = [2.0, 1.0, 5.0, 9.0, 11.0];
        let m = PairedMoments::from_pairs(&xs, &ys);
        let mx = xs.iter().sum::<f64>() / 5.0;
        let my = ys.iter().sum::<f64>() / 5.0;
        let cov = xs
            .iter()
            .zip(ys.iter())
            .map(|(x, y)| (x - mx) * (y - my))
            .sum::<f64>()
            / 4.0;
        assert!((m.sample_covariance() - cov).abs() < 1e-12);
    }

    #[test]
    fn correlation_is_clamped() {
        // Tiny numerical noise must never push |ρ̂| above 1.
        let xs = [1.0, 1.0 + 1e-15, 1.0 + 2e-15];
        let ys = [2.0, 2.0 + 1e-15, 2.0 + 2e-15];
        let m = PairedMoments::from_pairs(&xs, &ys);
        assert!(m.correlation().abs() <= 1.0);
    }
}
