//! Dense univariate polynomials and least-squares polynomial fitting.
//!
//! The extrapolation tier approximates the running aggregate `X[t]` by a
//! degree-`n` Taylor polynomial around the latest update time (paper Eq. 1).
//! Fitting is exposed in two flavours:
//!
//! * [`Polynomial::fit_least_squares`] — closed-form linear least squares
//!   via the (Cholesky-solved) normal equations on a centred/scaled basis.
//! * [`Polynomial::fit_levenberg_marquardt`] — the paper's prescribed
//!   Levenberg–Marquardt fit, seeded by the linear solution. For a
//!   polynomial model the two coincide at the optimum; LM adds robustness
//!   when callers supply weights or a contaminated basis.

use crate::error::StatsError;
use crate::linalg::Matrix;
use crate::lm::{LevenbergMarquardt, LmConfig, ResidualModel};
use crate::Result;

/// A polynomial `c₀ + c₁·x + c₂·x² + …` in the *centred* variable
/// `x = t − origin`.
///
/// Centring keeps the Vandermonde system well conditioned when `t` is a
/// large tick count, and makes the coefficients directly interpretable as
/// scaled derivatives at the origin — exactly the Taylor form of Eq. 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    origin: f64,
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from coefficients `c₀, c₁, …` around `origin`.
    ///
    /// # Errors
    ///
    /// [`StatsError::InsufficientData`] if `coeffs` is empty;
    /// [`StatsError::NonFiniteInput`] if any coefficient or the origin is
    /// not finite.
    pub fn new(origin: f64, coeffs: Vec<f64>) -> Result<Self> {
        if coeffs.is_empty() {
            return Err(StatsError::InsufficientData { got: 0, need: 1 });
        }
        if !origin.is_finite() || coeffs.iter().any(|c| !c.is_finite()) {
            return Err(StatsError::NonFiniteInput {
                what: "polynomial coefficients",
            });
        }
        Ok(Self { origin, coeffs })
    }

    /// The constant polynomial `c` around `origin`.
    #[must_use]
    pub fn constant(origin: f64, c: f64) -> Self {
        Self {
            origin,
            coeffs: vec![c],
        }
    }

    /// Degree (`len − 1`; the constant polynomial has degree 0).
    #[must_use]
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Centring origin.
    #[must_use]
    pub fn origin(&self) -> f64 {
        self.origin
    }

    /// Coefficients in the centred variable, lowest order first.
    #[must_use]
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// Evaluates the polynomial at absolute position `t` (Horner's rule).
    #[must_use]
    pub fn eval(&self, t: f64) -> f64 {
        let x = t - self.origin;
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// The derivative polynomial (same origin).
    #[must_use]
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() == 1 {
            return Polynomial::constant(self.origin, 0.0);
        }
        let coeffs = self
            .coeffs
            .iter()
            .enumerate()
            .skip(1)
            .map(|(k, &c)| c * k as f64)
            .collect();
        Polynomial {
            origin: self.origin,
            coeffs,
        }
    }

    /// The `k`-th derivative evaluated at the origin — i.e. `k! · c_k`,
    /// the Taylor-series derivative of Eq. 1.
    #[must_use]
    pub fn derivative_at_origin(&self, k: usize) -> f64 {
        match self.coeffs.get(k) {
            None => 0.0,
            Some(&c) => {
                let mut fact = 1.0;
                for i in 2..=k {
                    fact *= i as f64;
                }
                c * fact
            }
        }
    }

    /// Fits a degree-`degree` polynomial to `(ts, ys)` by linear least
    /// squares on the basis centred at `origin`.
    ///
    /// # Errors
    ///
    /// * [`StatsError::DimensionMismatch`] if `ts` and `ys` differ in length.
    /// * [`StatsError::InsufficientData`] if fewer than `degree + 1` points.
    /// * [`StatsError::NonFiniteInput`] on non-finite observations.
    /// * [`StatsError::SingularMatrix`] for degenerate abscissae (e.g. all
    ///   `ts` equal with `degree ≥ 1`).
    pub fn fit_least_squares(origin: f64, ts: &[f64], ys: &[f64], degree: usize) -> Result<Self> {
        if ts.len() != ys.len() {
            return Err(StatsError::DimensionMismatch {
                context: "fit: ts and ys must have equal length",
            });
        }
        let n_params = degree + 1;
        if ts.len() < n_params {
            return Err(StatsError::InsufficientData {
                got: ts.len(),
                need: n_params,
            });
        }
        if ts.iter().chain(ys.iter()).any(|v| !v.is_finite()) || !origin.is_finite() {
            return Err(StatsError::NonFiniteInput {
                what: "fit observations",
            });
        }

        // Scale the centred abscissa to ~[−1, 1] for conditioning.
        let scale = ts
            .iter()
            .map(|t| (t - origin).abs())
            .fold(0.0_f64, f64::max)
            .max(1.0);

        // Normal equations on the scaled basis.
        let mut ata = Matrix::zeros(n_params, n_params);
        let mut atb = vec![0.0; n_params];
        let mut basis = vec![0.0; n_params];
        for (&t, &y) in ts.iter().zip(ys.iter()) {
            let x = (t - origin) / scale;
            basis[0] = 1.0;
            for k in 1..n_params {
                basis[k] = basis[k - 1] * x;
            }
            for a in 0..n_params {
                atb[a] += basis[a] * y;
                for b in a..n_params {
                    ata[(a, b)] += basis[a] * basis[b];
                }
            }
        }
        for a in 0..n_params {
            for b in 0..a {
                ata[(a, b)] = ata[(b, a)];
            }
        }

        let scaled = ata.solve_spd(&atb).or_else(|_| ata.solve(&atb))?;
        // Undo the scaling: c_k = scaled_k / scale^k.
        let mut coeffs = scaled;
        let mut s = 1.0;
        for c in coeffs.iter_mut() {
            *c /= s;
            s *= scale;
        }
        Polynomial::new(origin, coeffs)
    }

    /// Fits a degree-`degree` polynomial by Levenberg–Marquardt, seeded
    /// with the linear least-squares solution (paper §IV-A).
    ///
    /// # Errors
    ///
    /// As for [`Polynomial::fit_least_squares`].
    pub fn fit_levenberg_marquardt(
        origin: f64,
        ts: &[f64],
        ys: &[f64],
        degree: usize,
    ) -> Result<Self> {
        let seed = Self::fit_least_squares(origin, ts, ys, degree)?;

        struct PolyModel<'a> {
            origin: f64,
            param_len: usize,
            ts: &'a [f64],
            ys: &'a [f64],
        }
        impl ResidualModel for PolyModel<'_> {
            fn residual_count(&self) -> usize {
                self.ts.len()
            }
            fn parameter_count(&self) -> usize {
                self.param_len
            }
            fn residuals(&self, p: &[f64], out: &mut [f64]) {
                for ((o, &t), &y) in out.iter_mut().zip(self.ts).zip(self.ys) {
                    let x = t - self.origin;
                    *o = p.iter().rev().fold(0.0, |acc, &c| acc * x + c) - y;
                }
            }
            fn jacobian(&self, _p: &[f64], jac: &mut [f64]) -> bool {
                let n = self.param_len;
                for (i, &t) in self.ts.iter().enumerate() {
                    let x = t - self.origin;
                    let mut pow = 1.0;
                    for j in 0..n {
                        jac[i * n + j] = pow;
                        pow *= x;
                    }
                }
                true
            }
        }

        let model = PolyModel {
            origin,
            param_len: degree + 1,
            ts,
            ys,
        };
        let lm = LevenbergMarquardt::new(LmConfig {
            max_iterations: 50,
            ..LmConfig::default()
        });
        let report = lm.fit(&model, seed.coefficients())?;
        Polynomial::new(origin, report.params)
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    #[test]
    fn eval_constant() {
        let p = Polynomial::constant(5.0, 3.0);
        assert_eq!(p.eval(0.0), 3.0);
        assert_eq!(p.eval(100.0), 3.0);
        assert_eq!(p.degree(), 0);
    }

    #[test]
    fn eval_centred_quadratic() {
        // p(t) = 1 + 2(t−10) + 3(t−10)².
        let p = Polynomial::new(10.0, vec![1.0, 2.0, 3.0]).unwrap();
        assert!((p.eval(10.0) - 1.0).abs() < 1e-12);
        assert!((p.eval(11.0) - 6.0).abs() < 1e-12);
        assert!((p.eval(9.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn derivative_chain() {
        let p = Polynomial::new(0.0, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let d = p.derivative();
        assert_eq!(d.coefficients(), &[2.0, 6.0, 12.0]);
        let dd = d.derivative();
        assert_eq!(dd.coefficients(), &[6.0, 24.0]);
        let ddd = dd.derivative().derivative();
        assert_eq!(ddd.coefficients(), &[0.0]);
    }

    #[test]
    fn derivative_at_origin_is_factorial_scaled() {
        let p = Polynomial::new(2.0, vec![5.0, 4.0, 3.0, 2.0]).unwrap();
        assert_eq!(p.derivative_at_origin(0), 5.0);
        assert_eq!(p.derivative_at_origin(1), 4.0);
        assert_eq!(p.derivative_at_origin(2), 6.0); // 2!·3
        assert_eq!(p.derivative_at_origin(3), 12.0); // 3!·2
        assert_eq!(p.derivative_at_origin(7), 0.0);
    }

    #[test]
    fn rejects_empty_and_non_finite() {
        assert!(Polynomial::new(0.0, vec![]).is_err());
        assert!(Polynomial::new(0.0, vec![f64::NAN]).is_err());
        assert!(Polynomial::new(f64::INFINITY, vec![1.0]).is_err());
    }

    #[test]
    fn least_squares_recovers_exact_polynomial() {
        let truth = Polynomial::new(100.0, vec![2.0, -1.5, 0.25]).unwrap();
        let ts: Vec<f64> = (95..=105).map(|t| t as f64).collect();
        let ys: Vec<f64> = ts.iter().map(|&t| truth.eval(t)).collect();
        let fit = Polynomial::fit_least_squares(100.0, &ts, &ys, 2).unwrap();
        for (&a, &b) in fit.coefficients().iter().zip(truth.coefficients()) {
            assert!((a - b).abs() < 1e-8, "fit {:?}", fit.coefficients());
        }
    }

    #[test]
    fn least_squares_with_exactly_enough_points_interpolates() {
        let ts = [0.0, 1.0, 2.0];
        let ys = [1.0, 3.0, 9.0];
        let fit = Polynomial::fit_least_squares(0.0, &ts, &ys, 2).unwrap();
        for (&t, &y) in ts.iter().zip(ys.iter()) {
            assert!((fit.eval(t) - y).abs() < 1e-9);
        }
    }

    #[test]
    fn least_squares_handles_large_tick_values() {
        // Ticks in the millions: the centred/scaled basis must stay stable.
        let origin = 3_000_000.0;
        let truth = Polynomial::new(origin, vec![50.0, 0.3, -0.01]).unwrap();
        let ts: Vec<f64> = (0..12).map(|i| origin - 11.0 + i as f64).collect();
        let ys: Vec<f64> = ts.iter().map(|&t| truth.eval(t)).collect();
        let fit = Polynomial::fit_least_squares(origin, &ts, &ys, 2).unwrap();
        for (&t, &y) in ts.iter().zip(ys.iter()) {
            assert!((fit.eval(t) - y).abs() < 1e-6);
        }
    }

    #[test]
    fn least_squares_degree_zero_is_mean() {
        let ts = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 3.0, 4.0];
        let fit = Polynomial::fit_least_squares(0.0, &ts, &ys, 0).unwrap();
        assert!((fit.coefficients()[0] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn least_squares_errors() {
        assert!(Polynomial::fit_least_squares(0.0, &[0.0, 1.0], &[0.0], 1).is_err());
        assert!(Polynomial::fit_least_squares(0.0, &[0.0], &[0.0], 1).is_err());
        assert!(Polynomial::fit_least_squares(0.0, &[0.0, f64::NAN], &[0.0, 1.0], 1).is_err());
        // Degenerate abscissae: all points at the same t with degree 1.
        assert!(Polynomial::fit_least_squares(0.0, &[1.0, 1.0, 1.0], &[0.0, 1.0, 2.0], 1).is_err());
    }

    #[test]
    fn lm_fit_matches_least_squares_on_noisy_data() {
        let ts: Vec<f64> = (0..20).map(|i| i as f64).collect();
        // Quadratic plus deterministic "noise".
        let ys: Vec<f64> = ts
            .iter()
            .map(|&t| 1.0 + 0.5 * t - 0.02 * t * t + 0.1 * (t * 0.7).sin())
            .collect();
        let ls = Polynomial::fit_least_squares(10.0, &ts, &ys, 2).unwrap();
        let lm = Polynomial::fit_levenberg_marquardt(10.0, &ts, &ys, 2).unwrap();
        for (&a, &b) in ls.coefficients().iter().zip(lm.coefficients()) {
            assert!(
                (a - b).abs() < 1e-6,
                "LS {:?} vs LM {:?}",
                ls.coefficients(),
                lm.coefficients()
            );
        }
    }
}
