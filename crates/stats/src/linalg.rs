//! Small dense linear algebra for the least-squares fitters.
//!
//! The matrices here are tiny (a Taylor fit of degree 3 solves a 4×4
//! system), so the implementation favours clarity and robustness over
//! blocking/SIMD tricks: row-major storage, LU with partial pivoting, and
//! Cholesky for the symmetric positive-definite normal equations.

use crate::error::StatsError;
use crate::Result;

/// A row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major vector.
    ///
    /// # Errors
    ///
    /// [`StatsError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(StatsError::DimensionMismatch {
                context: "from_rows: data length must equal rows * cols",
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the underlying row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self · other`.
    ///
    /// # Errors
    ///
    /// [`StatsError::DimensionMismatch`] if the inner dimensions differ.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(StatsError::DimensionMismatch {
                context: "matmul: self.cols must equal other.rows",
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                // Sparsity skip: exact zeros (either sign) contribute
                // nothing to the row.
                if a.classify() == std::num::FpCategory::Zero {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Errors
    ///
    /// [`StatsError::DimensionMismatch`] if `v.len() != self.cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(StatsError::DimensionMismatch {
                context: "matvec: vector length must equal cols",
            });
        }
        let out = self
            .data
            .chunks_exact(self.cols)
            .map(|row| row.iter().zip(v.iter()).map(|(a, b)| a * b).sum())
            .collect();
        Ok(out)
    }

    /// Solves `A x = b` by LU factorisation with partial pivoting.
    ///
    /// # Errors
    ///
    /// * [`StatsError::DimensionMismatch`] if `A` is not square or `b` has
    ///   the wrong length.
    /// * [`StatsError::SingularMatrix`] if a pivot is numerically zero.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.rows;
        if self.cols != n {
            return Err(StatsError::DimensionMismatch {
                context: "solve: matrix must be square",
            });
        }
        if b.len() != n {
            return Err(StatsError::DimensionMismatch {
                context: "solve: rhs length must equal matrix dimension",
            });
        }

        // Work on copies; the matrix is small.
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();

        for col in 0..n {
            // Partial pivot: largest |a| in this column at or below the diagonal.
            let mut pivot_row = col;
            let mut pivot_val = a[perm[col] * n + col].abs();
            for (r, &pr) in perm.iter().enumerate().skip(col + 1) {
                let v = a[pr * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 {
                return Err(StatsError::SingularMatrix);
            }
            perm.swap(col, pivot_row);

            let prow = perm[col];
            let pivot = a[prow * n + col];
            for &r in &perm[col + 1..] {
                let factor = a[r * n + col] / pivot;
                if factor.classify() == std::num::FpCategory::Zero {
                    continue;
                }
                a[r * n + col] = 0.0;
                for j in col + 1..n {
                    a[r * n + j] -= factor * a[prow * n + j];
                }
                x[r] -= factor * x[prow];
            }
        }

        // Back substitution through the permutation.
        let mut out = vec![0.0; n];
        for col in (0..n).rev() {
            let prow = perm[col];
            let mut sum = x[prow];
            for j in col + 1..n {
                sum -= a[prow * n + j] * out[j];
            }
            let diag = a[prow * n + col];
            if diag.abs() < 1e-300 {
                return Err(StatsError::SingularMatrix);
            }
            out[col] = sum / diag;
        }
        Ok(out)
    }

    /// Solves `A x = b` for symmetric positive-definite `A` by Cholesky
    /// factorisation (`A = L Lᵀ`). Used for normal equations `JᵀJ + λ diag`.
    ///
    /// # Errors
    ///
    /// * [`StatsError::DimensionMismatch`] as for [`Matrix::solve`].
    /// * [`StatsError::SingularMatrix`] if `A` is not positive definite to
    ///   working precision.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.rows;
        if self.cols != n {
            return Err(StatsError::DimensionMismatch {
                context: "solve_spd: matrix must be square",
            });
        }
        if b.len() != n {
            return Err(StatsError::DimensionMismatch {
                context: "solve_spd: rhs length must equal matrix dimension",
            });
        }

        // Cholesky: l[i][j] for j <= i, row-major lower triangle.
        let mut l = vec![0.0_f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(StatsError::SingularMatrix);
                    }
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }

        // Forward solve L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l[i * n + k] * y[k];
            }
            y[i] = sum / l[i * n + i];
        }
        // Back solve Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= l[k * n + i] * x[k];
            }
            x[i] = sum / l[i * n + i];
        }
        Ok(x)
    }

    /// Largest absolute eigenvalue estimated by power iteration, for
    /// spectral diagnostics of small transition matrices.
    ///
    /// Returns `None` when the iteration fails to grow a direction (e.g.
    /// the zero matrix).
    #[must_use]
    pub fn spectral_radius(&self, iterations: usize) -> Option<f64> {
        if self.rows != self.cols || self.rows == 0 {
            return None;
        }
        let n = self.rows;
        let mut v = vec![1.0 / (n as f64).sqrt(); n];
        let mut lambda = 0.0;
        for _ in 0..iterations {
            let w = self.matvec(&v).ok()?;
            let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm < 1e-300 {
                return None;
            }
            lambda = norm;
            for (vi, wi) in v.iter_mut().zip(w.iter()) {
                *vi = wi / norm;
            }
        }
        Some(lambda)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_is_identity() {
        let a = Matrix::identity(4);
        let b = [1.0, 2.0, 3.0, 4.0];
        let x = a.solve(&b).unwrap();
        for (xi, bi) in x.iter().zip(b.iter()) {
            assert!((xi - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_known_system() {
        // [2 1; 1 3] x = [3; 5] → x = [4/5, 7/5].
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal: naive elimination would divide by zero.
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_detects_singularity() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert_eq!(
            a.solve(&[1.0, 2.0]).unwrap_err(),
            StatsError::SingularMatrix
        );
    }

    #[test]
    fn solve_random_round_trip() {
        // A·x = b then solve must return x; deterministic pseudo-random fill.
        let n = 6;
        let mut seed = 0x9e37_79b9_u64;
        let mut next = || {
            seed = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += 4.0; // diagonal dominance → well-conditioned
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 2.5).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        for (got, want) in x.iter().zip(x_true.iter()) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn spd_solve_matches_lu() {
        let a = Matrix::from_rows(3, 3, vec![4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 2.0]).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x1 = a.solve(&b).unwrap();
        let x2 = a.solve_spd(&b).unwrap();
        for (u, v) in x1.iter().zip(x2.iter()) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn spd_rejects_indefinite() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert_eq!(
            a.solve_spd(&[1.0, 1.0]).unwrap_err(),
            StatsError::SingularMatrix
        );
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let at = a.transpose();
        assert_eq!(at.rows(), 3);
        assert_eq!(at.cols(), 2);
        let ata = at.matmul(&a).unwrap();
        assert_eq!(ata.rows(), 3);
        // (AᵀA)[0][0] = 1 + 16 = 17.
        assert!((ata[(0, 0)] - 17.0).abs() < 1e-12);
        // Symmetry.
        for i in 0..3 {
            for j in 0..3 {
                assert!((ata[(i, j)] - ata[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = a.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn spectral_radius_of_diagonal() {
        let a = Matrix::from_rows(2, 2, vec![3.0, 0.0, 0.0, 1.0]).unwrap();
        let r = a.spectral_radius(200).unwrap();
        assert!((r - 3.0).abs() < 1e-6);
    }

    #[test]
    fn spectral_radius_of_stochastic_matrix_is_one() {
        // Row-stochastic matrices have spectral radius 1.
        let a =
            Matrix::from_rows(3, 3, vec![0.5, 0.25, 0.25, 0.1, 0.8, 0.1, 0.3, 0.3, 0.4]).unwrap();
        let r = a.spectral_radius(500).unwrap();
        assert!((r - 1.0).abs() < 1e-6, "spectral radius = {r}");
    }

    #[test]
    fn from_rows_validates_length() {
        assert!(Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0]).is_err());
    }
}
