//! Taylor-polynomial extrapolation of the running aggregate (paper §IV-A).
//!
//! The continual-querying algorithm `PRED-k` keeps the `k` most recent
//! snapshot results `X[t]`, fits a degree-`(k−1)` Taylor polynomial `P[t]`
//! around the latest update time `t_u` (Levenberg–Marquardt, Eq. 1), bounds
//! the truncation error with the Lagrange remainder (Eqs. 2–3)
//!
//! ```text
//! R_n[t] = M · (t − t_u)^{n+1} / (n+1)!
//! ```
//!
//! and schedules the next snapshot at the earliest `t` where the predicted
//! drift *plus* the remainder bound can reach the resolution threshold:
//!
//! ```text
//! |P[t] − P[t_u]| + |R[t]| ≥ δ        (Eq. 4)
//! ```
//!
//! The derivative bound `M ≥ max |X^{(n+1)}|` is unobservable; it is
//! estimated from order-`(n+1)` divided differences of the recent history
//! (each equals `X^{(n+1)}(ξ)/(n+1)!` for some ξ by the mean-value theorem)
//! inflated by a configurable safety factor. While too few history points
//! exist to form the estimate — the paper's *bootstrapping period* — the
//! extrapolator degenerates to continuous querying (`next_update_in = 1`).

use crate::error::StatsError;
use crate::poly::Polynomial;
use crate::Result;
use std::collections::VecDeque;

/// Configuration of the `PRED-k` extrapolator.
#[derive(Debug, Clone, Copy)]
pub struct ExtrapolatorConfig {
    /// `k`: number of previous snapshot values used for prediction. The
    /// fitted polynomial has degree `k − 1`. The paper evaluates
    /// `PRED-1 … PRED-4`.
    pub history: usize,
    /// Hard cap, in ticks, on how far ahead a snapshot may be scheduled.
    /// Bounds both the scan cost and the damage of a mis-prediction.
    pub max_horizon: u64,
    /// Multiplier (≥ 1) applied to the estimated derivative bound `M`.
    /// Larger values are more conservative: earlier re-snapshots, fewer
    /// resolution violations.
    pub remainder_safety: f64,
    /// How many history points beyond `k` to retain for estimating `M`
    /// (at least 2 extra points are needed for one order-`k` divided
    /// difference).
    pub extra_history: usize,
}

impl Default for ExtrapolatorConfig {
    fn default() -> Self {
        Self {
            history: 3,
            max_horizon: 64,
            remainder_safety: 1.5,
            extra_history: 4,
        }
    }
}

impl ExtrapolatorConfig {
    /// The paper's `PRED-k` with default safety settings.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn pred(k: usize) -> Self {
        assert!(k >= 1, "PRED-k requires k >= 1");
        Self {
            history: k,
            ..Self::default()
        }
    }
}

/// Outcome of one extrapolation: when to run the next snapshot query and
/// the diagnostic state behind the decision.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Ticks until the next snapshot query (always ≥ 1).
    pub next_update_in: u64,
    /// The fitted Taylor polynomial, when the extrapolator was past the
    /// bootstrapping period (`None` while bootstrapping).
    pub polynomial: Option<Polynomial>,
    /// The derivative bound `M` used in the Lagrange remainder.
    pub derivative_bound: f64,
    /// True while the extrapolator is still bootstrapping (too little
    /// history → continuous querying).
    pub bootstrapping: bool,
}

/// `PRED-k` extrapolation state: a sliding window of recent snapshot
/// results and the machinery to fit + extrapolate them.
///
/// ```
/// use digest_stats::{Extrapolator, ExtrapolatorConfig};
/// let mut pred3 = Extrapolator::new(ExtrapolatorConfig::pred(3)).unwrap();
/// // A steady aggregate: after bootstrap, the scheduler can skip far ahead.
/// for t in 0..6 {
///     pred3.observe(t as f64, 42.0);
/// }
/// let p = pred3.predict(5.0).unwrap();
/// assert!(!p.bootstrapping);
/// assert!(p.next_update_in > 5);
/// ```
#[derive(Debug, Clone)]
pub struct Extrapolator {
    config: ExtrapolatorConfig,
    /// Recent `(t, X̂[t])` observations, oldest first.
    window: VecDeque<(f64, f64)>,
}

impl Extrapolator {
    /// Creates an extrapolator.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] if `history == 0`,
    /// `max_horizon == 0`, or `remainder_safety < 1`.
    pub fn new(config: ExtrapolatorConfig) -> Result<Self> {
        if config.history == 0 {
            return Err(StatsError::InvalidParameter {
                what: "history",
                value: 0.0,
            });
        }
        if config.max_horizon == 0 {
            return Err(StatsError::InvalidParameter {
                what: "max_horizon",
                value: 0.0,
            });
        }
        if config.remainder_safety.is_nan() || config.remainder_safety < 1.0 {
            return Err(StatsError::InvalidParameter {
                what: "remainder_safety",
                value: config.remainder_safety,
            });
        }
        Ok(Self {
            config,
            window: VecDeque::new(),
        })
    }

    /// The configuration this extrapolator runs with.
    #[must_use]
    pub fn config(&self) -> &ExtrapolatorConfig {
        &self.config
    }

    /// Records the snapshot result `x` observed at time `t`.
    ///
    /// Observations must arrive in strictly increasing time order; an
    /// out-of-order observation is ignored (the engine never produces one,
    /// but replayed traces might).
    pub fn observe(&mut self, t: f64, x: f64) {
        if let Some(&(last_t, _)) = self.window.back() {
            if t <= last_t {
                return;
            }
        }
        if !t.is_finite() || !x.is_finite() {
            return;
        }
        let cap = self.config.history + self.config.extra_history;
        if self.window.len() == cap {
            self.window.pop_front();
        }
        self.window.push_back((t, x));
    }

    /// Number of observations currently held.
    #[must_use]
    pub fn observation_count(&self) -> usize {
        self.window.len()
    }

    /// Whether enough history exists to leave the bootstrapping period:
    /// `k` points for the fit plus one extra point so an order-`k`
    /// divided difference (the remainder bound) can be formed.
    #[must_use]
    pub fn is_ready(&self) -> bool {
        self.window.len() > self.config.history
    }

    /// Clears all history (used when the engine detects a regime change,
    /// e.g. a resolution violation caught by a scheduled snapshot).
    pub fn reset(&mut self) {
        self.window.clear();
    }

    /// Predicts how many ticks may safely elapse before the aggregate can
    /// have drifted by `delta` from its value at the most recent snapshot
    /// (Eq. 4). Returns a bootstrap prediction (`next_update_in = 1`)
    /// until [`Extrapolator::is_ready`].
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] if `delta` is not positive and
    /// finite.
    pub fn predict(&self, delta: f64) -> Result<Prediction> {
        if !delta.is_finite() || delta <= 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "delta",
                value: delta,
            });
        }
        digest_telemetry::registry::STATS_PRED_PREDICTIONS.inc();
        if !self.is_ready() {
            digest_telemetry::registry::STATS_PRED_BOOTSTRAPS.inc();
            return Ok(Prediction {
                next_update_in: 1,
                polynomial: None,
                derivative_bound: f64::INFINITY,
                bootstrapping: true,
            });
        }

        let k = self.config.history;
        let degree = k - 1;
        let (ts, ys): (Vec<f64>, Vec<f64>) =
            self.window.iter().rev().take(k).rev().copied().unzip();
        // `is_ready()` above guarantees a full window.
        let Some(&t_u) = ts.last() else {
            digest_telemetry::registry::STATS_PRED_BOOTSTRAPS.inc();
            return Ok(Prediction {
                next_update_in: 1,
                polynomial: None,
                derivative_bound: f64::INFINITY,
                bootstrapping: true,
            });
        };

        let poly = Polynomial::fit_levenberg_marquardt(t_u, &ts, &ys, degree)
            .or_else(|_| Polynomial::fit_least_squares(t_u, &ts, &ys, degree))?;

        // Estimate M = bound on |X^(degree+1)| from divided differences of
        // order degree+1 over the full retained window.
        let m = self.derivative_bound(degree + 1) * self.config.remainder_safety;

        let p_at_tu = poly.eval(t_u);
        let mut factorial = 1.0;
        for i in 2..=(degree + 1) {
            factorial *= i as f64;
        }

        let order = i32::try_from(degree + 1).unwrap_or(i32::MAX);
        let mut steps = 1u64;
        while steps < self.config.max_horizon {
            let t = t_u + steps as f64;
            let drift = (poly.eval(t) - p_at_tu).abs();
            let h = steps as f64;
            let remainder = m * h.powi(order) / factorial;
            if drift + remainder >= delta {
                break;
            }
            steps += 1;
        }

        Ok(Prediction {
            next_update_in: steps,
            polynomial: Some(poly),
            derivative_bound: m,
            bootstrapping: false,
        })
    }

    /// Maximum absolute order-`order` derivative implied by the retained
    /// history, via divided differences:
    /// `f[t_i, …, t_{i+order}] = f^{(order)}(ξ) / order!`.
    fn derivative_bound(&self, order: usize) -> f64 {
        let pts: Vec<(f64, f64)> = self.window.iter().copied().collect();
        if pts.len() < order + 1 {
            return 0.0;
        }
        let mut factorial = 1.0;
        for i in 2..=order {
            factorial *= i as f64;
        }

        // All contiguous windows of order+1 points.
        let mut estimates: Vec<f64> = (0..=(pts.len() - (order + 1)))
            .map(|start| {
                let w = &pts[start..start + order + 1];
                (divided_difference(w) * factorial).abs()
            })
            .collect();
        // Upper-quartile rather than max: snapshot results carry sampling
        // noise, and high-order divided differences amplify it by ~2^order;
        // the max would make deep PRED-k pathologically conservative. The
        // remainder_safety factor supplies the conservatism instead.
        estimates.sort_by(f64::total_cmp);
        let idx = (estimates.len() * 3).div_ceil(4).saturating_sub(1);
        estimates[idx]
    }
}

/// Newton divided difference `f[t_0, …, t_n]` over the given points.
fn divided_difference(points: &[(f64, f64)]) -> f64 {
    let n = points.len();
    let mut table: Vec<f64> = points.iter().map(|&(_, y)| y).collect();
    for level in 1..n {
        for i in 0..(n - level) {
            let dt = points[i + level].0 - points[i].0;
            table[i] = (table[i + 1] - table[i]) / dt;
        }
    }
    table[0]
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    fn extrapolator(k: usize) -> Extrapolator {
        Extrapolator::new(ExtrapolatorConfig::pred(k)).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(Extrapolator::new(ExtrapolatorConfig {
            history: 0,
            ..Default::default()
        })
        .is_err());
        assert!(Extrapolator::new(ExtrapolatorConfig {
            max_horizon: 0,
            ..Default::default()
        })
        .is_err());
        assert!(Extrapolator::new(ExtrapolatorConfig {
            remainder_safety: 0.5,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn bootstraps_with_continuous_querying() {
        let mut e = extrapolator(3);
        for t in 0..3 {
            let p = e.predict(1.0).unwrap();
            assert!(p.bootstrapping);
            assert_eq!(p.next_update_in, 1);
            e.observe(t as f64, 5.0);
        }
        // After k+1 = 4 observations the extrapolator leaves bootstrap.
        e.observe(3.0, 5.0);
        assert!(e.is_ready());
        assert!(!e.predict(1.0).unwrap().bootstrapping);
    }

    #[test]
    fn constant_signal_schedules_far_ahead() {
        let mut e = extrapolator(3);
        for t in 0..8 {
            e.observe(t as f64, 42.0);
        }
        let p = e.predict(1.0).unwrap();
        // Zero drift, zero curvature → hit the horizon cap.
        assert_eq!(p.next_update_in, e.config().max_horizon);
        assert_eq!(p.derivative_bound, 0.0);
    }

    #[test]
    fn linear_signal_predicts_crossing_time() {
        // X[t] = 2t: drift reaches δ=10 after 5 ticks. A degree-0 remainder
        // correction may pull it slightly earlier but never later.
        let mut e = extrapolator(2); // degree-1 fit
        for t in 0..8 {
            e.observe(t as f64, 2.0 * t as f64);
        }
        let p = e.predict(10.0).unwrap();
        assert!(p.next_update_in <= 5, "predicted {}", p.next_update_in);
        assert!(
            p.next_update_in >= 3,
            "overly conservative: {}",
            p.next_update_in
        );
    }

    #[test]
    fn steeper_signal_means_sooner_snapshot() {
        let mut slow = extrapolator(3);
        let mut fast = extrapolator(3);
        for t in 0..8 {
            slow.observe(t as f64, 0.5 * t as f64);
            fast.observe(t as f64, 4.0 * t as f64);
        }
        let ps = slow.predict(8.0).unwrap().next_update_in;
        let pf = fast.predict(8.0).unwrap().next_update_in;
        assert!(pf < ps, "fast {pf} should snapshot sooner than slow {ps}");
    }

    #[test]
    fn larger_delta_means_later_snapshot() {
        let mut e = extrapolator(3);
        for t in 0..8 {
            e.observe(t as f64, 1.5 * t as f64);
        }
        let tight = e.predict(2.0).unwrap().next_update_in;
        let loose = e.predict(20.0).unwrap().next_update_in;
        assert!(loose >= tight);
    }

    #[test]
    fn quadratic_signal_accounts_for_curvature() {
        // X[t] = t²; at t_u = 7 the drift grows fast.
        let mut e = extrapolator(3);
        for t in 0..8 {
            e.observe(t as f64, (t * t) as f64);
        }
        let p = e.predict(40.0).unwrap();
        // True crossing: |X[7+h] − X[7]| = 14h + h² ≥ 40 → h ≈ 2.5.
        assert!(p.next_update_in <= 3, "predicted {}", p.next_update_in);
        assert!(p.next_update_in >= 1);
    }

    #[test]
    fn out_of_order_observations_ignored() {
        let mut e = extrapolator(2);
        e.observe(5.0, 1.0);
        e.observe(3.0, 2.0); // ignored
        e.observe(5.0, 9.0); // ignored (duplicate time)
        assert_eq!(e.observation_count(), 1);
    }

    #[test]
    fn non_finite_observations_ignored() {
        let mut e = extrapolator(2);
        e.observe(0.0, f64::NAN);
        e.observe(1.0, f64::INFINITY);
        assert_eq!(e.observation_count(), 0);
    }

    #[test]
    fn window_is_bounded() {
        let mut e = extrapolator(3);
        for t in 0..1000 {
            e.observe(t as f64, t as f64);
        }
        let cap = e.config().history + e.config().extra_history;
        assert_eq!(e.observation_count(), cap);
    }

    #[test]
    fn reset_returns_to_bootstrap() {
        let mut e = extrapolator(2);
        for t in 0..6 {
            e.observe(t as f64, t as f64);
        }
        assert!(e.is_ready());
        e.reset();
        assert!(!e.is_ready());
        assert!(e.predict(1.0).unwrap().bootstrapping);
    }

    #[test]
    fn predict_validates_delta() {
        let e = extrapolator(2);
        assert!(e.predict(0.0).is_err());
        assert!(e.predict(-1.0).is_err());
        assert!(e.predict(f64::NAN).is_err());
    }

    #[test]
    fn divided_difference_of_polynomial_is_leading_coefficient() {
        // f(t) = 3t² → f[t0,t1,t2] = 3 for any nodes.
        let pts = [(0.0, 0.0), (1.0, 3.0), (4.0, 48.0)];
        assert!((divided_difference(&pts) - 3.0).abs() < 1e-12);
        // Order-3 divided difference of a quadratic is 0.
        let pts4 = [(0.0, 0.0), (1.0, 3.0), (2.0, 12.0), (5.0, 75.0)];
        assert!(divided_difference(&pts4).abs() < 1e-12);
    }

    #[test]
    fn pred1_degenerates_gracefully() {
        // PRED-1 fits a constant; any real drift shows up only through the
        // remainder term (order-1 divided differences = slope estimates).
        let mut e = extrapolator(1);
        for t in 0..6 {
            e.observe(t as f64, 3.0 * t as f64);
        }
        let p = e.predict(9.0).unwrap();
        // slope bound ≈ 3 (×1.5 safety) → crossing within ~2-3 ticks.
        assert!(p.next_update_in <= 3, "predicted {}", p.next_update_in);
    }
}
