//! Simple linear regression between paired observations.
//!
//! Repeated sampling (paper §IV-B2) regresses a retained tuple's value at
//! the current sampling occasion on its value at the previous occasion.
//! This module wraps the paired-moment accumulator into the regression
//! estimator used there, with prediction and residual-variance queries.

use crate::error::StatsError;
use crate::moments::PairedMoments;
use crate::Result;

/// Ordinary-least-squares simple linear regression `y ≈ a + b·x`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimpleLinearRegression {
    moments: PairedMoments,
}

impl SimpleLinearRegression {
    /// Creates an empty regression.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a regression from paired slices.
    ///
    /// # Errors
    ///
    /// [`StatsError::DimensionMismatch`] if the slices differ in length;
    /// [`StatsError::InsufficientData`] if fewer than two pairs.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self> {
        if xs.len() != ys.len() {
            return Err(StatsError::DimensionMismatch {
                context: "regression: xs and ys must have equal length",
            });
        }
        if xs.len() < 2 {
            return Err(StatsError::InsufficientData {
                got: xs.len(),
                need: 2,
            });
        }
        let mut r = Self::new();
        for (&x, &y) in xs.iter().zip(ys.iter()) {
            r.push(x, y);
        }
        Ok(r)
    }

    /// Adds one paired observation.
    pub fn push(&mut self, x: f64, y: f64) {
        self.moments.push(x, y);
    }

    /// Number of pairs.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.moments.count()
    }

    /// Slope `b = s_xy / s_x²` (the paper's regression coefficient `b`).
    #[must_use]
    pub fn slope(&self) -> f64 {
        self.moments.regression_slope()
    }

    /// Intercept `a = ȳ − b·x̄`.
    #[must_use]
    pub fn intercept(&self) -> f64 {
        self.moments.regression_intercept()
    }

    /// Pearson correlation `ρ̂` between the two series.
    #[must_use]
    pub fn correlation(&self) -> f64 {
        self.moments.correlation()
    }

    /// Coefficient of determination `R² = ρ̂²`.
    #[must_use]
    pub fn r_squared(&self) -> f64 {
        let r = self.correlation();
        r * r
    }

    /// Predicted `ŷ` at `x`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept() + self.slope() * x
    }

    /// Residual variance `s_y² (1 − ρ̂²)` — the variance left after
    /// conditioning on the auxiliary variate, which is exactly the factor
    /// that makes regression estimation cheaper than fresh sampling.
    #[must_use]
    pub fn residual_variance(&self) -> f64 {
        self.moments.sample_variance_y() * (1.0 - self.r_squared())
    }

    /// Access to the underlying paired moments.
    #[must_use]
    pub fn moments(&self) -> &PairedMoments {
        &self.moments
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.25 * x - 3.0).collect();
        let r = SimpleLinearRegression::fit(&xs, &ys).unwrap();
        assert!((r.slope() - 1.25).abs() < 1e-12);
        assert!((r.intercept() + 3.0).abs() < 1e-9);
        assert!((r.r_squared() - 1.0).abs() < 1e-12);
        assert!(r.residual_variance() < 1e-9);
        assert!((r.predict(40.0) - 47.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_attenuates_r_squared() {
        // Deterministic triangle "noise" with zero mean.
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + if i % 2 == 0 { 5.0 } else { -5.0 })
            .collect();
        let r = SimpleLinearRegression::fit(&xs, &ys).unwrap();
        assert!((r.slope() - 2.0).abs() < 0.01);
        assert!(r.r_squared() < 1.0);
        assert!(r.r_squared() > 0.9);
        assert!(r.residual_variance() > 0.0);
    }

    #[test]
    fn fit_validates_inputs() {
        assert!(SimpleLinearRegression::fit(&[1.0], &[1.0]).is_err());
        assert!(SimpleLinearRegression::fit(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn streaming_matches_batch() {
        let xs = [1.0, 2.0, 3.0, 5.0, 8.0];
        let ys = [2.0, 3.5, 7.0, 9.0, 15.0];
        let batch = SimpleLinearRegression::fit(&xs, &ys).unwrap();
        let mut stream = SimpleLinearRegression::new();
        for (&x, &y) in xs.iter().zip(ys.iter()) {
            stream.push(x, y);
        }
        assert!((batch.slope() - stream.slope()).abs() < 1e-12);
        assert!((batch.intercept() - stream.intercept()).abs() < 1e-12);
    }

    #[test]
    fn constant_x_yields_zero_slope() {
        let r = SimpleLinearRegression::fit(&[2.0, 2.0, 2.0], &[1.0, 5.0, 9.0]).unwrap();
        assert_eq!(r.slope(), 0.0);
        // Prediction falls back to the mean of y.
        assert!((r.predict(2.0) - 5.0).abs() < 1e-12);
    }
}
