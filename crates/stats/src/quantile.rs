//! Quantile estimation with distribution-free confidence intervals.
//!
//! Means are not the only aggregate a sampling system can certify: for
//! any quantile `q`, the order statistics of an i.i.d. sample bracket the
//! population quantile with known (binomial) probability, *without any
//! distributional assumption*. If `Y_(1) ≤ … ≤ Y_(n)` is the sorted
//! sample, then
//!
//! ```text
//! Pr( Y_(r) ≤ Q_q ≤ Y_(s) ) ≥ p   for   r = ⌊nq − z√(nq(1−q))⌋,
//!                                        s = ⌈nq + z√(nq(1−q))⌉
//! ```
//!
//! (normal approximation to the binomial; `z = Φ⁻¹((1+p)/2)`). The query
//! engine draws samples until the bracket `[Y_(r), Y_(s)]` is narrower
//! than the query's `ε` — a *value-adaptive* stopping rule that needs no
//! density estimate.

use crate::error::StatsError;
use crate::normal::z_for_confidence;
use crate::Result;

/// A distribution-free confidence interval for a population quantile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileInterval {
    /// Point estimate (interpolated sample quantile).
    pub estimate: f64,
    /// Lower confidence bound (an order statistic).
    pub lower: f64,
    /// Upper confidence bound (an order statistic).
    pub upper: f64,
}

impl QuantileInterval {
    /// Interval width `upper − lower`.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// The interpolated sample quantile (type R-7, the common default) of a
/// **sorted** slice.
///
/// # Errors
///
/// * [`StatsError::InsufficientData`] for an empty slice.
/// * [`StatsError::InvalidProbability`] unless `0 ≤ q ≤ 1`.
pub fn sample_quantile(sorted: &[f64], q: f64) -> Result<f64> {
    if sorted.is_empty() {
        return Err(StatsError::InsufficientData { got: 0, need: 1 });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidProbability {
            value: q,
            expected: "[0, 1]",
        });
    }
    let h = (sorted.len() - 1) as f64 * q;
    let lo = crate::f64_to_usize_saturating(h.floor()).min(sorted.len() - 1);
    let hi = crate::f64_to_usize_saturating(h.ceil()).min(sorted.len() - 1);
    let frac = h - lo as f64;
    Ok(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

/// Distribution-free confidence interval for the population `q`-quantile
/// from a **sorted** i.i.d. sample, at two-sided confidence `p`.
///
/// When the sample is too small for the bracket to fit (the binomial
/// bound exceeds the sample), the interval degrades to the full sample
/// range — still a valid (if loose) bracket.
///
/// # Errors
///
/// * [`StatsError::InsufficientData`] for an empty slice.
/// * [`StatsError::InvalidProbability`] for `q ∉ [0,1]` or `p ∉ (0,1)`.
pub fn quantile_interval(sorted: &[f64], q: f64, confidence: f64) -> Result<QuantileInterval> {
    let estimate = sample_quantile(sorted, q)?;
    let z = z_for_confidence(confidence)?;
    let n = sorted.len() as f64;
    let spread = z * (n * q * (1.0 - q)).sqrt();
    let r = (n * q - spread).floor();
    let s = (n * q + spread).ceil();
    let lower_idx = if r < 1.0 {
        0
    } else {
        (crate::f64_to_usize_saturating(r) - 1).min(sorted.len() - 1)
    };
    let upper_idx = if s >= n {
        sorted.len() - 1
    } else {
        crate::f64_to_usize_saturating(s)
    };
    Ok(QuantileInterval {
        estimate,
        lower: sorted[lower_idx],
        upper: sorted[upper_idx],
    })
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_data() {
        let xs: Vec<f64> = (1..=9).map(f64::from).collect(); // 1..9
        assert_eq!(sample_quantile(&xs, 0.5).unwrap(), 5.0);
        assert_eq!(sample_quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(sample_quantile(&xs, 1.0).unwrap(), 9.0);
        assert_eq!(sample_quantile(&xs, 0.25).unwrap(), 3.0);
        // Interpolation between order statistics.
        let xs = [1.0, 2.0];
        assert_eq!(sample_quantile(&xs, 0.5).unwrap(), 1.5);
    }

    #[test]
    fn quantile_validates() {
        assert!(sample_quantile(&[], 0.5).is_err());
        assert!(sample_quantile(&[1.0], -0.1).is_err());
        assert!(sample_quantile(&[1.0], 1.1).is_err());
        assert!(quantile_interval(&[], 0.5, 0.95).is_err());
        assert!(quantile_interval(&[1.0], 0.5, 1.5).is_err());
    }

    #[test]
    fn interval_brackets_the_estimate_and_shrinks_with_n() {
        let make = |n: usize| -> Vec<f64> { (0..n).map(|i| i as f64 / n as f64).collect() };
        let small = quantile_interval(&make(50), 0.5, 0.95).unwrap();
        let large = quantile_interval(&make(5_000), 0.5, 0.95).unwrap();
        assert!(small.lower <= small.estimate && small.estimate <= small.upper);
        assert!(large.lower <= large.estimate && large.estimate <= large.upper);
        assert!(
            large.width() < small.width() / 3.0,
            "interval must shrink: {} vs {}",
            large.width(),
            small.width()
        );
    }

    #[test]
    fn coverage_is_at_least_nominal() {
        // Monte-Carlo: true median of Uniform(0,1) is 0.5; the 95 %
        // interval must cover it ≈ 95 % of the time.
        let mut seed = 7u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        let trials = 600;
        let mut covered = 0;
        for _ in 0..trials {
            let mut xs: Vec<f64> = (0..101).map(|_| next()).collect();
            xs.sort_by(f64::total_cmp);
            let ci = quantile_interval(&xs, 0.5, 0.95).unwrap();
            if ci.lower <= 0.5 && 0.5 <= ci.upper {
                covered += 1;
            }
        }
        let rate = f64::from(covered) / f64::from(trials);
        assert!(rate > 0.92, "coverage {rate}");
    }

    #[test]
    fn tiny_samples_fall_back_to_the_range() {
        let xs = [1.0, 2.0, 3.0];
        let ci = quantile_interval(&xs, 0.5, 0.99).unwrap();
        assert_eq!(ci.lower, 1.0);
        assert_eq!(ci.upper, 3.0);
    }

    #[test]
    fn extreme_quantiles_stay_in_bounds() {
        let xs: Vec<f64> = (0..100).map(f64::from).collect();
        for q in [0.01, 0.99] {
            let ci = quantile_interval(&xs, q, 0.95).unwrap();
            assert!(ci.lower >= xs[0] && ci.upper <= xs[99]);
            assert!(ci.lower <= ci.estimate && ci.estimate <= ci.upper);
        }
    }
}
