//! Levenberg–Marquardt damped least squares.
//!
//! The paper prescribes "the well-known Levenberg–Marquardt Method (based on
//! non-linear least squares fitting via trust regions)" for robustly fitting
//! the Taylor polynomial to the noisy snapshot results (§IV-A). This module
//! implements the classic Marquardt variant: at each step solve
//!
//! ```text
//! (JᵀJ + λ · diag(JᵀJ)) δ = Jᵀ r
//! ```
//!
//! accept the step (and shrink `λ`) when it reduces the sum of squared
//! residuals, reject it (and grow `λ`) otherwise. The diagonal scaling makes
//! the damping behave like an ellipsoidal trust region.
//!
//! The model is supplied through [`ResidualModel`]; an analytic Jacobian is
//! optional — a forward-difference Jacobian is used when none is given.

use crate::error::StatsError;
use crate::linalg::Matrix;
use crate::Result;

/// A nonlinear least-squares problem: given parameters `β`, produce the
/// residual vector `r(β)` (and optionally its Jacobian).
pub trait ResidualModel {
    /// Number of residuals (observations).
    fn residual_count(&self) -> usize;

    /// Number of free parameters.
    fn parameter_count(&self) -> usize;

    /// Fills `out` (length [`Self::residual_count`]) with residuals at `params`.
    fn residuals(&self, params: &[f64], out: &mut [f64]);

    /// Fills `jac` (row-major `residual_count × parameter_count`) with the
    /// Jacobian `∂r_i/∂β_j` at `params`. Returns `false` if no analytic
    /// Jacobian is available (the optimiser then falls back to finite
    /// differences).
    fn jacobian(&self, _params: &[f64], _jac: &mut [f64]) -> bool {
        false
    }
}

/// Tuning knobs for the optimiser.
#[derive(Debug, Clone, Copy)]
pub struct LmConfig {
    /// Maximum number of accepted-or-rejected iterations.
    pub max_iterations: usize,
    /// Initial damping factor `λ₀`.
    pub initial_lambda: f64,
    /// Multiplicative factor applied to `λ` on rejection (and its inverse
    /// on acceptance).
    pub lambda_factor: f64,
    /// Convergence: stop when the relative reduction of the cost falls
    /// below this threshold.
    pub cost_tolerance: f64,
    /// Convergence: stop when the step's infinity norm falls below this.
    pub step_tolerance: f64,
    /// Upper bound on `λ`; exceeding it means the optimiser is stuck.
    pub max_lambda: f64,
}

impl Default for LmConfig {
    fn default() -> Self {
        Self {
            max_iterations: 100,
            initial_lambda: 1e-3,
            lambda_factor: 10.0,
            cost_tolerance: 1e-12,
            step_tolerance: 1e-12,
            max_lambda: 1e12,
        }
    }
}

/// Why the optimiser stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LmOutcome {
    /// Relative cost reduction fell below `cost_tolerance`.
    CostConverged,
    /// Step norm fell below `step_tolerance`.
    StepConverged,
    /// Residuals are numerically zero.
    ExactFit,
    /// Damping grew past `max_lambda` without progress.
    Stalled,
    /// Iteration budget exhausted (the fit may still be usable).
    MaxIterations,
}

/// Result of a Levenberg–Marquardt run.
#[derive(Debug, Clone)]
pub struct LmReport {
    /// Fitted parameters.
    pub params: Vec<f64>,
    /// Final cost `½‖r‖²`.
    pub cost: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Why the loop stopped.
    pub outcome: LmOutcome,
}

/// The Levenberg–Marquardt optimiser.
#[derive(Debug, Clone, Default)]
pub struct LevenbergMarquardt {
    config: LmConfig,
}

impl LevenbergMarquardt {
    /// Creates an optimiser with the given configuration.
    #[must_use]
    pub fn new(config: LmConfig) -> Self {
        Self { config }
    }

    /// Minimises `½‖r(β)‖²` starting from `initial`.
    ///
    /// # Errors
    ///
    /// * [`StatsError::DimensionMismatch`] if `initial.len()` disagrees with
    ///   the model, or the model has more parameters than residuals.
    /// * [`StatsError::NonFiniteInput`] if residuals become non-finite at
    ///   the starting point.
    /// * [`StatsError::SingularMatrix`] if the damped normal equations stay
    ///   unsolvable even at maximum damping.
    pub fn fit<M: ResidualModel>(&self, model: &M, initial: &[f64]) -> Result<LmReport> {
        let m = model.residual_count();
        let n = model.parameter_count();
        if initial.len() != n {
            return Err(StatsError::DimensionMismatch {
                context: "fit: initial parameter vector has wrong length",
            });
        }
        if m < n {
            return Err(StatsError::DimensionMismatch {
                context: "fit: fewer residuals than parameters (underdetermined)",
            });
        }

        let cfg = &self.config;
        let mut params = initial.to_vec();
        let mut residuals = vec![0.0; m];
        model.residuals(&params, &mut residuals);
        if residuals.iter().any(|r| !r.is_finite()) {
            return Err(StatsError::NonFiniteInput {
                what: "residuals at initial parameters",
            });
        }
        let mut cost = 0.5 * residuals.iter().map(|r| r * r).sum::<f64>();

        let mut lambda = cfg.initial_lambda;
        let mut jac_buf = vec![0.0; m * n];
        let mut trial_params = vec![0.0; n];
        let mut trial_residuals = vec![0.0; m];

        for iter in 1..=cfg.max_iterations {
            if cost < 1e-300 {
                return Ok(LmReport {
                    params,
                    cost,
                    iterations: iter,
                    outcome: LmOutcome::ExactFit,
                });
            }

            self.compute_jacobian(model, &params, &residuals, &mut jac_buf);

            // Normal equations: JᵀJ and g = Jᵀ r.
            let mut jtj = Matrix::zeros(n, n);
            let mut g = vec![0.0; n];
            for i in 0..m {
                let row = &jac_buf[i * n..(i + 1) * n];
                for a in 0..n {
                    g[a] += row[a] * residuals[i];
                    for b in a..n {
                        jtj[(a, b)] += row[a] * row[b];
                    }
                }
            }
            for a in 0..n {
                for b in 0..a {
                    jtj[(a, b)] = jtj[(b, a)];
                }
            }

            // Inner loop: increase damping until a step is accepted.
            loop {
                let mut damped = jtj.clone();
                for a in 0..n {
                    // Marquardt scaling with an absolute floor so that flat
                    // directions are still damped.
                    let d = jtj[(a, a)].max(1e-12);
                    damped[(a, a)] = jtj[(a, a)] + lambda * d;
                }

                let step = match damped.solve_spd(&g) {
                    Ok(s) => s,
                    Err(_) => {
                        lambda *= cfg.lambda_factor;
                        if lambda > cfg.max_lambda {
                            return Err(StatsError::SingularMatrix);
                        }
                        continue;
                    }
                };

                for ((t, p), s) in trial_params.iter_mut().zip(&params).zip(&step) {
                    *t = p - s;
                }
                model.residuals(&trial_params, &mut trial_residuals);
                let trial_cost = if trial_residuals.iter().all(|r| r.is_finite()) {
                    0.5 * trial_residuals.iter().map(|r| r * r).sum::<f64>()
                } else {
                    f64::INFINITY
                };

                if trial_cost < cost {
                    let step_norm = step.iter().fold(0.0_f64, |acc, s| acc.max(s.abs()));
                    let rel_reduction = (cost - trial_cost) / cost.max(1e-300);
                    params.copy_from_slice(&trial_params);
                    residuals.copy_from_slice(&trial_residuals);
                    cost = trial_cost;
                    lambda = (lambda / cfg.lambda_factor).max(1e-15);

                    if rel_reduction < cfg.cost_tolerance {
                        return Ok(LmReport {
                            params,
                            cost,
                            iterations: iter,
                            outcome: LmOutcome::CostConverged,
                        });
                    }
                    if step_norm < cfg.step_tolerance {
                        return Ok(LmReport {
                            params,
                            cost,
                            iterations: iter,
                            outcome: LmOutcome::StepConverged,
                        });
                    }
                    break;
                }

                lambda *= cfg.lambda_factor;
                if lambda > cfg.max_lambda {
                    return Ok(LmReport {
                        params,
                        cost,
                        iterations: iter,
                        outcome: LmOutcome::Stalled,
                    });
                }
            }
        }

        Ok(LmReport {
            params,
            cost,
            iterations: self.config.max_iterations,
            outcome: LmOutcome::MaxIterations,
        })
    }

    /// Fills `jac` with the model's Jacobian, using forward differences
    /// when the model provides none.
    fn compute_jacobian<M: ResidualModel>(
        &self,
        model: &M,
        params: &[f64],
        residuals: &[f64],
        jac: &mut [f64],
    ) {
        if model.jacobian(params, jac) {
            return;
        }
        let m = model.residual_count();
        let n = model.parameter_count();
        let mut perturbed = params.to_vec();
        let mut r_plus = vec![0.0; m];
        for j in 0..n {
            let h = 1e-7 * params[j].abs().max(1e-7);
            let saved = perturbed[j];
            perturbed[j] = saved + h;
            model.residuals(&perturbed, &mut r_plus);
            perturbed[j] = saved;
            for i in 0..m {
                jac[i * n + j] = (r_plus[i] - residuals[i]) / h;
            }
        }
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    /// Fit y = a·exp(b·x) to data.
    struct ExpModel {
        xs: Vec<f64>,
        ys: Vec<f64>,
    }

    impl ResidualModel for ExpModel {
        fn residual_count(&self) -> usize {
            self.xs.len()
        }
        fn parameter_count(&self) -> usize {
            2
        }
        fn residuals(&self, p: &[f64], out: &mut [f64]) {
            for ((o, &x), &y) in out.iter_mut().zip(&self.xs).zip(&self.ys) {
                *o = p[0] * (p[1] * x).exp() - y;
            }
        }
    }

    /// Linear model with analytic Jacobian: y = a + b·x.
    struct LineModel {
        xs: Vec<f64>,
        ys: Vec<f64>,
    }

    impl ResidualModel for LineModel {
        fn residual_count(&self) -> usize {
            self.xs.len()
        }
        fn parameter_count(&self) -> usize {
            2
        }
        fn residuals(&self, p: &[f64], out: &mut [f64]) {
            for ((o, &x), &y) in out.iter_mut().zip(&self.xs).zip(&self.ys) {
                *o = p[0] + p[1] * x - y;
            }
        }
        fn jacobian(&self, _p: &[f64], jac: &mut [f64]) -> bool {
            for (i, &x) in self.xs.iter().enumerate() {
                jac[i * 2] = 1.0;
                jac[i * 2 + 1] = x;
            }
            true
        }
    }

    #[test]
    fn fits_exact_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 + 3.0 * x).collect();
        let model = LineModel { xs, ys };
        let report = LevenbergMarquardt::default()
            .fit(&model, &[0.0, 0.0])
            .unwrap();
        assert!((report.params[0] - 2.0).abs() < 1e-8, "{:?}", report);
        assert!((report.params[1] - 3.0).abs() < 1e-8);
        assert!(report.cost < 1e-15);
    }

    #[test]
    fn fits_noisy_line_to_least_squares_solution() {
        let xs = vec![0.0, 1.0, 2.0, 3.0];
        let ys = vec![0.1, 0.9, 2.2, 2.8];
        let model = LineModel {
            xs: xs.clone(),
            ys: ys.clone(),
        };
        let report = LevenbergMarquardt::default()
            .fit(&model, &[0.0, 0.0])
            .unwrap();
        // Closed-form OLS for comparison.
        let n = xs.len() as f64;
        let sx: f64 = xs.iter().sum();
        let sy: f64 = ys.iter().sum();
        let sxx: f64 = xs.iter().map(|x| x * x).sum();
        let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
        let b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        let a = (sy - b * sx) / n;
        assert!((report.params[0] - a).abs() < 1e-7);
        assert!((report.params[1] - b).abs() < 1e-7);
    }

    #[test]
    fn fits_exponential_with_numeric_jacobian() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.5 * (0.8 * x).exp()).collect();
        let model = ExpModel { xs, ys };
        let report = LevenbergMarquardt::default()
            .fit(&model, &[1.0, 0.5])
            .unwrap();
        assert!((report.params[0] - 1.5).abs() < 1e-5, "{:?}", report);
        assert!((report.params[1] - 0.8).abs() < 1e-5);
    }

    #[test]
    fn exponential_from_poor_start_still_converges() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * (-1.3 * x).exp()).collect();
        let model = ExpModel { xs, ys };
        let report = LevenbergMarquardt::default()
            .fit(&model, &[0.5, 0.0])
            .unwrap();
        assert!((report.params[0] - 2.0).abs() < 1e-4, "{:?}", report);
        assert!((report.params[1] + 1.3).abs() < 1e-4);
    }

    #[test]
    fn rejects_wrong_initial_length() {
        let model = LineModel {
            xs: vec![0.0, 1.0],
            ys: vec![0.0, 1.0],
        };
        assert!(LevenbergMarquardt::default().fit(&model, &[0.0]).is_err());
    }

    #[test]
    fn rejects_underdetermined() {
        let model = LineModel {
            xs: vec![0.0],
            ys: vec![0.0],
        };
        assert!(LevenbergMarquardt::default()
            .fit(&model, &[0.0, 0.0])
            .is_err());
    }

    #[test]
    fn exact_fit_stops_immediately() {
        let model = LineModel {
            xs: vec![0.0, 1.0, 2.0],
            ys: vec![1.0, 1.0, 1.0],
        };
        let report = LevenbergMarquardt::default()
            .fit(&model, &[1.0, 0.0])
            .unwrap();
        assert_eq!(report.outcome, LmOutcome::ExactFit);
    }

    #[test]
    fn respects_iteration_budget() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.5 * (0.8 * x).exp()).collect();
        let model = ExpModel { xs, ys };
        let cfg = LmConfig {
            max_iterations: 1,
            ..LmConfig::default()
        };
        let report = LevenbergMarquardt::new(cfg)
            .fit(&model, &[1.0, 0.5])
            .unwrap();
        assert!(report.iterations <= 1);
    }
}
