//! Repeated-sampling estimator algebra (paper §IV-B2, Table 1, Eqs. 7–11).
//!
//! At sampling occasion `k`, the panel of `n` samples is split into `g`
//! *retained* samples (already located at occasion `k−1`; re-reading them is
//! nearly free) and `f = n − g` *fresh* samples (newly drawn through the
//! sampling operator; each costs a random walk). Two estimators are formed:
//!
//! * the **regular estimate** `Ȳ_kf` — the plain mean of the fresh portion,
//!   with variance `σ²/f`;
//! * the **regression estimate** `Ȳ_kg = ȳ_kg + b(Ȳ_{k−1} − ȳ_{k−1,g})` —
//!   the retained portion corrected through the regression of current on
//!   previous values, with variance `σ²(1−ρ²)/g + ρ²σ²/n`;
//!
//! and combined with inverse-variance weights (Eq. 7). The combined
//! variance works out to Eq. 8,
//!
//! ```text
//! var(Ȳ_k) = σ²(n − gρ²) / (n² − g²ρ²),
//! ```
//!
//! minimised by the optimal partition (Eq. 9)
//!
//! ```text
//! g_opt = n / (1 + √(1−ρ²)),
//! ```
//!
//! at which `var_min = σ²(1 + √(1−ρ²)) / (2n)` (Eq. 10) — an improvement
//! of up to 2× over independent sampling as `|ρ| → 1` (Eq. 11).

use crate::error::StatsError;
use crate::moments::{PairedMoments, RunningMoments};
use crate::Result;

/// How a panel of `n` samples is split between retained and fresh
/// portions (the Eq. 9 optimal replacement fraction, paper §IV-B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PanelPartition {
    /// `g` — samples retained (and re-read) from the previous occasion.
    pub retained: usize,
    /// `f = n − g` — fresh samples drawn through the sampling operator.
    pub fresh: usize,
}

impl PanelPartition {
    /// Total panel size `n = g + f`.
    #[must_use]
    pub fn total(&self) -> usize {
        self.retained + self.fresh
    }
}

/// Optimal panel partition `g_opt = n / (1 + √(1−ρ²))` (Eq. 9).
///
/// `rho` is clamped into `[−1, 1]`. Unless `|ρ| = 1`, at least one fresh
/// sample is kept whenever `n ≥ 2`, so the panel always tracks insertions,
/// deletions, and pathological updates (the paper makes the same point
/// after Eq. 11).
///
/// ```
/// use digest_stats::repeated::optimal_partition;
/// // Uncorrelated occasions: retaining half is variance-neutral but
/// // halves the walk cost.
/// assert_eq!(optimal_partition(100, 0.0).retained, 50);
/// // Highly correlated occasions: retain most of the panel.
/// assert!(optimal_partition(100, 0.95).retained > 70);
/// ```
#[must_use]
pub fn optimal_partition(n: usize, rho: f64) -> PanelPartition {
    if n == 0 {
        return PanelPartition {
            retained: 0,
            fresh: 0,
        };
    }
    let rho = rho.clamp(-1.0, 1.0);
    let root = (1.0 - rho * rho).sqrt();
    let g_opt = n as f64 / (1.0 + root);
    let mut g = crate::f64_to_usize_saturating(g_opt.round());
    g = g.min(n);
    // Keep the panel self-repairing: at least one fresh sample unless the
    // correlation is literally perfect.
    if g == n && root > 0.0 && n >= 2 {
        g = n - 1;
    }
    PanelPartition {
        retained: g,
        fresh: n - g,
    }
}

/// Combined-estimator variance at an arbitrary partition (Eq. 8):
/// `σ²(n − gρ²)/(n² − g²ρ²)`.
///
/// # Errors
///
/// [`StatsError::InvalidParameter`] if `n == 0` or `g > n`.
pub fn combined_variance(sigma2: f64, n: usize, g: usize, rho: f64) -> Result<f64> {
    if n == 0 {
        return Err(StatsError::InvalidParameter {
            what: "n",
            value: 0.0,
        });
    }
    if g > n {
        return Err(StatsError::InvalidParameter {
            what: "g",
            value: g as f64,
        });
    }
    let rho2 = rho.clamp(-1.0, 1.0).powi(2);
    let nf = n as f64;
    let gf = g as f64;
    Ok(sigma2 * (nf - gf * rho2) / (nf * nf - gf * gf * rho2))
}

/// Minimum combined variance under optimal partitioning (Eq. 10):
/// `σ²(1 + √(1−ρ²)) / (2n)`.
///
/// # Errors
///
/// [`StatsError::InvalidParameter`] if `n == 0`.
pub fn min_combined_variance(sigma2: f64, n: usize, rho: f64) -> Result<f64> {
    if n == 0 {
        return Err(StatsError::InvalidParameter {
            what: "n",
            value: 0.0,
        });
    }
    let rho2 = rho.clamp(-1.0, 1.0).powi(2);
    Ok(sigma2 * (1.0 + (1.0 - rho2).sqrt()) / (2.0 * n as f64))
}

/// The variance-improvement ratio of repeated over independent sampling at
/// optimal partitioning (Eq. 11): `var_indep / var_min = 2 / (1 + √(1−ρ²))`.
///
/// Ranges from 1 (ρ = 0 — no improvement) to 2 (|ρ| = 1 — halved variance,
/// i.e. the paper's "up to 100 %" accuracy improvement).
#[must_use]
pub fn improvement_ratio(rho: f64) -> f64 {
    let rho2 = rho.clamp(-1.0, 1.0).powi(2);
    2.0 / (1.0 + (1.0 - rho2).sqrt())
}

/// Panel size `n` needed so the *optimally partitioned* repeated-sampling
/// estimator reaches a target variance `v*`: solve Eq. 10 for `n`.
///
/// # Errors
///
/// [`StatsError::InvalidParameter`] if `sigma2 < 0` or `target_variance ≤ 0`.
pub fn required_panel_size(sigma2: f64, rho: f64, target_variance: f64) -> Result<usize> {
    if !sigma2.is_finite() || sigma2 < 0.0 {
        return Err(StatsError::InvalidParameter {
            what: "sigma2",
            value: sigma2,
        });
    }
    if !target_variance.is_finite() || target_variance <= 0.0 {
        return Err(StatsError::InvalidParameter {
            what: "target_variance",
            value: target_variance,
        });
    }
    let rho2 = rho.clamp(-1.0, 1.0).powi(2);
    let n = sigma2 * (1.0 + (1.0 - rho2).sqrt()) / (2.0 * target_variance);
    Ok(crate::f64_to_usize_saturating(n.ceil()).max(crate::clt::MIN_SAMPLE_SIZE))
}

/// The combined repeated-sampling estimate for one occasion (paper
/// §IV-B2, Eq. 7/Eq. 8).
#[derive(Debug, Clone, Copy)]
pub struct CombinedEstimate {
    /// `Ȳ_k` — the inverse-variance weighted combination (Eq. 7).
    pub estimate: f64,
    /// Estimated variance of the combined estimator.
    pub variance: f64,
    /// Weight `α` given to the fresh-portion (regular) estimate.
    pub alpha: f64,
    /// Correlation `ρ̂` measured on the retained pairs.
    pub rho_hat: f64,
    /// Regression slope `b = s₁₂/s₁²` measured on the retained pairs.
    pub slope: f64,
    /// Pooled estimate `σ̂²` of the current-occasion value variance.
    pub sigma2_hat: f64,
}

/// Computes the combined estimate (Eq. 7) of the current occasion's mean
/// from
///
/// * `fresh` — current values of the `f` freshly drawn samples,
/// * `retained_prev` / `retained_cur` — previous- and current-occasion
///   values of the `g` retained samples (parallel slices), and
/// * `prev_mean` — the engine's estimate `Ȳ_{k−1}` of the previous
///   occasion's mean (the `ȳ₁` of Table 1).
///
/// Degenerate panels degrade gracefully: with no retained pairs this is the
/// plain fresh mean (independent sampling); with no fresh samples it is the
/// pure regression estimate.
///
/// # Errors
///
/// * [`StatsError::DimensionMismatch`] if the retained slices differ in
///   length.
/// * [`StatsError::InsufficientData`] if the panel is entirely empty.
/// * [`StatsError::NonFiniteInput`] if any value is non-finite.
pub fn combined_estimate(
    fresh: &[f64],
    retained_prev: &[f64],
    retained_cur: &[f64],
    prev_mean: f64,
) -> Result<CombinedEstimate> {
    if retained_prev.len() != retained_cur.len() {
        return Err(StatsError::DimensionMismatch {
            context: "combined_estimate: retained slices must be parallel",
        });
    }
    let f = fresh.len();
    let g = retained_cur.len();
    let n = f + g;
    if n == 0 {
        return Err(StatsError::InsufficientData { got: 0, need: 1 });
    }
    if fresh
        .iter()
        .chain(retained_prev.iter())
        .chain(retained_cur.iter())
        .any(|v| !v.is_finite())
        || !prev_mean.is_finite()
    {
        return Err(StatsError::NonFiniteInput {
            what: "panel values",
        });
    }

    // Pooled variance of current-occasion values across the whole panel.
    let mut pooled = RunningMoments::new();
    pooled.extend_from(fresh);
    pooled.extend_from(retained_cur);
    let sigma2_hat = pooled.sample_variance();

    // Retained-pair statistics.
    let pairs = PairedMoments::from_pairs(retained_prev, retained_cur);
    let rho_hat = pairs.correlation();
    let slope = pairs.regression_slope();

    let fresh_mean = if f > 0 {
        fresh.iter().sum::<f64>() / f as f64
    } else {
        0.0
    };

    // Pure-fresh fallback (independent sampling).
    if g == 0 {
        let variance = sigma2_hat / f as f64;
        return Ok(CombinedEstimate {
            estimate: fresh_mean,
            variance,
            alpha: 1.0,
            rho_hat: 0.0,
            slope: 0.0,
            sigma2_hat,
        });
    }

    // Regression estimate from the retained portion (Table 1):
    // Ȳ_kg = ȳ_kg + b (Ȳ_{k−1} − ȳ_{k−1,g}).
    let retained_cur_mean = retained_cur.iter().sum::<f64>() / g as f64;
    let retained_prev_mean = retained_prev.iter().sum::<f64>() / g as f64;
    let regression_estimate = retained_cur_mean + slope * (prev_mean - retained_prev_mean);

    let rho2 = rho_hat * rho_hat;
    let var_regression = sigma2_hat * (1.0 - rho2) / g as f64 + rho2 * sigma2_hat / n as f64;

    // Pure-retained fallback.
    if f == 0 {
        return Ok(CombinedEstimate {
            estimate: regression_estimate,
            variance: var_regression,
            alpha: 0.0,
            rho_hat,
            slope,
            sigma2_hat,
        });
    }

    let var_fresh = sigma2_hat / f as f64;

    // Inverse-variance weights; guard the zero-variance (constant data)
    // corner where both weights blow up.
    const TINY: f64 = 1e-12;
    let w_f = 1.0 / var_fresh.max(TINY);
    let w_g = 1.0 / var_regression.max(TINY);
    let alpha = w_f / (w_f + w_g);
    let estimate = alpha * fresh_mean + (1.0 - alpha) * regression_estimate;
    let variance = 1.0 / (w_f + w_g);

    Ok(CombinedEstimate {
        estimate,
        variance,
        alpha,
        rho_hat,
        slope,
        sigma2_hat,
    })
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    #[test]
    fn partition_zero_correlation_is_half() {
        // ρ = 0 → g_opt = n/2: retention is variance-neutral but cheap.
        let p = optimal_partition(100, 0.0);
        assert_eq!(p.retained, 50);
        assert_eq!(p.fresh, 50);
        assert_eq!(p.total(), 100);
    }

    #[test]
    fn partition_perfect_correlation_retains_all() {
        let p = optimal_partition(100, 1.0);
        assert_eq!(p.retained, 100);
        assert_eq!(p.fresh, 0);
    }

    #[test]
    fn partition_high_correlation_retains_most_but_not_all() {
        let p = optimal_partition(100, 0.95);
        assert!(p.retained > 70, "g = {}", p.retained);
        assert!(p.fresh >= 1, "must keep a self-repairing fresh slot");
    }

    #[test]
    fn partition_monotone_in_rho() {
        let mut prev = 0;
        for i in 0..=10 {
            let rho = i as f64 / 10.0;
            let g = optimal_partition(1000, rho).retained;
            assert!(g >= prev, "g not monotone at rho = {rho}");
            prev = g;
        }
    }

    #[test]
    fn partition_negative_rho_mirrors_positive() {
        assert_eq!(optimal_partition(100, -0.8), optimal_partition(100, 0.8));
    }

    #[test]
    fn partition_edge_sizes() {
        assert_eq!(optimal_partition(0, 0.5).total(), 0);
        let p = optimal_partition(1, 0.5);
        assert_eq!(p.total(), 1);
    }

    #[test]
    fn combined_variance_extremes_equal_independent() {
        // g = 0 and g = n both give σ²/n (paper's observation after Eq. 10).
        let s2 = 4.0;
        let n = 50;
        let v0 = combined_variance(s2, n, 0, 0.8).unwrap();
        let vn = combined_variance(s2, n, n, 0.8).unwrap();
        let indep = s2 / n as f64;
        assert!((v0 - indep).abs() < 1e-12);
        assert!((vn - indep).abs() < 1e-12);
    }

    #[test]
    fn optimal_partition_achieves_min_variance() {
        let s2 = 9.0;
        let n = 200;
        let rho = 0.9_f64;
        let p = optimal_partition(n, rho);
        let v_opt = combined_variance(s2, n, p.retained, rho).unwrap();
        let v_min = min_combined_variance(s2, n, rho).unwrap();
        // Rounding g to an integer costs a hair.
        assert!(
            (v_opt - v_min).abs() / v_min < 1e-3,
            "v_opt={v_opt} v_min={v_min}"
        );
        // And any other partition is no better.
        for g in [0, n / 4, n / 2, 3 * n / 4, n] {
            let v = combined_variance(s2, n, g, rho).unwrap();
            assert!(v + 1e-12 >= v_opt, "partition g={g} beat the optimum");
        }
    }

    #[test]
    fn improvement_ratio_bounds() {
        assert!((improvement_ratio(0.0) - 1.0).abs() < 1e-12);
        assert!((improvement_ratio(1.0) - 2.0).abs() < 1e-12);
        let r89 = improvement_ratio(0.89);
        assert!(r89 > 1.3 && r89 < 1.45, "ratio at ρ=0.89 was {r89}");
        let r68 = improvement_ratio(0.68);
        assert!(r68 > 1.1 && r68 < 1.2, "ratio at ρ=0.68 was {r68}");
    }

    #[test]
    fn improvement_ratio_matches_variance_formulas() {
        for &rho in &[0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let s2 = 2.5;
            let n = 1000;
            let indep = s2 / n as f64;
            let min = min_combined_variance(s2, n, rho).unwrap();
            assert!((indep / min - improvement_ratio(rho)).abs() < 1e-12);
        }
    }

    #[test]
    fn required_panel_size_beats_independent() {
        let s2 = 64.0;
        let target = 0.5;
        let n_rpt = required_panel_size(s2, 0.9, target).unwrap();
        let n_indep = crate::clt::required_sample_size_for_variance(s2, target).unwrap();
        assert!(n_rpt < n_indep, "rpt {n_rpt} !< indep {n_indep}");
        // At ρ = 0 they coincide.
        let n0 = required_panel_size(s2, 0.0, target).unwrap();
        assert_eq!(n0, n_indep);
    }

    #[test]
    fn required_panel_size_validates() {
        assert!(required_panel_size(-1.0, 0.5, 1.0).is_err());
        assert!(required_panel_size(1.0, 0.5, 0.0).is_err());
    }

    #[test]
    fn variance_functions_validate() {
        assert!(combined_variance(1.0, 0, 0, 0.5).is_err());
        assert!(combined_variance(1.0, 10, 11, 0.5).is_err());
        assert!(min_combined_variance(1.0, 0, 0.5).is_err());
    }

    #[test]
    fn combined_estimate_pure_fresh_is_mean() {
        let fresh = [1.0, 2.0, 3.0, 4.0];
        let e = combined_estimate(&fresh, &[], &[], 0.0).unwrap();
        assert!((e.estimate - 2.5).abs() < 1e-12);
        assert_eq!(e.alpha, 1.0);
    }

    #[test]
    fn combined_estimate_pure_retained_uses_regression() {
        // Current = previous + 1 exactly: slope 1, regression corrects the
        // retained mean by the panel-vs-population offset.
        let prev = [1.0, 2.0, 3.0, 4.0];
        let cur = [2.0, 3.0, 4.0, 5.0];
        // Suppose the previous occasion's true mean estimate was 3.0 while
        // the retained subset's previous mean is 2.5: correction = +0.5.
        let e = combined_estimate(&[], &prev, &cur, 3.0).unwrap();
        assert!((e.slope - 1.0).abs() < 1e-9);
        assert!((e.estimate - 4.0).abs() < 1e-9, "estimate = {}", e.estimate);
        assert_eq!(e.alpha, 0.0);
        assert!((e.rho_hat - 1.0).abs() < 1e-9);
    }

    #[test]
    fn combined_estimate_blends_both_portions() {
        let fresh = [10.0, 11.0, 9.0, 10.5, 9.5];
        let prev = [9.0, 10.0, 11.0, 10.0, 9.5, 10.5];
        let cur = [9.2, 10.1, 11.3, 10.2, 9.4, 10.6];
        let e = combined_estimate(&fresh, &prev, &cur, 10.0).unwrap();
        assert!(e.alpha > 0.0 && e.alpha < 1.0, "alpha = {}", e.alpha);
        // The estimate lies between the two portion estimates.
        let fresh_mean = fresh.iter().sum::<f64>() / fresh.len() as f64;
        let lo = fresh_mean.min(e.estimate);
        let hi = fresh_mean.max(e.estimate);
        assert!(lo <= e.estimate && e.estimate <= hi);
        assert!(e.variance > 0.0);
        assert!(
            e.rho_hat > 0.9,
            "highly correlated pairs, got ρ̂ = {}",
            e.rho_hat
        );
    }

    #[test]
    fn combined_estimate_high_correlation_favours_regression() {
        // Perfectly correlated retained pairs → regression variance only
        // carries the ρ²σ²/n term → regression weight dominates.
        let fresh = [10.0, 12.0];
        let prev: Vec<f64> = (0..20).map(|i| 10.0 + (i % 5) as f64 * 0.1).collect();
        let cur: Vec<f64> = prev.iter().map(|p| p + 1.0).collect();
        let e = combined_estimate(&fresh, &prev, &cur, 10.2).unwrap();
        assert!(e.alpha < 0.5, "alpha = {}", e.alpha);
    }

    #[test]
    fn combined_estimate_validates() {
        assert!(combined_estimate(&[], &[], &[], 0.0).is_err());
        assert!(combined_estimate(&[1.0], &[1.0], &[], 0.0).is_err());
        assert!(combined_estimate(&[f64::NAN], &[], &[], 0.0).is_err());
        assert!(combined_estimate(&[1.0], &[1.0], &[f64::INFINITY], 0.0).is_err());
    }

    #[test]
    fn combined_estimate_constant_values() {
        // Zero variance everywhere: must not divide by zero.
        let fresh = [5.0, 5.0, 5.0];
        let prev = [5.0, 5.0];
        let cur = [5.0, 5.0];
        let e = combined_estimate(&fresh, &prev, &cur, 5.0).unwrap();
        assert!((e.estimate - 5.0).abs() < 1e-9);
        assert!(e.variance >= 0.0);
    }

    #[test]
    fn combined_estimate_is_unbiased_monte_carlo() {
        // Deterministic LCG Monte-Carlo: population mean 0; the combined
        // estimator must average near 0 across trials.
        let mut seed = 42u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            // 32 high bits → [0, 2³²) → [−1, 1).
            (seed >> 32) as f64 / (1u64 << 31) as f64 - 1.0
        };
        let mut sum = 0.0;
        let trials = 400;
        for _ in 0..trials {
            let prev: Vec<f64> = (0..30).map(|_| next()).collect();
            let cur: Vec<f64> = prev.iter().map(|p| 0.8 * p + 0.2 * next()).collect();
            let fresh: Vec<f64> = (0..15).map(|_| 0.8 * next() + 0.2 * next()).collect();
            let e = combined_estimate(&fresh, &prev, &cur, 0.0).unwrap();
            sum += e.estimate;
        }
        let avg = sum / trials as f64;
        assert!(avg.abs() < 0.05, "bias detected: {avg}");
    }
}
