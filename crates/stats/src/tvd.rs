//! Discrete probability distributions and total-variation distance.
//!
//! The convergence guarantee of the sampling operator is stated in terms of
//! the total-variation difference between the random walk's time-`t`
//! distribution `π_t` and the target sampling distribution `p_v`
//! (paper Definitions 1–2):
//!
//! ```text
//! ‖π_t, p_v‖ = ½ Σ_i |π_t(i) − p_v(i)|,   τ(γ) = min{t : ∀t'≥t, ‖π_t', p_v‖ ≤ γ}.
//! ```
//!
//! These utilities normalise weight vectors into distributions and measure
//! the distance, backing both the mixing-time experiments and the
//! correctness tests of the Metropolis walker.

use crate::error::StatsError;
use crate::Result;

/// A probability distribution over `{0, …, n−1}`.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteDistribution {
    probs: Vec<f64>,
}

impl DiscreteDistribution {
    /// Normalises a vector of non-negative weights into a distribution.
    ///
    /// # Errors
    ///
    /// * [`StatsError::InsufficientData`] for an empty vector.
    /// * [`StatsError::InvalidParameter`] for negative or non-finite
    ///   weights, or an all-zero vector.
    pub fn from_weights(weights: &[f64]) -> Result<Self> {
        if weights.is_empty() {
            return Err(StatsError::InsufficientData { got: 0, need: 1 });
        }
        let mut total = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(StatsError::InvalidParameter {
                    what: "weight",
                    value: w,
                });
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "weight total",
                value: total,
            });
        }
        Ok(Self {
            probs: weights.iter().map(|w| w / total).collect(),
        })
    }

    /// The uniform distribution over `n` outcomes.
    ///
    /// # Errors
    ///
    /// [`StatsError::InsufficientData`] if `n == 0`.
    pub fn uniform(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(StatsError::InsufficientData { got: 0, need: 1 });
        }
        Ok(Self {
            probs: vec![1.0 / n as f64; n],
        })
    }

    /// Builds the empirical distribution of `counts` (e.g. visit counts of
    /// a random walk).
    ///
    /// # Errors
    ///
    /// As for [`DiscreteDistribution::from_weights`].
    pub fn from_counts(counts: &[u64]) -> Result<Self> {
        let weights: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        Self::from_weights(&weights)
    }

    /// Number of outcomes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True when there are no outcomes (never constructible; kept for API
    /// completeness with `len`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Probability of outcome `i` (0 for out-of-range `i`).
    #[must_use]
    pub fn prob(&self, i: usize) -> f64 {
        self.probs.get(i).copied().unwrap_or(0.0)
    }

    /// The probabilities as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.probs
    }

    /// Smallest outcome probability `p_min` (appears in the mixing-time
    /// bound of Theorem 3).
    #[must_use]
    pub fn min_prob(&self) -> f64 {
        self.probs.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// Total-variation distance `½ Σ |a_i − b_i|` between two distributions on
/// the same outcome space (Definition 1). Always in `[0, 1]`.
///
/// # Errors
///
/// [`StatsError::DimensionMismatch`] if the supports differ in size.
pub fn total_variation_distance(a: &DiscreteDistribution, b: &DiscreteDistribution) -> Result<f64> {
    if a.len() != b.len() {
        return Err(StatsError::DimensionMismatch {
            context: "total_variation_distance: distributions must share a support",
        });
    }
    let sum: f64 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .sum();
    Ok(0.5 * sum)
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    #[test]
    fn normalises_weights() {
        let d = DiscreteDistribution::from_weights(&[1.0, 3.0]).unwrap();
        assert!((d.prob(0) - 0.25).abs() < 1e-12);
        assert!((d.prob(1) - 0.75).abs() < 1e-12);
        assert_eq!(d.prob(2), 0.0);
    }

    #[test]
    fn uniform_distribution() {
        let d = DiscreteDistribution::uniform(4).unwrap();
        for i in 0..4 {
            assert!((d.prob(i) - 0.25).abs() < 1e-12);
        }
        assert!((d.min_prob() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn from_counts_matches_weights() {
        let d1 = DiscreteDistribution::from_counts(&[2, 6]).unwrap();
        let d2 = DiscreteDistribution::from_weights(&[1.0, 3.0]).unwrap();
        assert_eq!(d1, d2);
    }

    #[test]
    fn rejects_bad_weights() {
        assert!(DiscreteDistribution::from_weights(&[]).is_err());
        assert!(DiscreteDistribution::from_weights(&[-1.0, 2.0]).is_err());
        assert!(DiscreteDistribution::from_weights(&[0.0, 0.0]).is_err());
        assert!(DiscreteDistribution::from_weights(&[f64::NAN]).is_err());
        assert!(DiscreteDistribution::uniform(0).is_err());
    }

    #[test]
    fn tvd_identical_is_zero() {
        let d = DiscreteDistribution::from_weights(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(total_variation_distance(&d, &d).unwrap(), 0.0);
    }

    #[test]
    fn tvd_disjoint_is_one() {
        let a = DiscreteDistribution::from_weights(&[1.0, 0.0]).unwrap();
        let b = DiscreteDistribution::from_weights(&[0.0, 1.0]).unwrap();
        assert!((total_variation_distance(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tvd_known_value() {
        let a = DiscreteDistribution::from_weights(&[0.5, 0.5]).unwrap();
        let b = DiscreteDistribution::from_weights(&[0.75, 0.25]).unwrap();
        assert!((total_variation_distance(&a, &b).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tvd_is_symmetric_and_bounded() {
        let a = DiscreteDistribution::from_weights(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = DiscreteDistribution::from_weights(&[4.0, 3.0, 2.0, 1.0]).unwrap();
        let ab = total_variation_distance(&a, &b).unwrap();
        let ba = total_variation_distance(&b, &a).unwrap();
        assert_eq!(ab, ba);
        assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn tvd_requires_same_support() {
        let a = DiscreteDistribution::uniform(3).unwrap();
        let b = DiscreteDistribution::uniform(4).unwrap();
        assert!(total_variation_distance(&a, &b).is_err());
    }
}
