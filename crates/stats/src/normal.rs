//! The standard normal distribution.
//!
//! Digest turns a user-supplied confidence level `p` into the quantile
//! `z_p = Φ⁻¹((1 + p)/2)` (paper Eq. 6), so both the CDF `Φ` and its inverse
//! are needed. `Φ` is computed through an Abramowitz–Stegun rational
//! approximation of the error function; `Φ⁻¹` uses Acklam's rational
//! approximation refined by one Halley step, which is accurate to roughly
//! `1e-9` over the full open interval — far below the statistical noise of
//! any sampling-based estimate.

use crate::error::StatsError;
use crate::Result;

/// Probability density function `φ(x)` of the standard normal distribution.
#[must_use]
pub fn phi_pdf(x: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Cumulative distribution function `Φ(x)` of the standard normal.
///
/// Graeme West's double-precision algorithm (Wilmott 2005): a rational
/// approximation for `|x| < 7.07` and a continued fraction in the deep
/// tail, giving ~15 significant digits everywhere — in particular the
/// *relative* accuracy in the lower tail that the quantile refinement
/// needs.
#[must_use]
pub fn phi(x: f64) -> f64 {
    let xabs = x.abs();
    let cumnorm = if xabs > 37.0 {
        0.0
    } else {
        let exponential = (-xabs * xabs / 2.0).exp();
        if xabs < 7.071_067_811_865_475 {
            let mut num = 3.526_249_659_989_11e-2 * xabs + 0.700_383_064_443_688;
            num = num * xabs + 6.373_962_203_531_65;
            num = num * xabs + 33.912_866_078_383;
            num = num * xabs + 112.079_291_497_871;
            num = num * xabs + 221.213_596_169_931;
            num = num * xabs + 220.206_867_912_376;
            let mut den = 8.838_834_764_831_84e-2 * xabs + 1.755_667_163_182_64;
            den = den * xabs + 16.064_177_579_207;
            den = den * xabs + 86.780_732_202_946_1;
            den = den * xabs + 296.564_248_779_674;
            den = den * xabs + 637.333_633_378_831;
            den = den * xabs + 793.826_512_519_948;
            den = den * xabs + 440.413_735_824_752;
            exponential * num / den
        } else {
            let mut build = xabs + 0.65;
            build = xabs + 4.0 / build;
            build = xabs + 3.0 / build;
            build = xabs + 2.0 / build;
            build = xabs + 1.0 / build;
            exponential / build / 2.506_628_274_631_000_5
        }
    };
    if x > 0.0 {
        1.0 - cumnorm
    } else {
        cumnorm
    }
}

/// Error function `erf(x) = 2Φ(x√2) − 1`, inheriting the double-precision
/// accuracy of [`phi`].
#[must_use]
pub fn erf(x: f64) -> f64 {
    2.0 * phi(x * std::f64::consts::SQRT_2) - 1.0
}

/// Inverse CDF `Φ⁻¹(p)` for `p ∈ (0, 1)`.
///
/// Acklam's rational approximation (relative error ≈ 1.15e-9), refined by
/// one Halley iteration against the high-precision CDF, pushing the error
/// to the order of the CDF approximation itself.
///
/// # Errors
///
/// Returns [`StatsError::InvalidProbability`] unless `0 < p < 1`.
pub fn inverse_phi(p: f64) -> Result<f64> {
    if !(p > 0.0 && p < 1.0) {
        return Err(StatsError::InvalidProbability {
            value: p,
            expected: "(0, 1)",
        });
    }

    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];

    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        // Lower tail.
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        // Central region.
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        // Upper tail, by symmetry.
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against our Φ.
    let e = phi(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    Ok(x - u / (1.0 + 0.5 * x * u))
}

/// Quantile `z_p = Φ⁻¹((1 + p)/2)` for a two-sided confidence level `p`.
///
/// This is the `t_p` of paper Eq. 6: the half-width multiplier such that a
/// standard normal variable lies in `[−z_p, z_p]` with probability `p`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidProbability`] unless `0 < p < 1`.
pub fn z_for_confidence(p: f64) -> Result<f64> {
    if !(p > 0.0 && p < 1.0) {
        return Err(StatsError::InvalidProbability {
            value: p,
            expected: "(0, 1)",
        });
    }
    inverse_phi((1.0 + p) / 2.0)
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    #[test]
    fn pdf_at_zero() {
        assert!((phi_pdf(0.0) - 0.398_942_280_401_432_7).abs() < 1e-15);
    }

    #[test]
    fn pdf_is_symmetric() {
        for x in [0.1, 0.7, 1.5, 3.0] {
            assert!((phi_pdf(x) - phi_pdf(-x)).abs() < 1e-15);
        }
    }

    #[test]
    fn erf_known_values() {
        // Reference values from tables.
        assert!(erf(0.0).abs() < 1e-12);
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-12);
        assert!((erf(2.0) - 0.995_322_265_018_952_7).abs() < 1e-12);
        assert!((erf(-1.0) + 0.842_700_792_949_714_9).abs() < 1e-12);
    }

    #[test]
    fn cdf_known_values() {
        assert!((phi(0.0) - 0.5).abs() < 1e-12);
        assert!((phi(1.0) - 0.841_344_746_068_542_9).abs() < 1e-12);
        assert!((phi(-1.0) - 0.158_655_253_931_457_05).abs() < 1e-12);
        assert!((phi(1.959_963_984_540_054) - 0.975).abs() < 1e-12);
        assert!((phi(2.575_829_303_548_901) - 0.995).abs() < 1e-12);
        // Deep tail keeps relative accuracy.
        let tail = phi(-10.0);
        assert!((tail - 7.619_853_024_160_593e-24).abs() / tail < 1e-6);
    }

    #[test]
    fn cdf_monotone() {
        let mut prev = phi(-6.0);
        let mut x = -6.0;
        while x <= 6.0 {
            let c = phi(x);
            assert!(c >= prev - 1e-12, "CDF not monotone at {x}");
            prev = c;
            x += 0.01;
        }
    }

    #[test]
    fn inverse_phi_known_quantiles() {
        // Standard z-table values.
        let cases = [
            (0.5, 0.0),
            (0.975, 1.959_963_984_540_054),
            (0.995, 2.575_829_303_548_901),
            (0.841_344_746_068_542_9, 1.0),
            (0.025, -1.959_963_984_540_054),
        ];
        for (p, z) in cases {
            let got = inverse_phi(p).unwrap();
            assert!((got - z).abs() < 5e-7, "Φ⁻¹({p}) = {got}, want {z}");
        }
    }

    #[test]
    fn inverse_phi_round_trips_with_phi() {
        for i in 1..100 {
            let p = i as f64 / 100.0;
            let z = inverse_phi(p).unwrap();
            assert!((phi(z) - p).abs() < 5e-7, "round-trip failed at p = {p}");
        }
    }

    #[test]
    fn inverse_phi_tails() {
        // Deep tails must still work and be symmetric.
        let z = inverse_phi(1e-6).unwrap();
        assert!((z + 4.753_424_3).abs() < 1e-3, "lower tail: {z}");
        let zu = inverse_phi(1.0 - 1e-6).unwrap();
        assert!((z + zu).abs() < 1e-4, "tails not symmetric: {z} vs {zu}");
    }

    #[test]
    fn inverse_phi_rejects_bad_probability() {
        for p in [0.0, 1.0, -0.5, 1.5, f64::NAN] {
            assert!(inverse_phi(p).is_err(), "expected error for p = {p}");
        }
    }

    #[test]
    fn z_for_confidence_standard_levels() {
        assert!((z_for_confidence(0.95).unwrap() - 1.959_963_984_540_054).abs() < 5e-7);
        assert!((z_for_confidence(0.99).unwrap() - 2.575_829_303_548_901).abs() < 5e-7);
        assert!((z_for_confidence(0.90).unwrap() - 1.644_853_626_951_472_7).abs() < 5e-7);
    }

    #[test]
    fn z_for_confidence_rejects_bad_probability() {
        assert!(z_for_confidence(0.0).is_err());
        assert!(z_for_confidence(1.0).is_err());
        assert!(z_for_confidence(-1.0).is_err());
    }

    #[test]
    fn z_is_increasing_in_confidence() {
        let mut prev = 0.0;
        for i in 1..100 {
            let p = i as f64 / 100.0;
            let z = z_for_confidence(p).unwrap();
            assert!(z > prev - 1e-12, "z not increasing at p = {p}");
            prev = z;
        }
    }
}
