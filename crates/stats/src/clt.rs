//! Central-limit-theorem sample sizing (paper §IV-B1, Eqs. 5–6).
//!
//! For independent uniform sampling with replacement, the sample mean of `n`
//! draws is approximately `N(Ȳ, σ²/n)`. To guarantee
//! `Pr(|Ŷ − Ȳ| ≤ ε) ≥ p` the engine needs
//!
//! ```text
//! n = ⌈ (σ · z_p / ε)² ⌉   with   z_p = Φ⁻¹((1 + p)/2).
//! ```
//!
//! The true `σ` is unknown; Digest estimates it from a pilot sample and
//! re-sizes, so these helpers accept an estimated standard deviation.

use crate::error::StatsError;
use crate::normal::z_for_confidence;
use crate::Result;

/// Minimum number of samples the sizing routines will ever report.
///
/// The CLT is meaningless for a handful of samples; classical survey
/// sampling practice (and the pilot phase of Digest) wants a floor so the
/// variance estimate itself is usable.
pub const MIN_SAMPLE_SIZE: usize = 2;

/// Number of i.i.d. samples required so that the sample mean is within
/// `±epsilon` of the population mean with probability `confidence`
/// (paper Eq. 6).
///
/// # Errors
///
/// * [`StatsError::InvalidProbability`] unless `0 < confidence < 1`.
/// * [`StatsError::InvalidParameter`] if `epsilon ≤ 0` or `sigma < 0`, or
///   either is non-finite.
///
/// ```
/// use digest_stats::required_sample_size;
/// // σ = 8, ε = 2, p = 0.95 → n = ⌈(8 · 1.96 / 2)²⌉ = ⌈61.5⌉ = 62.
/// let n = required_sample_size(8.0, 2.0, 0.95).unwrap();
/// assert_eq!(n, 62);
/// ```
pub fn required_sample_size(sigma: f64, epsilon: f64, confidence: f64) -> Result<usize> {
    if !sigma.is_finite() || sigma < 0.0 {
        return Err(StatsError::InvalidParameter {
            what: "sigma",
            value: sigma,
        });
    }
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(StatsError::InvalidParameter {
            what: "epsilon",
            value: epsilon,
        });
    }
    let z = z_for_confidence(confidence)?;
    let raw = (sigma * z / epsilon).powi(2);
    Ok(crate::f64_to_usize_saturating(raw.ceil()).max(MIN_SAMPLE_SIZE))
}

/// Number of i.i.d. samples required to push the *estimator variance* below
/// `target_variance`, i.e. `n = ⌈σ² / v*⌉`.
///
/// Repeated sampling sizes its panel this way: the confidence requirement
/// `(ε, p)` translates to a target estimator variance `v* = (ε / z_p)²`, and
/// the repeated-sampling variance formula (Eq. 10) is solved for `n`.
///
/// # Errors
///
/// [`StatsError::InvalidParameter`] if `variance < 0`,
/// `target_variance ≤ 0`, or either is non-finite.
pub fn required_sample_size_for_variance(variance: f64, target_variance: f64) -> Result<usize> {
    if !variance.is_finite() || variance < 0.0 {
        return Err(StatsError::InvalidParameter {
            what: "variance",
            value: variance,
        });
    }
    if !target_variance.is_finite() || target_variance <= 0.0 {
        return Err(StatsError::InvalidParameter {
            what: "target_variance",
            value: target_variance,
        });
    }
    Ok(crate::f64_to_usize_saturating((variance / target_variance).ceil()).max(MIN_SAMPLE_SIZE))
}

/// Converts a confidence requirement `(ε, p)` into the target estimator
/// variance `v* = (ε / z_p)²` that any unbiased, asymptotically normal
/// estimator must reach (the inversion of the Eq. 6 CLT bound).
///
/// # Errors
///
/// Same domain requirements as [`required_sample_size`].
pub fn target_estimator_variance(epsilon: f64, confidence: f64) -> Result<f64> {
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(StatsError::InvalidParameter {
            what: "epsilon",
            value: epsilon,
        });
    }
    let z = z_for_confidence(confidence)?;
    Ok((epsilon / z).powi(2))
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    #[test]
    fn textbook_sizing() {
        // σ=10, ε=1, p=0.95: n = (10·1.95996)² ≈ 384.1 → 385.
        let n = required_sample_size(10.0, 1.0, 0.95).unwrap();
        assert_eq!(n, 385);
    }

    #[test]
    fn tighter_epsilon_needs_quadratically_more() {
        let n1 = required_sample_size(8.0, 2.0, 0.95).unwrap();
        let n2 = required_sample_size(8.0, 1.0, 0.95).unwrap();
        // Halving ε quadruples n (up to rounding).
        assert!(n2 >= 4 * n1 - 4 && n2 <= 4 * n1 + 4, "n1={n1} n2={n2}");
    }

    #[test]
    fn higher_confidence_needs_more() {
        let n95 = required_sample_size(8.0, 2.0, 0.95).unwrap();
        let n99 = required_sample_size(8.0, 2.0, 0.99).unwrap();
        assert!(n99 > n95);
    }

    #[test]
    fn zero_sigma_gives_floor() {
        assert_eq!(
            required_sample_size(0.0, 1.0, 0.95).unwrap(),
            MIN_SAMPLE_SIZE
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(required_sample_size(-1.0, 1.0, 0.95).is_err());
        assert!(required_sample_size(1.0, 0.0, 0.95).is_err());
        assert!(required_sample_size(1.0, -2.0, 0.95).is_err());
        assert!(required_sample_size(1.0, 1.0, 0.0).is_err());
        assert!(required_sample_size(1.0, 1.0, 1.0).is_err());
        assert!(required_sample_size(f64::NAN, 1.0, 0.95).is_err());
        assert!(required_sample_size(1.0, f64::INFINITY, 0.95).is_err());
    }

    #[test]
    fn variance_sizing_matches_direct_sizing() {
        let sigma = 8.0;
        let (eps, p) = (2.0, 0.95);
        let direct = required_sample_size(sigma, eps, p).unwrap();
        let v = target_estimator_variance(eps, p).unwrap();
        let via_var = required_sample_size_for_variance(sigma * sigma, v).unwrap();
        assert_eq!(direct, via_var);
    }

    #[test]
    fn variance_sizing_rejects_bad_inputs() {
        assert!(required_sample_size_for_variance(-1.0, 1.0).is_err());
        assert!(required_sample_size_for_variance(1.0, 0.0).is_err());
        assert!(required_sample_size_for_variance(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn target_variance_shrinks_with_confidence() {
        let v95 = target_estimator_variance(1.0, 0.95).unwrap();
        let v99 = target_estimator_variance(1.0, 0.99).unwrap();
        assert!(v99 < v95);
    }
}
