//! Error type for the statistics crate.

use std::fmt;

/// Errors produced by the numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A probability argument fell outside its valid open/closed interval.
    InvalidProbability {
        /// The offending value.
        value: f64,
        /// Human-readable description of the expected range.
        expected: &'static str,
    },
    /// A routine received fewer observations than it needs.
    InsufficientData {
        /// Number of observations supplied.
        got: usize,
        /// Minimum number of observations required.
        need: usize,
    },
    /// A matrix was singular (or numerically indistinguishable from
    /// singular) during factorisation.
    SingularMatrix,
    /// Matrix dimensions did not line up for the requested operation.
    DimensionMismatch {
        /// Description of what was expected.
        context: &'static str,
    },
    /// An input that must be finite was NaN or infinite.
    NonFiniteInput {
        /// Which argument was non-finite.
        what: &'static str,
    },
    /// A parameter was outside its legal domain.
    InvalidParameter {
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The iterative optimiser exhausted its iteration budget without
    /// meeting any convergence criterion.
    DidNotConverge {
        /// Number of iterations performed.
        iterations: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidProbability { value, expected } => {
                write!(f, "invalid probability {value}: expected {expected}")
            }
            StatsError::InsufficientData { got, need } => {
                write!(
                    f,
                    "insufficient data: got {got} observations, need at least {need}"
                )
            }
            StatsError::SingularMatrix => write!(f, "matrix is singular to working precision"),
            StatsError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            StatsError::NonFiniteInput { what } => write!(f, "non-finite input: {what}"),
            StatsError::InvalidParameter { what, value } => {
                write!(f, "invalid parameter {what} = {value}")
            }
            StatsError::DidNotConverge { iterations } => {
                write!(f, "did not converge after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StatsError::InvalidProbability {
            value: 1.5,
            expected: "(0, 1)",
        };
        assert!(e.to_string().contains("1.5"));
        assert!(e.to_string().contains("(0, 1)"));

        let e = StatsError::InsufficientData { got: 1, need: 2 };
        assert!(e.to_string().contains("got 1"));

        let e = StatsError::SingularMatrix;
        assert!(e.to_string().contains("singular"));

        let e = StatsError::DidNotConverge { iterations: 42 };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<StatsError>();
    }
}
