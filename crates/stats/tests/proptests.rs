//! Property-based tests of the statistical kernels.

// Tests may panic freely; the workspace deny-lints target library code.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]

use digest_stats::repeated::{combined_variance, min_combined_variance, optimal_partition};
use digest_stats::{
    inverse_phi, phi, required_sample_size, total_variation_distance, DiscreteDistribution,
    PairedMoments, Polynomial, RunningMoments,
};
use proptest::prelude::*;

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, len)
}

proptest! {
    #[test]
    fn welford_matches_naive_mean_and_variance(xs in finite_vec(1..200)) {
        let m = RunningMoments::from_slice(&xs);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        // Relative-ish tolerance for large magnitudes.
        let scale = 1.0 + mean.abs() + var.abs();
        prop_assert!((m.mean() - mean).abs() / scale < 1e-9);
        prop_assert!((m.population_variance() - var).abs() / scale.powi(2) < 1e-6);
    }

    #[test]
    fn welford_merge_is_order_independent(
        xs in finite_vec(1..80),
        ys in finite_vec(1..80),
    ) {
        let mut a = RunningMoments::from_slice(&xs);
        a.merge(&RunningMoments::from_slice(&ys));
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        let b = RunningMoments::from_slice(&all);
        prop_assert_eq!(a.count(), b.count());
        prop_assert!((a.mean() - b.mean()).abs() < 1e-6 * (1.0 + b.mean().abs()));
        prop_assert!(
            (a.sample_variance() - b.sample_variance()).abs()
                < 1e-6 * (1.0 + b.sample_variance())
        );
    }

    #[test]
    fn correlation_always_in_unit_interval(
        pairs in prop::collection::vec((-1e5f64..1e5, -1e5f64..1e5), 2..100)
    ) {
        let mut m = PairedMoments::new();
        for (x, y) in &pairs {
            m.push(*x, *y);
        }
        prop_assert!(m.correlation().abs() <= 1.0);
    }

    #[test]
    fn normal_quantile_round_trips(p in 0.001f64..0.999) {
        let z = inverse_phi(p).unwrap();
        prop_assert!((phi(z) - p).abs() < 1e-9);
    }

    #[test]
    fn sample_size_is_monotone(
        sigma in 0.1f64..100.0,
        eps in 0.01f64..10.0,
        p in 0.5f64..0.99,
    ) {
        let n = required_sample_size(sigma, eps, p).unwrap();
        let n_tighter = required_sample_size(sigma, eps / 2.0, p).unwrap();
        let n_wider_sigma = required_sample_size(sigma * 2.0, eps, p).unwrap();
        prop_assert!(n_tighter >= n);
        prop_assert!(n_wider_sigma >= n);
    }

    #[test]
    fn polynomial_eval_is_horner_consistent(
        origin in -1e3f64..1e3,
        coeffs in prop::collection::vec(-1e3f64..1e3, 1..6),
        t in -1e3f64..1e3,
    ) {
        let p = Polynomial::new(origin, coeffs.clone()).unwrap();
        let x: f64 = t - origin;
        let naive: f64 = coeffs.iter().enumerate().map(|(k, c)| c * x.powi(k as i32)).sum();
        let scale = 1.0 + naive.abs();
        prop_assert!((p.eval(t) - naive).abs() / scale < 1e-9);
    }

    #[test]
    fn polynomial_fit_interpolates_exact_data(
        coeffs in prop::collection::vec(-100.0f64..100.0, 1..4),
    ) {
        let origin = 50.0;
        let truth = Polynomial::new(origin, coeffs).unwrap();
        let ts: Vec<f64> = (0..10).map(|i| 45.0 + f64::from(i)).collect();
        let ys: Vec<f64> = ts.iter().map(|&t| truth.eval(t)).collect();
        let fit =
            Polynomial::fit_least_squares(origin, &ts, &ys, truth.degree()).unwrap();
        for (&t, &y) in ts.iter().zip(ys.iter()) {
            let scale = 1.0 + y.abs();
            prop_assert!((fit.eval(t) - y).abs() / scale < 1e-6);
        }
    }

    #[test]
    fn rpt_variance_never_beats_eq10_minimum(
        n in 2usize..500,
        g_frac in 0.0f64..1.0,
        rho in -0.999f64..0.999,
        sigma2 in 0.01f64..100.0,
    ) {
        let g = ((n as f64) * g_frac) as usize;
        let v = combined_variance(sigma2, n, g, rho).unwrap();
        let vmin = min_combined_variance(sigma2, n, rho).unwrap();
        prop_assert!(v + 1e-12 >= vmin, "v = {v}, vmin = {vmin}");
        // And never worse than independent sampling's σ²/n at the optimum.
        let gopt = optimal_partition(n, rho).retained;
        let vopt = combined_variance(sigma2, n, gopt, rho).unwrap();
        prop_assert!(vopt <= sigma2 / n as f64 + 1e-12);
    }

    #[test]
    fn tvd_is_a_bounded_metric(
        w1 in prop::collection::vec(0.001f64..10.0, 3..20),
    ) {
        let w2: Vec<f64> = w1.iter().rev().copied().collect();
        let a = DiscreteDistribution::from_weights(&w1).unwrap();
        let b = DiscreteDistribution::from_weights(&w2).unwrap();
        let ab = total_variation_distance(&a, &b).unwrap();
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((total_variation_distance(&b, &a).unwrap() - ab).abs() < 1e-12);
        prop_assert!(total_variation_distance(&a, &a).unwrap() < 1e-12);
    }
}

// Pins on the Eq. 9 partition used by the repeated partial-testing
// estimator: the retained share stays in `[⌈n/2⌉, n]` for every
// correlation, the partition always covers the panel exactly, and the
// combined estimator never does worse than independent sampling's σ²/n.
proptest! {
    #[test]
    fn optimal_partition_stays_in_the_eq9_band(
        n in 1usize..2000,
        rho in -0.999f64..0.999,
        sigma2 in 0.01f64..100.0,
    ) {
        let p = optimal_partition(n, rho);
        prop_assert_eq!(p.retained + p.fresh, n);
        prop_assert_eq!(p.total(), n);
        let half_up = n.div_ceil(2);
        prop_assert!(
            p.retained >= half_up,
            "g = {} below ⌈n/2⌉ = {half_up} for n = {n}, ρ = {rho}",
            p.retained
        );
        prop_assert!(p.retained <= n);
        if n >= 2 {
            // |ρ| < 1 here, so the panel must keep at least one fresh
            // sample to repair itself against churn.
            prop_assert!(p.fresh >= 1, "no fresh samples at n = {n}, ρ = {rho}");
        }

        let indep = sigma2 / n as f64;
        let v = combined_variance(sigma2, n, p.retained, rho).unwrap();
        prop_assert!(
            v <= indep + 1e-12,
            "combined variance {v} at g_opt exceeds independent {indep}"
        );
        let vmin = min_combined_variance(sigma2, n, rho).unwrap();
        prop_assert!(vmin <= indep + 1e-12);
        prop_assert!(vmin <= v + 1e-12);
    }
}
