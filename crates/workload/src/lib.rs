//! # digest-workload
//!
//! Synthetic reproductions of the paper's two evaluation datasets
//! (Table II). The originals — a JPL/NASA weather-station trace and a
//! SETI@home resource trace — are not publicly available, so this crate
//! generates statistical stand-ins calibrated to everything the Digest
//! algorithms actually consume:
//!
//! * the cross-sectional value dispersion `σ` (drives CLT sample sizes),
//! * the unit-level occasion-to-occasion correlation `ρ` (drives repeated
//!   sampling's gains and the optimal replacement policy),
//! * the smoothness of the aggregate `X[t]` (drives `PRED-k` skip rates),
//! * the churn regime (drives forced sample replacement).
//!
//! [`temperature`] models ~8 000 sensor units on a 530-node mesh over 18
//! months at two updates per day (`ρ ≈ 0.89`, `σ ≈ 8`); [`memory`] models
//! 1 000 computing units on an 820-node power-law overlay over one hour of
//! continuous updates with heavy node churn (`ρ ≈ 0.68`, `σ ≈ 10`).
//! [`calibrate`] measures the realised statistics so Table II can be
//! *verified* rather than assumed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod calibrate;
pub mod memory;
pub mod scenario;
pub mod temperature;
pub mod traffic;

pub use calibrate::{measure_table2, Table2Stats};
pub use memory::{MemoryConfig, MemoryWorkload};
pub use scenario::Workload;
pub use temperature::{TemperatureConfig, TemperatureWorkload};
pub use traffic::{
    PrecisionTier, PredicateClass, QuerySpec, TrafficConfig, TrafficEvent, TrafficGenerator,
};
