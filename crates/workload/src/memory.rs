//! The MEMORY dataset (Table II, right column).
//!
//! Paper figures: 1 000 computing units on 820 churning nodes (power-law
//! overlay), one hour of recording with continuous updates, `ρ = 0.68`,
//! `σ̂ = 10`, 95 445 update records. With 1 000 units over 3 600 one-second
//! ticks that record count implies each unit updates with probability
//! ≈ 0.0265 per tick — our generator's default `update_prob`.
//!
//! Generator model: per unit, available memory follows
//! `x_u = mean + offset_u + a_u` with a per-*update* AR(1) evolution of
//! `a_u` (a unit that does not update keeps its value — that, plus churn,
//! is what pulls the occasion-to-occasion correlation down to ≈ 0.68
//! despite per-update persistence). Node churn removes whole fragments
//! (the unit's records leave with the node) and joins add new nodes with
//! fresh units — exercising the repeated-sampling forced-replacement path
//! heavily, as SETI@home did in the paper.

use crate::scenario::Workload;
use crate::temperature::gaussian;
use digest_db::{Expr, P2PDatabase, Schema, Tuple, TupleHandle};
use digest_net::{topology, ChurnConfig, ChurnEvent, ChurnProcess, Graph};
use rand::SeedableRng;
use rand::{Rng, RngCore};
use rand_chacha::ChaCha8Rng;

/// Configuration of the MEMORY generator.
#[derive(Debug, Clone, Copy)]
pub struct MemoryConfig {
    /// Number of computing units at start (paper: 1 000).
    pub units: usize,
    /// Number of overlay nodes at start (paper: 820).
    pub nodes: usize,
    /// Barabási–Albert attachment parameter for the power-law overlay.
    pub attachment: usize,
    /// Recording duration in internal 1 s steps (paper: 1 h = 3 600).
    pub ticks: u64,
    /// Internal 1 s steps folded into one workload tick (= one
    /// snapshot-eligible occasion). Updates are sparse per second, so the
    /// occasion grain at which queries can usefully re-probe is coarser —
    /// 40 s by default, the mean per-unit update spacing.
    pub seconds_per_tick: u64,
    /// Per-unit per-tick probability of an update (calibrated to the
    /// Table II record count: 95 445 / (1 000 × 3 600) ≈ 0.0265).
    pub update_prob: f64,
    /// Mean available memory (arbitrary MB units).
    pub mean: f64,
    /// Std-dev of the per-unit constant offset.
    pub offset_std: f64,
    /// Stationary std-dev of the per-unit AR(1) component.
    pub ar_std: f64,
    /// Per-update AR(1) coefficient.
    pub ar_coeff: f64,
    /// Amplitude of the slow common load swing.
    pub load_amplitude: f64,
    /// Period of the load swing, in ticks.
    pub load_period: f64,
    /// Per-node per-tick probability of leaving.
    pub leave_prob: f64,
    /// Expected node joins per tick.
    pub join_rate: f64,
    /// Units created per joining node.
    pub units_per_join: usize,
    /// Seed for the generator's RNG.
    pub seed: u64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        Self::paper_scale()
    }
}

impl MemoryConfig {
    /// The full Table II scale.
    #[must_use]
    pub fn paper_scale() -> Self {
        Self {
            units: 1_000,
            nodes: 820,
            attachment: 2,
            ticks: 3_600,
            seconds_per_tick: 40,
            update_prob: 0.026_5,
            mean: 512.0,
            offset_std: 5.5,
            ar_std: 69.75_f64.sqrt(),
            ar_coeff: 0.5,
            load_amplitude: 6.0,
            load_period: 900.0,
            leave_prob: 0.000_2,
            join_rate: 0.164,
            units_per_join: 1,
            seed: 0x5E71,
        }
    }

    /// Scaled-down configuration for unit tests.
    #[must_use]
    pub fn reduced(units: usize, nodes: usize, ticks: u64) -> Self {
        Self {
            units,
            nodes,
            ticks,
            ..Self::paper_scale()
        }
    }
}

struct Unit {
    handle: TupleHandle,
    offset: f64,
    ar: f64,
}

/// The live MEMORY scenario.
pub struct MemoryWorkload {
    config: MemoryConfig,
    graph: Graph,
    db: P2PDatabase,
    expr: Expr,
    units: Vec<Unit>,
    churn: ChurnProcess,
    rng: ChaCha8Rng,
    tick: u64,
    seconds: u64,
    update_records: u64,
    churn_events: u64,
}

impl MemoryWorkload {
    /// Builds the scenario at tick 0.
    ///
    /// # Panics
    ///
    /// Panics on impossible configurations (e.g. `nodes ≤ attachment`);
    /// the defaults are always valid.
    #[must_use]
    pub fn new(config: MemoryConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let graph = topology::barabasi_albert(config.nodes, config.attachment, &mut rng)
            .expect("valid BA parameters");
        let mut db = P2PDatabase::new(Schema::single("memory"));
        for v in graph.nodes() {
            db.register_node(v);
        }
        let expr = Expr::first_attr(db.schema());
        let node_ids: Vec<_> = graph.nodes().collect();

        let mut units = Vec::with_capacity(config.units);
        for i in 0..config.units {
            let node = node_ids[i % node_ids.len()];
            let offset = config.offset_std * gaussian(&mut rng);
            let ar = config.ar_std * gaussian(&mut rng);
            let value = (config.mean + offset + ar).max(0.0);
            let handle = db
                .insert(node, Tuple::single(value))
                .expect("node registered");
            units.push(Unit { handle, offset, ar });
        }

        let churn = ChurnProcess::new(ChurnConfig {
            leave_prob: config.leave_prob,
            join_rate: config.join_rate,
            attach_links: config.attachment.max(1),
            preferential: true,
            min_nodes: 8,
            repair_partitions: true,
        })
        .expect("valid churn config");

        Self {
            config,
            graph,
            db,
            expr,
            units,
            churn,
            rng,
            tick: 0,
            seconds: 0,
            update_records: 0,
            churn_events: 0,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Total update records generated so far (the Table II tuple count).
    #[must_use]
    pub fn update_records(&self) -> u64 {
        self.update_records
    }

    /// Total churn (join + leave) events so far.
    #[must_use]
    pub fn churn_events(&self) -> u64 {
        self.churn_events
    }

    /// One internal second: churn, then sparse autonomous value updates.
    fn second(&mut self) {
        self.seconds += 1;

        // 1. Churn.
        let events = self.churn.step(&mut self.graph, &mut self.rng);
        self.churn_events += events.len() as u64;
        for event in events {
            match event {
                ChurnEvent::Left(node) => {
                    if self.db.has_node(node) {
                        self.db.remove_node(node).expect("fragment existed");
                    }
                    self.units.retain(|u| u.handle.node != node);
                }
                ChurnEvent::Joined(node) => {
                    self.db.register_node(node);
                    for _ in 0..self.config.units_per_join {
                        let offset = self.config.offset_std * gaussian(&mut self.rng);
                        let ar = self.config.ar_std * gaussian(&mut self.rng);
                        let value = (self.config.mean + offset + ar).max(0.0);
                        let handle = self
                            .db
                            .insert(node, Tuple::single(value))
                            .expect("node just registered");
                        self.units.push(Unit { handle, offset, ar });
                        self.update_records += 1;
                    }
                }
            }
        }

        // 2. Sparse value updates.
        let load = self.config.load_amplitude
            * (2.0 * std::f64::consts::PI * self.seconds as f64 / self.config.load_period).sin();
        let innovation_std = self.config.ar_std * (1.0 - self.config.ar_coeff.powi(2)).sqrt();
        for unit in &mut self.units {
            if !self.rng.gen_bool(self.config.update_prob) {
                continue;
            }
            unit.ar = self.config.ar_coeff * unit.ar + innovation_std * gaussian(&mut self.rng);
            let value = (self.config.mean + load + unit.offset + unit.ar).max(0.0);
            self.db
                .update(unit.handle, &[value])
                .expect("live unit handle");
            self.update_records += 1;
        }
    }
}

impl Workload for MemoryWorkload {
    fn name(&self) -> &str {
        "MEMORY"
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn db(&self) -> &P2PDatabase {
        &self.db
    }

    fn expr(&self) -> &Expr {
        &self.expr
    }

    fn current_tick(&self) -> u64 {
        self.tick
    }

    fn duration(&self) -> u64 {
        self.config.ticks / self.config.seconds_per_tick.max(1)
    }

    fn advance(&mut self, _rng: &mut dyn RngCore) {
        self.tick += 1;
        for _ in 0..self.config.seconds_per_tick.max(1) {
            self.second();
        }
    }

    fn exact_aggregate(&self) -> f64 {
        self.db.exact_avg(&self.expr).expect("non-empty relation")
    }

    fn sigma_ref(&self) -> f64 {
        (self.config.offset_std.powi(2) + self.config.ar_std.powi(2)).sqrt()
    }

    fn rho_ref(&self) -> f64 {
        0.68
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MemoryWorkload {
        MemoryWorkload::new(MemoryConfig::reduced(100, 50, 200))
    }

    #[test]
    fn construction_matches_config() {
        let w = small();
        assert_eq!(w.graph().node_count(), 50);
        assert_eq!(w.db().total_tuples(), 100);
        assert_eq!(w.name(), "MEMORY");
        assert!(w.graph().is_connected());
    }

    #[test]
    fn paper_scale_matches_table2() {
        let cfg = MemoryConfig::paper_scale();
        assert_eq!(cfg.units, 1_000);
        assert_eq!(cfg.nodes, 820);
        assert_eq!(cfg.ticks, 3_600);
        // Expected update records ≈ 95 445 (Table II).
        let expected = cfg.units as f64 * cfg.ticks as f64 * cfg.update_prob;
        assert!(
            (expected - 95_400.0).abs() < 1_000.0,
            "expected records = {expected}"
        );
    }

    #[test]
    fn updates_are_partial_per_occasion() {
        // One occasion = 40 s; each unit updates w.p. 1 − (1−p)⁴⁰ ≈ 0.66,
        // so a nontrivial fraction of values must stay *unchanged* (that
        // residual stickiness is part of the ρ calibration).
        let mut w = MemoryWorkload::new(MemoryConfig {
            leave_prob: 0.0, // isolate updates from churn for this check
            join_rate: 0.0,
            ..MemoryConfig::reduced(200, 50, 400)
        });
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let before: Vec<f64> = w.db().iter().map(|(_, t)| t.value(0).unwrap()).collect();
        w.advance(&mut rng);
        let after: Vec<f64> = w.db().iter().map(|(_, t)| t.value(0).unwrap()).collect();
        assert_eq!(before.len(), after.len());
        let changed = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        assert!(
            changed > 80,
            "most units update per occasion, changed = {changed}"
        );
        assert!(
            changed < 190,
            "some units must hold their value, changed = {changed}"
        );
    }

    #[test]
    fn churn_replaces_membership_over_time() {
        let mut w = MemoryWorkload::new(MemoryConfig {
            leave_prob: 0.01,
            join_rate: 0.5,
            ..MemoryConfig::reduced(100, 50, 200)
        });
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            w.advance(&mut rng);
        }
        assert!(w.churn_events() > 20, "churn events = {}", w.churn_events());
        assert!(w.graph().is_connected());
        // Units and fragments stay consistent.
        for (handle, _) in w.db().iter() {
            assert!(w.graph().contains(handle.node), "fragment on departed node");
        }
        assert!(w.db().total_tuples() > 0);
    }

    #[test]
    fn values_stay_non_negative() {
        let mut w = small();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..50 {
            w.advance(&mut rng);
            for (_, t) in w.db().iter() {
                assert!(t.value(0).unwrap() >= 0.0);
            }
        }
    }

    #[test]
    fn sigma_ref_hits_target() {
        let w = small();
        assert!(
            (w.sigma_ref() - 10.0).abs() < 0.01,
            "σ_ref = {}",
            w.sigma_ref()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut w = small();
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            for _ in 0..20 {
                w.advance(&mut rng);
            }
            (
                w.exact_aggregate(),
                w.update_records(),
                w.db().total_tuples(),
            )
        };
        assert_eq!(run(), run());
    }
}
