//! The interface a generated dataset exposes to the simulator.

use digest_db::{Expr, P2PDatabase};
use digest_net::Graph;
use rand::RngCore;

/// A live, evolving scenario: overlay + database + update process.
pub trait Workload {
    /// Dataset name for experiment tables (`"TEMPERATURE"`, `"MEMORY"`).
    fn name(&self) -> &str;

    /// The overlay network in its current state.
    fn graph(&self) -> &Graph;

    /// The database in its current state.
    fn db(&self) -> &P2PDatabase;

    /// The query expression the paper's experiments aggregate
    /// (`AVG(a)` over the single recorded attribute).
    fn expr(&self) -> &Expr;

    /// The current tick (starts at 0, advanced by [`Workload::advance`]).
    fn current_tick(&self) -> u64;

    /// Total planned duration in ticks (the recording duration of the
    /// corresponding dataset).
    fn duration(&self) -> u64;

    /// Advances time one tick: applies every autonomous value update and
    /// any churn for the new tick.
    fn advance(&mut self, rng: &mut dyn RngCore);

    /// The next tick (strictly after [`Workload::current_tick`]) at
    /// which this workload has autonomous activity — value updates or
    /// churn — or `None` when it is active every tick.
    ///
    /// This is a *contract* with the event-driven runner: a workload
    /// returning sparse activity promises that advancing through the
    /// quiet ticks in between neither changes observable state nor
    /// consumes randomness. The default (`None`, dense) is always safe:
    /// it makes the event-driven runner execute every tick, which is
    /// byte-identical to the classic tick loop.
    fn next_activity(&self) -> Option<u64> {
        None
    }

    /// Advances until [`Workload::current_tick`] reaches `tick + 1`
    /// (the state the classic tick loop has after its iteration
    /// `tick`). The default replays [`Workload::advance`] once per
    /// elapsed tick; sparse workloads may override it to jump the
    /// quiet span in O(activity) instead of O(ticks).
    fn advance_to(&mut self, tick: u64, rng: &mut dyn RngCore) {
        while self.current_tick() <= tick {
            self.advance(rng);
        }
    }

    /// Oracle: the exact current aggregate `X[t]` (AVG of
    /// [`Workload::expr`]); ground truth for precision verification.
    fn exact_aggregate(&self) -> f64;

    /// The dataset's reference cross-sectional standard deviation `σ̂`
    /// (the Table II figure experiments normalise against).
    fn sigma_ref(&self) -> f64;

    /// The dataset's reference occasion-to-occasion correlation `ρ`.
    fn rho_ref(&self) -> f64;
}
