//! Measurement of the Table II statistics on a live workload.
//!
//! The paper *reports* `ρ` and `σ̂` for its datasets; our generators are
//! *calibrated* to them. This module closes the loop: it runs a workload
//! forward, measures the realised cross-sectional dispersion and the
//! occasion-to-occasion value correlation exactly the way the estimators
//! experience them, and reports the numbers the `exp_table2` experiment
//! prints next to the paper's.

use crate::scenario::Workload;
use digest_db::TupleHandle;
use digest_stats::{PairedMoments, RunningMoments};
use rand::RngCore;
use std::collections::BTreeMap;

/// Realised dataset statistics.
#[derive(Debug, Clone, Copy)]
pub struct Table2Stats {
    /// Number of tuples currently stored.
    pub tuples: usize,
    /// Number of overlay nodes.
    pub nodes: usize,
    /// Mean cross-sectional standard deviation `σ̂` over the measured
    /// occasions.
    pub sigma: f64,
    /// Mean cross-unit Pearson correlation between values at consecutive
    /// measurement occasions (`ρ`).
    pub rho: f64,
    /// Occasions measured.
    pub occasions: u64,
}

/// Advances `w` for `occasions × occasion_gap` ticks, sampling the full
/// value vector every `occasion_gap` ticks, and measures `σ̂` and `ρ`.
///
/// Tuples created or destroyed between two occasions are excluded from
/// that pair's correlation (exactly as repeated sampling can only regress
/// surviving panel members).
pub fn measure_table2<W: Workload>(
    w: &mut W,
    occasions: u64,
    occasion_gap: u64,
    rng: &mut dyn RngCore,
) -> Table2Stats {
    let mut sigma_acc = RunningMoments::new();
    let mut rho_acc = RunningMoments::new();
    let mut prev: Option<BTreeMap<TupleHandle, f64>> = None;

    for _ in 0..occasions {
        for _ in 0..occasion_gap {
            w.advance(rng);
        }
        // Snapshot all values.
        let mut snapshot: BTreeMap<TupleHandle, f64> = BTreeMap::new();
        let mut cross = RunningMoments::new();
        for (handle, tuple) in w.db().iter() {
            if let Ok(v) = w.expr().eval(tuple) {
                snapshot.insert(handle, v);
                cross.push(v);
            }
        }
        sigma_acc.push(cross.sample_std());

        if let Some(prev_map) = &prev {
            let mut pairs = PairedMoments::new();
            for (handle, &cur) in &snapshot {
                if let Some(&old) = prev_map.get(handle) {
                    pairs.push(old, cur);
                }
            }
            if pairs.count() >= 8 {
                rho_acc.push(pairs.correlation());
            }
        }
        prev = Some(snapshot);
    }

    Table2Stats {
        tuples: w.db().total_tuples(),
        nodes: w.graph().node_count(),
        sigma: sigma_acc.mean(),
        rho: rho_acc.mean(),
        occasions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{MemoryConfig, MemoryWorkload};
    use crate::temperature::{TemperatureConfig, TemperatureWorkload};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn temperature_measured_stats_match_calibration() {
        let mut w = TemperatureWorkload::new(TemperatureConfig::reduced(1_000, 5, 8, 100));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let stats = measure_table2(&mut w, 40, 1, &mut rng);
        assert!((stats.sigma - 8.0).abs() < 1.0, "σ = {}", stats.sigma);
        assert!((stats.rho - 0.89).abs() < 0.04, "ρ = {}", stats.rho);
        assert_eq!(stats.nodes, 40);
        assert_eq!(stats.tuples, 1_000);
    }

    #[test]
    fn memory_measured_stats_are_in_band() {
        let mut w = MemoryWorkload::new(MemoryConfig::reduced(800, 100, 4_000));
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        // One workload tick is already one 40 s occasion.
        let stats = measure_table2(&mut w, 60, 1, &mut rng);
        assert!((stats.sigma - 10.0).abs() < 1.5, "σ = {}", stats.sigma);
        assert!(stats.rho > 0.4 && stats.rho < 0.9, "ρ = {}", stats.rho);
    }
}
