//! Heavy-traffic multi-query arrival process.
//!
//! The paper evaluates one continuous query at a time; the serving-engine
//! experiments need the regime its cost metric actually targets — many
//! concurrent `(δ, ε, p)` contracts arriving and departing over a shared
//! overlay. This module generates that traffic as *query specs*, not
//! engine objects: Poisson arrivals (Knuth's product-of-uniforms method
//! driven by the caller's RNG), geometric lifetimes, a skewed precision
//! mix (most queries loose, a demanding few tight — the mix that makes
//! round coalescing interesting, since the tightest member sizes the
//! shared panel), and predicate overlap classes. Consumers (bench, CLI,
//! tests) materialise concrete `ContinuousQuery` objects from the specs,
//! keeping this crate free of a dependency on the engine layer.

use rand::RngCore;
use std::collections::BTreeMap;

/// 2⁻⁵³ — turns a 53-bit integer into a uniform f64 in `[0, 1)`.
const UNIT: f64 = 1.0 / (1u64 << 53) as f64;

fn uniform(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * UNIT
}

/// Draws a Poisson variate with mean `lambda` (Knuth's method; fine for
/// the small per-tick arrival rates traffic generation uses).
fn poisson(lambda: f64, rng: &mut dyn RngCore) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    let threshold = (-lambda).exp();
    let mut count = 0u64;
    let mut product = 1.0;
    loop {
        product *= uniform(rng);
        if product <= threshold || count >= 1_000 {
            return count;
        }
        count += 1;
    }
}

/// Precision tier of an arriving query: the skewed δ/ε mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PrecisionTier {
    /// Loose contract: 2× the base δ/ε at p = 0.90 (the bulk of traffic).
    Loose,
    /// The base contract at p = 0.95.
    Medium,
    /// Tight contract: half the base δ/ε at p = 0.99 (the demanding few
    /// that end up sizing shared panels).
    Tight,
}

/// Predicate overlap class of an arriving query. Classes describe *which*
/// selection the consumer should attach, so queries in the same class
/// overlap (can reuse each other's qualifying samples) while classes
/// differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PredicateClass {
    /// No `WHERE` clause (selectivity 1).
    Unfiltered,
    /// A wide selection: values above the population mean (~half qualify).
    AboveMean,
    /// A narrow selection: values in the upper tail (~1/6 qualify).
    UpperTail,
}

/// One arriving query's contract, in units of the base precision.
#[derive(Debug, Clone, Copy)]
pub struct QuerySpec {
    /// Stable serial of this query within the run (departures refer to
    /// it).
    pub serial: u64,
    /// Resolution threshold δ.
    pub delta: f64,
    /// CI half-width ε.
    pub epsilon: f64,
    /// Confidence level p.
    pub confidence: f64,
    /// Which precision tier produced the contract.
    pub tier: PrecisionTier,
    /// Which predicate the consumer should attach.
    pub predicate: PredicateClass,
}

/// One traffic event at a tick boundary.
#[derive(Debug, Clone, Copy)]
pub enum TrafficEvent {
    /// A new query arrives with the given contract.
    Arrive(QuerySpec),
    /// The query with this serial departs.
    Depart(u64),
}

/// Configuration of the heavy-traffic generator.
#[derive(Debug, Clone, Copy)]
pub struct TrafficConfig {
    /// Mean query arrivals per tick (Poisson).
    pub arrival_rate: f64,
    /// Mean query lifetime in ticks (geometric departures; each active
    /// query departs with probability `1 / mean_lifetime` per tick).
    pub mean_lifetime: f64,
    /// Hard cap on concurrently active queries (arrivals beyond it are
    /// dropped, which models an admission-controlled serving engine).
    pub max_concurrent: usize,
    /// Base resolution δ the tiers scale.
    pub base_delta: f64,
    /// Base half-width ε the tiers scale.
    pub base_epsilon: f64,
    /// Fraction of arrivals carrying a predicate (split evenly between
    /// the two filtered classes).
    pub predicate_fraction: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self {
            arrival_rate: 0.5,
            mean_lifetime: 200.0,
            max_concurrent: 64,
            base_delta: 2.0,
            base_epsilon: 2.0,
            predicate_fraction: 0.25,
        }
    }
}

/// The heavy-traffic query arrival/departure process. Deterministic given
/// the caller's RNG stream: active queries are tracked in serial order,
/// so the same seed always yields the same event sequence.
#[derive(Debug)]
pub struct TrafficGenerator {
    config: TrafficConfig,
    next_serial: u64,
    /// Active serials → remaining-lifetime state (unit: the spec itself,
    /// kept so consumers can re-query what is live).
    active: BTreeMap<u64, QuerySpec>,
}

impl TrafficGenerator {
    /// Builds a generator; queries start arriving on the first
    /// [`TrafficGenerator::advance`] call.
    #[must_use]
    pub fn new(config: TrafficConfig) -> Self {
        Self {
            config,
            next_serial: 0,
            active: BTreeMap::new(),
        }
    }

    /// Number of currently active queries.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// The specs of all active queries, ascending by serial.
    #[must_use]
    pub fn active(&self) -> Vec<QuerySpec> {
        self.active.values().copied().collect()
    }

    /// Draws the tier for one arrival: 60 % loose, 30 % medium, 10 %
    /// tight — the skew that makes the tight tail dominate shared panel
    /// sizing.
    fn draw_tier(rng: &mut dyn RngCore) -> PrecisionTier {
        let u = uniform(rng);
        if u < 0.6 {
            PrecisionTier::Loose
        } else if u < 0.9 {
            PrecisionTier::Medium
        } else {
            PrecisionTier::Tight
        }
    }

    fn draw_predicate(&self, rng: &mut dyn RngCore) -> PredicateClass {
        let u = uniform(rng);
        if u >= self.config.predicate_fraction {
            PredicateClass::Unfiltered
        } else if u < self.config.predicate_fraction / 2.0 {
            PredicateClass::AboveMean
        } else {
            PredicateClass::UpperTail
        }
    }

    fn spec_for_tier(
        &self,
        serial: u64,
        tier: PrecisionTier,
        predicate: PredicateClass,
    ) -> QuerySpec {
        let (scale, confidence) = match tier {
            PrecisionTier::Loose => (2.0, 0.90),
            PrecisionTier::Medium => (1.0, 0.95),
            PrecisionTier::Tight => (0.5, 0.99),
        };
        QuerySpec {
            serial,
            delta: self.config.base_delta * scale,
            epsilon: self.config.base_epsilon * scale,
            confidence,
            tier,
            predicate,
        }
    }

    /// Advances the process one tick: departures first (each active query
    /// departs with probability `1/mean_lifetime`, drawn in serial order),
    /// then Poisson-many arrivals, capped at `max_concurrent`. Events are
    /// returned in the order they were drawn, so replaying the same RNG
    /// stream replays the same traffic.
    pub fn advance(&mut self, rng: &mut dyn RngCore) -> Vec<TrafficEvent> {
        let mut events = Vec::new();
        let depart_prob = if self.config.mean_lifetime > 0.0 {
            (1.0 / self.config.mean_lifetime).min(1.0)
        } else {
            1.0
        };
        let departing: Vec<u64> = self
            .active
            .keys()
            .copied()
            .filter(|_| uniform(rng) < depart_prob)
            .collect();
        for serial in departing {
            self.active.remove(&serial);
            events.push(TrafficEvent::Depart(serial));
        }
        let arrivals = poisson(self.config.arrival_rate, rng);
        for _ in 0..arrivals {
            // Draw the spec's randomness even when over the cap so the
            // RNG stream (and thus every later event) is independent of
            // admission decisions.
            let tier = Self::draw_tier(rng);
            let predicate = self.draw_predicate(rng);
            if self.active.len() >= self.config.max_concurrent {
                continue;
            }
            let serial = self.next_serial;
            self.next_serial += 1;
            let spec = self.spec_for_tier(serial, tier, predicate);
            self.active.insert(serial, spec);
            events.push(TrafficEvent::Arrive(spec));
        }
        events
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run(seed: u64, ticks: u64, config: TrafficConfig) -> (Vec<String>, TrafficGenerator) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut gen = TrafficGenerator::new(config);
        let mut log = Vec::new();
        for _ in 0..ticks {
            for e in gen.advance(&mut rng) {
                log.push(format!("{e:?}"));
            }
        }
        (log, gen)
    }

    #[test]
    fn arrival_rate_is_respected_on_average() {
        let config = TrafficConfig {
            arrival_rate: 0.5,
            mean_lifetime: f64::INFINITY,
            max_concurrent: usize::MAX,
            ..TrafficConfig::default()
        };
        let (log, gen) = run(1, 2_000, config);
        let arrivals = log.iter().filter(|l| l.starts_with("Arrive")).count();
        assert_eq!(arrivals, gen.active_count(), "nobody departs");
        // Poisson(0.5) over 2000 ticks: mean 1000, σ ≈ 32.
        assert!((800..1200).contains(&arrivals), "arrivals {arrivals}");
    }

    #[test]
    fn departures_thin_the_active_set() {
        let config = TrafficConfig {
            arrival_rate: 1.0,
            mean_lifetime: 10.0,
            max_concurrent: usize::MAX,
            ..TrafficConfig::default()
        };
        let (log, gen) = run(2, 2_000, config);
        let departures = log.iter().filter(|l| l.starts_with("Depart")).count();
        assert!(departures > 0);
        // Steady state of an M/M/∞-like queue: ≈ rate × lifetime = 10.
        assert!(
            gen.active_count() < 40,
            "active {} should hover near 10",
            gen.active_count()
        );
    }

    #[test]
    fn max_concurrent_caps_admission() {
        let config = TrafficConfig {
            arrival_rate: 2.0,
            mean_lifetime: f64::INFINITY,
            max_concurrent: 5,
            ..TrafficConfig::default()
        };
        let (_, gen) = run(3, 500, config);
        assert_eq!(gen.active_count(), 5);
    }

    #[test]
    fn same_seed_replays_the_same_traffic() {
        let config = TrafficConfig::default();
        let (a, _) = run(7, 500, config);
        let (b, _) = run(7, 500, config);
        assert_eq!(a, b);
        let (c, _) = run(8, 500, config);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn tier_mix_is_skewed_loose_heavy() {
        let config = TrafficConfig {
            arrival_rate: 1.0,
            mean_lifetime: f64::INFINITY,
            max_concurrent: usize::MAX,
            ..TrafficConfig::default()
        };
        let (_, gen) = run(4, 3_000, config);
        let specs = gen.active();
        let loose = specs
            .iter()
            .filter(|s| s.tier == PrecisionTier::Loose)
            .count();
        let tight = specs
            .iter()
            .filter(|s| s.tier == PrecisionTier::Tight)
            .count();
        assert!(loose > specs.len() / 2, "loose {loose}/{}", specs.len());
        assert!(tight < specs.len() / 5, "tight {tight}/{}", specs.len());
        // Tight contracts really are tighter.
        let t = specs.iter().find(|s| s.tier == PrecisionTier::Tight);
        if let Some(t) = t {
            assert_eq!(t.epsilon, 1.0);
            assert_eq!(t.confidence, 0.99);
        }
    }

    #[test]
    fn admission_drops_do_not_shift_the_stream() {
        // Same seed, different caps: the serial assigned to any admitted
        // arrival may differ, but departures and arrival *timing* derive
        // from the same RNG stream — so the uncapped run's event count is
        // always ≥ the capped run's, and both replay deterministically.
        let base = TrafficConfig {
            arrival_rate: 1.0,
            mean_lifetime: 20.0,
            ..TrafficConfig::default()
        };
        let (capped, _) = run(
            9,
            300,
            TrafficConfig {
                max_concurrent: 3,
                ..base
            },
        );
        let (uncapped, _) = run(
            9,
            300,
            TrafficConfig {
                max_concurrent: usize::MAX,
                ..base
            },
        );
        assert!(uncapped.len() >= capped.len());
    }
}
