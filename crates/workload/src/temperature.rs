//! The TEMPERATURE dataset (Table II, left column).
//!
//! Paper figures: 8 000 sensor units on 530 near-static nodes (we use a
//! 10 × 53 mesh), 18 months of recording at two updates per day
//! (1 080 ticks of 12 h), `ρ = 0.89`, `σ̂ = 8`, 8 640 000 update records
//! (= 8 000 units × 1 080 occasions — every unit updates every tick).
//!
//! Generator model, per unit `u` at tick `t`:
//!
//! ```text
//! x_u(t) = base(t) + offset_u + a_u(t)
//! base(t) = mean + A_s sin(2πt/P_s) + A_d cos(πt) + drift(t)
//! a_u(t)  = ρ_ar a_u(t−1) + σ_inno ξ          (AR(1))
//! ```
//!
//! Calibration: cross-sectional variance `σ² = σ_off² + σ_a²` and
//! cross-unit lag-1 correlation `ρ = (σ_off² + ρ_ar σ_a²)/σ²`. The
//! defaults solve these for the Table II targets:
//! `σ_off² = 36, σ_a² = 28, ρ_ar ≈ 0.749` → `σ = 8`, `ρ = 0.89`.

use crate::scenario::Workload;
use digest_db::{Expr, P2PDatabase, Schema, Tuple, TupleHandle};
use digest_net::{topology, Graph, NodeId};
use rand::SeedableRng;
use rand::{Rng, RngCore};
use rand_chacha::ChaCha8Rng;

/// Configuration of the TEMPERATURE generator.
#[derive(Debug, Clone, Copy)]
pub struct TemperatureConfig {
    /// Number of sensor units (paper: 8 000).
    pub units: usize,
    /// Mesh dimensions; `rows × cols` nodes (paper: 530 → 10 × 53).
    pub mesh_rows: usize,
    /// Mesh columns.
    pub mesh_cols: usize,
    /// Recording duration in ticks of 12 h (paper: 18 months ≈ 1 080).
    pub ticks: u64,
    /// Long-run mean temperature (°F).
    pub mean: f64,
    /// Seasonal amplitude `A_s` (°F).
    pub seasonal_amplitude: f64,
    /// Seasonal period in ticks (1 year at 2 ticks/day = 730).
    pub seasonal_period: f64,
    /// Day/night alternation amplitude `A_d` (°F).
    pub diurnal_amplitude: f64,
    /// Std-dev of the slow random-walk drift added to the base per tick.
    pub drift_std: f64,
    /// Std-dev of the per-unit constant offset (`σ_off`).
    pub offset_std: f64,
    /// Stationary std-dev of the per-unit AR(1) component (`σ_a`).
    pub ar_std: f64,
    /// AR(1) coefficient (`ρ_ar`).
    pub ar_coeff: f64,
    /// Seed for the generator's own RNG (world construction + updates).
    pub seed: u64,
}

impl Default for TemperatureConfig {
    fn default() -> Self {
        Self::paper_scale()
    }
}

impl TemperatureConfig {
    /// The full Table II scale.
    #[must_use]
    pub fn paper_scale() -> Self {
        Self {
            units: 8_000,
            mesh_rows: 10,
            mesh_cols: 53,
            ticks: 1_080,
            mean: 60.0,
            seasonal_amplitude: 12.0,
            seasonal_period: 730.0,
            diurnal_amplitude: 1.0,
            drift_std: 0.15,
            offset_std: 6.0,
            ar_std: 28.0_f64.sqrt(),
            ar_coeff: 0.748_6,
            seed: 0x00D1_6E57,
        }
    }

    /// A scaled-down configuration for unit tests and quick runs
    /// (same statistical calibration, smaller world).
    #[must_use]
    pub fn reduced(units: usize, rows: usize, cols: usize, ticks: u64) -> Self {
        Self {
            units,
            mesh_rows: rows,
            mesh_cols: cols,
            ticks,
            ..Self::paper_scale()
        }
    }
}

struct Unit {
    handle: TupleHandle,
    offset: f64,
    ar: f64,
}

/// The live TEMPERATURE scenario.
pub struct TemperatureWorkload {
    config: TemperatureConfig,
    graph: Graph,
    db: P2PDatabase,
    expr: Expr,
    units: Vec<Unit>,
    rng: ChaCha8Rng,
    tick: u64,
    drift: f64,
}

impl TemperatureWorkload {
    /// Builds the scenario at tick 0 (units initialised from the
    /// stationary distribution).
    ///
    /// # Panics
    ///
    /// Panics on impossible configurations (zero mesh dimensions); the
    /// defaults are always valid.
    #[must_use]
    pub fn new(config: TemperatureConfig) -> Self {
        let graph = topology::mesh(config.mesh_rows, config.mesh_cols, false)
            .expect("mesh dimensions must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let schema = Schema::single("temperature");
        let mut db = P2PDatabase::new(schema);
        for v in graph.nodes() {
            db.register_node(v);
        }
        let node_ids: Vec<NodeId> = graph.nodes().collect();
        let expr = Expr::first_attr(db.schema());

        let mut units = Vec::with_capacity(config.units);
        let base = base_signal(&config, 0, 0.0);
        for i in 0..config.units {
            let node = node_ids[i % node_ids.len()];
            let offset = config.offset_std * gaussian(&mut rng);
            let ar = config.ar_std * gaussian(&mut rng);
            let value = base + offset + ar;
            let handle = db
                .insert(node, Tuple::single(value))
                .expect("node registered");
            units.push(Unit { handle, offset, ar });
        }
        Self {
            config,
            graph,
            db,
            expr,
            units,
            rng,
            tick: 0,
            drift: 0.0,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &TemperatureConfig {
        &self.config
    }
}

impl Workload for TemperatureWorkload {
    fn name(&self) -> &str {
        "TEMPERATURE"
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn db(&self) -> &P2PDatabase {
        &self.db
    }

    fn expr(&self) -> &Expr {
        &self.expr
    }

    fn current_tick(&self) -> u64 {
        self.tick
    }

    fn duration(&self) -> u64 {
        self.config.ticks
    }

    fn advance(&mut self, _rng: &mut dyn RngCore) {
        self.tick += 1;
        self.drift += self.config.drift_std * gaussian(&mut self.rng);
        let base = base_signal(&self.config, self.tick, self.drift);
        let innovation_std = self.config.ar_std * (1.0 - self.config.ar_coeff.powi(2)).sqrt();
        for unit in &mut self.units {
            unit.ar = self.config.ar_coeff * unit.ar + innovation_std * gaussian(&mut self.rng);
            let value = base + unit.offset + unit.ar;
            self.db
                .update(unit.handle, &[value])
                .expect("unit handles stay valid (no churn)");
        }
    }

    fn exact_aggregate(&self) -> f64 {
        self.db.exact_avg(&self.expr).expect("non-empty relation")
    }

    fn sigma_ref(&self) -> f64 {
        (self.config.offset_std.powi(2) + self.config.ar_std.powi(2)).sqrt()
    }

    fn rho_ref(&self) -> f64 {
        let s2 = self.config.offset_std.powi(2) + self.config.ar_std.powi(2);
        (self.config.offset_std.powi(2) + self.config.ar_coeff * self.config.ar_std.powi(2)) / s2
    }
}

fn base_signal(cfg: &TemperatureConfig, tick: u64, drift: f64) -> f64 {
    let t = tick as f64;
    cfg.mean
        + cfg.seasonal_amplitude * (2.0 * std::f64::consts::PI * t / cfg.seasonal_period).sin()
        + cfg.diurnal_amplitude * (std::f64::consts::PI * t).cos()
        + drift
}

/// Standard normal via Box–Muller (two uniforms per call; we discard the
/// second value for simplicity — generation is not the bottleneck).
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small() -> TemperatureWorkload {
        TemperatureWorkload::new(TemperatureConfig::reduced(400, 5, 8, 100))
    }

    #[test]
    fn construction_matches_config() {
        let w = small();
        assert_eq!(w.graph().node_count(), 40);
        assert_eq!(w.db().total_tuples(), 400);
        assert_eq!(w.current_tick(), 0);
        assert_eq!(w.duration(), 100);
        assert_eq!(w.name(), "TEMPERATURE");
    }

    #[test]
    fn paper_scale_matches_table2() {
        let cfg = TemperatureConfig::paper_scale();
        assert_eq!(cfg.units, 8_000);
        assert_eq!(cfg.mesh_rows * cfg.mesh_cols, 530);
        assert_eq!(cfg.ticks, 1_080);
        // Total update records = units × ticks = 8.64M (Table II).
        assert_eq!(cfg.units as u64 * cfg.ticks, 8_640_000);
    }

    #[test]
    fn calibration_formulas_hit_targets() {
        let w = TemperatureWorkload::new(TemperatureConfig::reduced(10, 2, 2, 10));
        assert!(
            (w.sigma_ref() - 8.0).abs() < 0.01,
            "σ_ref = {}",
            w.sigma_ref()
        );
        assert!(
            (w.rho_ref() - 0.89).abs() < 0.005,
            "ρ_ref = {}",
            w.rho_ref()
        );
    }

    #[test]
    fn advance_updates_every_unit() {
        let mut w = small();
        let before: Vec<f64> = w.db().iter().map(|(_, t)| t.value(0).unwrap()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        w.advance(&mut rng);
        let after: Vec<f64> = w.db().iter().map(|(_, t)| t.value(0).unwrap()).collect();
        assert_eq!(w.current_tick(), 1);
        let changed = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        assert!(
            changed > 390,
            "almost all units should move, changed = {changed}"
        );
    }

    #[test]
    fn aggregate_is_smooth() {
        let mut w = small();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut prev = w.exact_aggregate();
        let mut max_jump = 0.0_f64;
        for _ in 0..50 {
            w.advance(&mut rng);
            let x = w.exact_aggregate();
            max_jump = max_jump.max((x - prev).abs());
            prev = x;
        }
        // Diurnal alternation (±2·A_d) plus noise: well under σ per tick.
        assert!(max_jump < 4.0, "aggregate jumped {max_jump} in one tick");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut w = small();
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            for _ in 0..10 {
                w.advance(&mut rng);
            }
            w.exact_aggregate()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = gaussian(&mut rng);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }
}
