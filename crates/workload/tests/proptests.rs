//! Property-based tests of the workload generators: whatever the
//! configuration, the generated worlds must stay internally consistent.

use digest_workload::{
    MemoryConfig, MemoryWorkload, TemperatureConfig, TemperatureWorkload, Workload,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn temperature_worlds_are_consistent(
        seed in 0u64..1_000,
        units in 10usize..300,
        rows in 2usize..6,
        cols in 2usize..8,
        steps in 1u64..20,
    ) {
        let mut w = TemperatureWorkload::new(TemperatureConfig {
            seed,
            ..TemperatureConfig::reduced(units, rows, cols, 100)
        });
        prop_assert_eq!(w.graph().node_count(), rows * cols);
        prop_assert_eq!(w.db().total_tuples(), units);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..steps {
            w.advance(&mut rng);
            // Tuple count is invariant (no churn) and all values finite.
            prop_assert_eq!(w.db().total_tuples(), units);
            for (_, t) in w.db().iter() {
                prop_assert!(t.value(0).unwrap().is_finite());
            }
            prop_assert!(w.exact_aggregate().is_finite());
        }
        prop_assert_eq!(w.current_tick(), steps);
    }

    #[test]
    fn memory_worlds_stay_consistent_under_any_churn(
        seed in 0u64..1_000,
        leave in 0.0f64..0.01,
        join in 0.0f64..1.0,
        steps in 1u64..10,
    ) {
        let mut w = MemoryWorkload::new(MemoryConfig {
            seed,
            leave_prob: leave,
            join_rate: join,
            ..MemoryConfig::reduced(120, 60, 4_000)
        });
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..steps {
            w.advance(&mut rng);
            // The overlay stays connected; every fragment's node is live;
            // values stay in the legal domain.
            prop_assert!(w.graph().is_connected());
            for (handle, t) in w.db().iter() {
                prop_assert!(w.graph().contains(handle.node));
                prop_assert!(t.value(0).unwrap() >= 0.0);
            }
            prop_assert!(w.db().total_tuples() > 0);
        }
    }

    #[test]
    fn workloads_are_reproducible(seed in 0u64..500) {
        let run = |seed: u64| {
            let mut w = MemoryWorkload::new(MemoryConfig {
                seed,
                ..MemoryConfig::reduced(80, 40, 2_000)
            });
            let mut rng = ChaCha8Rng::seed_from_u64(0);
            for _ in 0..5 {
                w.advance(&mut rng);
            }
            (w.exact_aggregate(), w.update_records(), w.churn_events())
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
