//! Sharded deterministic simulation over the flat [`NodeStore`].
//!
//! The paper's experiments stop at thousands of peers; this module is
//! the substrate for *million-node* overlays. It deliberately bypasses
//! the `Workload`/`QuerySystem` object graph and runs directly on the
//! structure-of-arrays [`NodeStore`]: a Barabási–Albert overlay built
//! once via the bulk CSR loader, churn applied as O(batch) events, and
//! continuous-query occasions answered by Metropolis–Hastings sampling
//! walks. Time is driven by the calendar [`EventQueue`], so a horizon
//! of a million ticks with sparse churn/query schedules costs only the
//! due ticks.
//!
//! Determinism follows the executor discipline of
//! `digest-sampling::executor` and [`crate::parallel`]:
//!
//! * **Counter-split RNG streams.** The control stream draws one `u64`
//!   occasion seed per occasion; each logical *shard* then owns an
//!   independent `ChaCha8Rng` seeded by a SplitMix64 mix of
//!   `(occasion_seed, shard)`. The shard count is part of the
//!   configuration — not derived from the machine — so the sampled
//!   panel is a pure function of the config and seed.
//! * **Lock-free claim/publish.** Workers claim shard indices from an
//!   atomic cursor and publish partial sums into a shard-indexed table
//!   of `OnceLock` cells, drained in shard order after the scope
//!   joins. Worker counts {1, k} therefore produce **byte-identical**
//!   reports (floating-point merge order is fixed by shard index).
//! * **Single-threaded mutation.** Churn and value updates run on the
//!   control thread between occasions; workers only ever read the
//!   store.

use crate::events::EventQueue;
use crate::sync::{AtomicU64, OnceLock, Ordering};
use digest_core::{CoreError, Result};
use digest_net::{topology, ChurnConfig, ChurnProcess, NodeStore};
use digest_telemetry::registry as telemetry;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// SplitMix64 finalizer — derives well-separated per-shard seeds from
/// the single occasion seed (same mix as the sampling executor).
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed of shard `shard`'s private RNG stream for one occasion.
fn shard_stream_seed(occasion_seed: u64, shard: usize) -> u64 {
    splitmix64(occasion_seed.wrapping_add((shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Configuration of a flat-store simulation run.
#[derive(Debug, Clone, Copy)]
pub struct FlatSimConfig {
    /// Overlay size (Barabási–Albert node count).
    pub nodes: usize,
    /// Attachment links per arriving node (BA `m`; also used for churn
    /// re-attachment).
    pub attach: usize,
    /// Horizon in ticks.
    pub ticks: u64,
    /// Ticks between churn batches (`0` disables churn).
    pub churn_interval: u64,
    /// Node departures per churn batch.
    pub churn_leaves: usize,
    /// Node arrivals per churn batch.
    pub churn_joins: usize,
    /// Ticks between continuous-query occasions (first occasion at this
    /// tick).
    pub query_interval: u64,
    /// Sampling walks per occasion.
    pub walks: usize,
    /// Steps per Metropolis–Hastings walk (the mixing budget).
    pub walk_length: usize,
    /// Fixed logical shard count — the determinism unit. Results depend
    /// on this value but **not** on `workers`.
    pub shards: usize,
    /// Worker threads executing shards (any value ≥ 1 yields the same
    /// bytes; capped at `shards`).
    pub workers: usize,
    /// Root seed for topology, values, churn, and occasions.
    pub seed: u64,
}

impl Default for FlatSimConfig {
    fn default() -> Self {
        Self {
            nodes: 10_000,
            attach: 2,
            ticks: 10_000,
            churn_interval: 100,
            churn_leaves: 10,
            churn_joins: 10,
            query_interval: 500,
            walks: 256,
            walk_length: 30,
            shards: 32,
            workers: 1,
            seed: 0,
        }
    }
}

impl FlatSimConfig {
    fn validate(&self) -> Result<()> {
        if self.attach == 0 || self.nodes <= self.attach {
            return Err(CoreError::InvalidConfig {
                reason: "flat sim needs nodes > attach >= 1",
            });
        }
        if self.query_interval == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "flat sim query_interval must be >= 1",
            });
        }
        if self.shards == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "flat sim needs at least one shard",
            });
        }
        Ok(())
    }
}

/// What a flat-store run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatReport {
    /// Configured horizon.
    pub ticks: u64,
    /// Due ticks actually executed (the event loop skipped the rest).
    pub ticks_executed: u64,
    /// Events executed (churn batches + query occasions).
    pub events_executed: u64,
    /// Query occasions answered.
    pub occasions: u64,
    /// Churn batches applied.
    pub churn_batches: u64,
    /// Nodes that joined across all churn batches.
    pub joins: u64,
    /// Nodes that left across all churn batches.
    pub leaves: u64,
    /// Sampling walks executed.
    pub walks: u64,
    /// Node-to-node messages spent (walk hops).
    pub messages: u64,
    /// Per-occasion `(tick, AVG estimate)` pairs, in tick order.
    pub estimates: Vec<(u64, f64)>,
    /// Live overlay size at the end of the run.
    pub live_nodes: usize,
    /// Resident bytes of the node store + adjacency at the end.
    pub store_bytes: usize,
    /// `store_bytes / live_nodes`.
    pub bytes_per_node: f64,
}

/// One shard's contribution to an occasion, merged in shard order.
#[derive(Debug, Clone, Copy)]
struct ShardOut {
    sum: f64,
    walks: u64,
    hops: u64,
}

/// One Metropolis–Hastings walk over the store: uniform proposal over
/// the current node's neighbors, accepted with probability
/// `min(1, deg(cur)/deg(cand))`, giving a uniform stationary
/// distribution over live nodes. Returns the end node's value and the
/// hop (message) count.
fn mh_walk(store: &NodeStore, start: u32, len: usize, rng: &mut ChaCha8Rng) -> (f64, u64) {
    let mut cur = start;
    let mut hops = 0u64;
    for _ in 0..len {
        let nbs = store.neighbors(cur);
        if nbs.is_empty() {
            break;
        }
        let cand = nbs[rng.gen_range(0..nbs.len())];
        hops += 1;
        let d_cur = nbs.len();
        let d_cand = store.degree(cand);
        // Accept with prob deg(cur)/deg(cand); the uniform draw is only
        // consumed when the ratio is < 1, which is deterministic given
        // the stream position.
        if d_cand <= d_cur || rng.gen_range(0.0f64..1.0) * (d_cand as f64) < d_cur as f64 {
            cur = cand;
        }
    }
    (store.value(cur).unwrap_or(0.0), hops)
}

/// Claims the next unprocessed shard index, or `None` once the occasion
/// is drained. Same lock-free index stealing as the replication runner.
fn claim_shard(cursor: &AtomicU64, shards: usize) -> Option<usize> {
    // relaxed-ok: claim uniqueness needs only the atomicity of fetch_add;
    // shard results are published through `OnceLock::set` and the scope
    // join, so no ordering rides on this counter.
    let shard = cursor.fetch_add(1, Ordering::Relaxed);
    usize::try_from(shard).ok().filter(|&s| s < shards)
}

/// Answers one occasion: `walks` MH walks from `origin`, sharded over
/// `shards` fixed RNG streams and executed by up to `workers` threads,
/// merged in shard order.
fn run_occasion(
    store: &NodeStore,
    origin: u32,
    occasion_seed: u64,
    config: &FlatSimConfig,
) -> Result<ShardOut> {
    let shards = config.shards;
    let workers = config.workers.max(1).min(shards);
    let cursor = AtomicU64::new(0);
    let mut cells: Vec<OnceLock<ShardOut>> = (0..shards).map(|_| OnceLock::new()).collect();
    let table = &cells;

    let run_shard = |shard: usize| -> ShardOut {
        let mut rng = ChaCha8Rng::seed_from_u64(shard_stream_seed(occasion_seed, shard));
        let lo = shard * config.walks / shards;
        let hi = (shard + 1) * config.walks / shards;
        let mut out = ShardOut {
            sum: 0.0,
            walks: 0,
            hops: 0,
        };
        for _ in lo..hi {
            let (value, hops) = mh_walk(store, origin, config.walk_length, &mut rng);
            out.sum += value;
            out.walks += 1;
            out.hops += hops;
        }
        out
    };

    if workers == 1 {
        // The sequential case is the same drain loop run inline.
        while let Some(shard) = claim_shard(&cursor, shards) {
            let _ = table[shard].set(run_shard(shard));
        }
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    while let Some(shard) = claim_shard(&cursor, shards) {
                        // Each shard is claimed exactly once, so the
                        // cell is always empty (model-checked protocol,
                        // see `crate::parallel`).
                        let _ = table[shard].set(run_shard(shard));
                    }
                });
            }
        });
    }

    // Merge in shard order: the floating-point sum order is fixed by
    // shard index, independent of which worker ran which shard.
    let mut merged = ShardOut {
        sum: 0.0,
        walks: 0,
        hops: 0,
    };
    for cell in cells.iter_mut() {
        match cell.take() {
            Some(out) => {
                merged.sum += out.sum;
                merged.walks += out.walks;
                merged.hops += out.hops;
            }
            None => {
                return Err(CoreError::InvalidConfig {
                    reason: "flat shard worker exited without publishing a result",
                })
            }
        }
    }
    Ok(merged)
}

/// Runs a flat-store simulation: build the BA overlay once, then drive
/// churn batches and query occasions through the calendar event queue.
///
/// Byte-identical for any `workers >= 1` (the test suite pins workers
/// {1, 2, 4}); per-run cost is proportional to due events, not to
/// `ticks` or `nodes · ticks`.
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] on invalid parameters, or if the
/// claim/publish protocol is ever broken (unreachable by construction);
/// [`CoreError::EmptyWorkload`] if churn drains the overlay.
pub fn run_flat(config: &FlatSimConfig) -> Result<FlatReport> {
    config.validate()?;

    // Independent control streams, all derived from the root seed:
    // topology, initial values, churn, and occasion control (origin
    // election + occasion seeds). Keeping them separate means the churn
    // trajectory does not shift when the query schedule changes.
    let mut topo_rng = ChaCha8Rng::seed_from_u64(splitmix64(config.seed.wrapping_add(1)));
    let mut value_rng = ChaCha8Rng::seed_from_u64(splitmix64(config.seed.wrapping_add(2)));
    let mut churn_rng = ChaCha8Rng::seed_from_u64(splitmix64(config.seed.wrapping_add(3)));
    let mut control_rng = ChaCha8Rng::seed_from_u64(splitmix64(config.seed.wrapping_add(4)));

    let mut store = topology::barabasi_albert_store(config.nodes, config.attach, &mut topo_rng)
        .map_err(|_| CoreError::InvalidConfig {
            reason: "flat sim overlay parameters rejected by the BA generator",
        })?;
    let ids: Vec<u32> = store.live_ids().collect();
    for id in ids {
        store.set_value(id, value_rng.gen_range(0.0..100.0));
    }

    let churn = ChurnProcess::new(ChurnConfig {
        attach_links: config.attach,
        min_nodes: config.attach + 1,
        ..ChurnConfig::default()
    })
    .map_err(|_| CoreError::InvalidConfig {
        reason: "flat sim churn parameters rejected",
    })?;

    let mut queue = EventQueue::new();
    let mut next_churn = if config.churn_interval > 0 {
        queue.schedule(config.churn_interval);
        Some(config.churn_interval)
    } else {
        None
    };
    let mut next_occasion = config.query_interval;
    if next_occasion < config.ticks {
        queue.schedule(next_occasion);
    }

    let mut report = FlatReport {
        ticks: config.ticks,
        ticks_executed: 0,
        events_executed: 0,
        occasions: 0,
        churn_batches: 0,
        joins: 0,
        leaves: 0,
        walks: 0,
        messages: 0,
        estimates: Vec::new(),
        live_nodes: 0,
        store_bytes: 0,
        bytes_per_node: 0.0,
    };

    while let Some(tick) = queue.pop_next() {
        if tick >= config.ticks {
            break;
        }
        digest_telemetry::set_tick(tick);
        telemetry::SIM_TICKS.inc();
        report.ticks_executed += 1;

        // Churn first, then measure — an occasion due the same tick
        // sees the post-churn overlay, matching the dense runner's
        // advance-then-react order.
        if next_churn == Some(tick) {
            let (left, joined) = churn.step_store(
                &mut store,
                config.churn_leaves,
                config.churn_joins,
                |r| r.gen_range(0.0..100.0),
                &mut churn_rng,
            );
            report.leaves += left as u64;
            report.joins += joined as u64;
            report.churn_batches += 1;
            report.events_executed += 1;
            let due = tick + config.churn_interval;
            next_churn = Some(due);
            if due < config.ticks {
                queue.schedule(due);
            }
        }

        if tick == next_occasion {
            let origin = store
                .random_live(&mut control_rng)
                .ok_or(CoreError::EmptyWorkload)?;
            let occasion_seed = control_rng.next_u64();
            let merged = run_occasion(&store, origin, occasion_seed, config)?;
            let estimate = if merged.walks > 0 {
                merged.sum / merged.walks as f64
            } else {
                0.0
            };
            report.estimates.push((tick, estimate));
            report.walks += merged.walks;
            report.messages += merged.hops;
            report.occasions += 1;
            report.events_executed += 1;
            next_occasion = tick + config.query_interval;
            if next_occasion < config.ticks {
                queue.schedule(next_occasion);
            }
        }
    }

    // Steady-state footprint: reclaim churn garbage and slack capacity
    // before measuring, so the bytes/node gate reflects the compacted
    // layout a long-running overlay maintains, not transient build slack.
    store.compact();
    report.live_nodes = store.live_count();
    report.store_bytes = store.bytes();
    report.bytes_per_node = store.bytes_per_node();
    Ok(report)
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    fn small(workers: usize) -> FlatSimConfig {
        FlatSimConfig {
            nodes: 400,
            attach: 2,
            ticks: 1_000,
            churn_interval: 50,
            churn_leaves: 4,
            churn_joins: 4,
            query_interval: 125,
            walks: 64,
            walk_length: 25,
            shards: 8,
            workers,
            seed: 7,
        }
    }

    #[test]
    fn worker_counts_are_byte_identical() {
        let serial = run_flat(&small(1)).unwrap();
        for workers in [2usize, 4] {
            let parallel = run_flat(&small(workers)).unwrap();
            assert_eq!(serial.estimates.len(), parallel.estimates.len());
            for (a, b) in serial.estimates.iter().zip(parallel.estimates.iter()) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "{workers} workers");
            }
            assert_eq!(serial.messages, parallel.messages, "{workers} workers");
            assert_eq!(serial.joins, parallel.joins);
            assert_eq!(serial.leaves, parallel.leaves);
            assert_eq!(serial.live_nodes, parallel.live_nodes);
            assert_eq!(serial.store_bytes, parallel.store_bytes);
        }
    }

    #[test]
    fn event_loop_executes_only_due_ticks() {
        let config = small(1);
        let report = run_flat(&config).unwrap();
        // Due ticks: churn at 50,100,...,950 and occasions at
        // 125,250,...,875; the union (shared multiples of 250 coalesce)
        // is what the loop executes.
        let mut due: std::collections::BTreeSet<u64> = (1..20).map(|i| i * 50).collect();
        due.extend((1..8).map(|i| i * 125));
        assert_eq!(report.ticks_executed, due.len() as u64);
        assert_eq!(report.churn_batches, 19);
        assert_eq!(report.occasions, 7);
        assert_eq!(
            report.events_executed,
            report.churn_batches + report.occasions
        );
        assert!(report.ticks_executed < config.ticks / 10);
    }

    #[test]
    fn same_seed_replays_identically() {
        let a = run_flat(&small(2)).unwrap();
        let b = run_flat(&small(2)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn estimates_track_the_exact_average_without_churn() {
        let config = FlatSimConfig {
            churn_interval: 0,
            walks: 256,
            walk_length: 40,
            ..small(2)
        };
        let report = run_flat(&config).unwrap();
        assert_eq!(report.churn_batches, 0);
        assert!(report.occasions > 0);
        // Static overlay, values uniform on [0, 100): every occasion's
        // estimate should sit near the true mean (σ/√walks ≈ 1.8, allow
        // generous mixing slack).
        for &(tick, estimate) in &report.estimates {
            assert!(
                (estimate - 50.0).abs() < 15.0,
                "tick {tick}: estimate {estimate} far from uniform mean"
            );
        }
    }

    #[test]
    fn rejects_invalid_configs() {
        assert!(run_flat(&FlatSimConfig {
            nodes: 2,
            attach: 2,
            ..FlatSimConfig::default()
        })
        .is_err());
        assert!(run_flat(&FlatSimConfig {
            query_interval: 0,
            ..FlatSimConfig::default()
        })
        .is_err());
        assert!(run_flat(&FlatSimConfig {
            shards: 0,
            ..FlatSimConfig::default()
        })
        .is_err());
    }
}
