//! Calendar-queue event scheduler keyed by tick.
//!
//! A discrete-time run only needs to *execute* the ticks at which
//! something is due — a workload update burst, a churn batch, a query
//! occasion. [`EventQueue`] is the priority queue that makes skipping
//! the empty ticks cheap: near-future ticks live in a fixed ring of
//! occupancy slots (one tick per slot, so schedule/pop are O(1)
//! amortised), and far-future ticks overflow into an ordered set that
//! migrates into the ring as the window slides. Per-run cost is
//! proportional to the number of *due* ticks, not to the horizon `T`
//! or the overlay size `N`.
//!
//! Determinism: the queue holds ticks (not payloads) and pops them in
//! strictly ascending order; duplicate schedules of the same tick
//! coalesce. Nothing here consumes randomness, so an event-driven run
//! replays byte-identically under any worker count.

use std::collections::BTreeSet;

/// Width of the near-future ring: ticks in `[floor, floor + RING)` are
/// tracked by occupancy slot (each slot names exactly one tick of the
/// window), everything later waits in the overflow set.
const RING: usize = 1024;

/// A monotone priority queue of due ticks (calendar queue).
///
/// Ticks pop in ascending order. Scheduling a tick at or below the
/// queue's floor (the last popped tick + 1) clamps to the floor — a
/// past-due event fires at the next pop rather than being lost.
#[derive(Debug)]
pub struct EventQueue {
    /// Smallest tick that can still be scheduled or popped.
    floor: u64,
    /// Occupancy of the window `[floor, floor + RING)`; slot `t % RING`
    /// covers exactly one tick value of the window.
    near: Vec<bool>,
    /// Occupied slots in `near`.
    near_len: usize,
    /// Due ticks at or beyond `floor + RING`.
    far: BTreeSet<u64>,
    /// Distinct ticks scheduled over the queue's lifetime.
    scheduled: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// An empty queue with its window starting at tick 0.
    #[must_use]
    pub fn new() -> Self {
        Self {
            floor: 0,
            near: vec![false; RING],
            near_len: 0,
            far: BTreeSet::new(),
            scheduled: 0,
        }
    }

    /// Number of distinct ticks currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.near_len + self.far.len()
    }

    /// Whether no tick is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distinct ticks scheduled over the queue's lifetime (after
    /// coalescing duplicates).
    #[must_use]
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Ring slot owning `tick`: `tick mod RING`, which always fits in
    /// `usize` because `RING` is a small compile-time constant.
    #[allow(clippy::cast_possible_truncation)]
    fn slot_of(tick: u64) -> usize {
        (tick % RING as u64) as usize
    }

    /// Schedules `tick` as due. Ticks below the floor clamp to the
    /// floor; duplicate schedules of one tick coalesce into one pop.
    pub fn schedule(&mut self, tick: u64) {
        let tick = tick.max(self.floor);
        if tick - self.floor < RING as u64 {
            let slot = Self::slot_of(tick);
            if !self.near[slot] {
                self.near[slot] = true;
                self.near_len += 1;
                self.scheduled += 1;
            }
        } else if self.far.insert(tick) {
            self.scheduled += 1;
        }
    }

    /// The smallest queued tick, without popping it.
    #[must_use]
    pub fn peek(&self) -> Option<u64> {
        if self.near_len > 0 {
            let mut t = self.floor;
            loop {
                if self.near[Self::slot_of(t)] {
                    return Some(t);
                }
                t += 1;
            }
        }
        self.far.first().copied()
    }

    /// Pops the smallest queued tick, advancing the window past it.
    pub fn pop_next(&mut self) -> Option<u64> {
        if self.near_len == 0 {
            // Slide the window to the earliest far entry, if any.
            let head = *self.far.first()?;
            self.floor = head;
        }
        self.migrate();
        // An occupied slot exists at or after the floor (every near
        // entry is >= floor by construction), so this scan terminates
        // within one lap; the floor only ever moves forward, so the
        // total scan work is amortised O(1) per pop.
        loop {
            let slot = Self::slot_of(self.floor);
            if self.near[slot] {
                self.near[slot] = false;
                self.near_len -= 1;
                let tick = self.floor;
                self.floor += 1;
                self.migrate();
                return Some(tick);
            }
            self.floor += 1;
        }
    }

    /// Moves far-future ticks that the sliding window now covers into
    /// their ring slots.
    fn migrate(&mut self) {
        let limit = self.floor + RING as u64;
        while let Some(&t) = self.far.first() {
            if t >= limit {
                break;
            }
            self.far.remove(&t);
            let slot = Self::slot_of(t);
            // Distinct window ticks occupy distinct slots, so the slot
            // is free whenever the tick was not already near-scheduled.
            if !self.near[slot] {
                self.near[slot] = true;
                self.near_len += 1;
            }
        }
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn pops_in_ascending_order_and_coalesces_duplicates() {
        let mut q = EventQueue::new();
        for t in [5u64, 3, 9, 3, 5, 7, 9] {
            q.schedule(t);
        }
        assert_eq!(q.len(), 4);
        assert_eq!(q.total_scheduled(), 4);
        let mut out = Vec::new();
        while let Some(t) = q.pop_next() {
            out.push(t);
        }
        assert_eq!(out, vec![3, 5, 7, 9]);
        assert!(q.is_empty());
    }

    #[test]
    fn past_due_schedules_clamp_to_the_floor() {
        let mut q = EventQueue::new();
        q.schedule(10);
        assert_eq!(q.pop_next(), Some(10));
        // The window has moved past 10: a "late" event still fires.
        q.schedule(4);
        assert_eq!(q.pop_next(), Some(11));
        assert_eq!(q.pop_next(), None);
    }

    #[test]
    fn far_future_ticks_overflow_and_migrate_back() {
        let mut q = EventQueue::new();
        let far = RING as u64 * 5 + 17;
        q.schedule(far);
        q.schedule(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek(), Some(2));
        assert_eq!(q.pop_next(), Some(2));
        assert_eq!(q.peek(), Some(far));
        assert_eq!(q.pop_next(), Some(far));
        assert_eq!(q.pop_next(), None);
    }

    #[test]
    fn empty_tick_spans_cost_nothing_to_skip() {
        // Sparse schedule over a huge horizon: the pop count equals the
        // number of due ticks, independent of the gaps between them.
        let mut q = EventQueue::new();
        let ticks: Vec<u64> = (0..100).map(|i| i * 1_000_003).collect();
        for &t in ticks.iter().rev() {
            q.schedule(t);
        }
        let mut popped = Vec::new();
        while let Some(t) = q.pop_next() {
            popped.push(t);
        }
        assert_eq!(popped, ticks);
    }

    #[test]
    fn matches_btreeset_reference_under_random_interleaving() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..50 {
            let mut q = EventQueue::new();
            let mut reference: BTreeSet<u64> = BTreeSet::new();
            let mut last_pop: u64 = 0;
            for _ in 0..400 {
                if rng.gen_bool(0.6) || reference.is_empty() {
                    // Mix of near, mid and far horizons.
                    let t = match rng.gen_range(0..3) {
                        0 => last_pop + rng.gen_range(0..64),
                        1 => last_pop + rng.gen_range(0..4 * RING as u64),
                        _ => last_pop + rng.gen_range(0..100 * RING as u64),
                    };
                    q.schedule(t);
                    // The queue clamps below-floor ticks to the floor
                    // (= last popped tick + 1 once anything popped).
                    reference.insert(t.max(q.floor));
                } else {
                    let expect = reference.pop_first();
                    let got = q.pop_next();
                    assert_eq!(got, expect);
                    if let Some(t) = got {
                        last_pop = t;
                    }
                }
            }
            let mut rest = Vec::new();
            while let Some(t) = q.pop_next() {
                rest.push(t);
            }
            assert_eq!(rest, reference.into_iter().collect::<Vec<_>>());
        }
    }
}
