//! Driving one query system over one workload.
//!
//! Two drivers share one per-tick body (the private `step_tick`): the classic
//! dense loop ([`run`] / [`run_observed`]) executes every tick, and the
//! event-driven loop ([`run_events`]) pops due ticks from a calendar
//! [`EventQueue`], skipping spans where both the workload and the
//! system declare themselves idle. On dense scenarios (the default
//! [`Workload::next_activity`] / `QuerySystem::next_due` hints) every
//! tick is due, so the two drivers are byte-identical by construction.

use crate::events::EventQueue;
use crate::trace::{RunReport, TraceRecord};
use digest_core::{
    CoreError, MuxObserver, NoopObserver, QueryMux, QuerySystem, Result, TickContext, TickObserver,
};
use digest_net::NodeId;
use digest_telemetry::{registry as telemetry, Field, Stage};
use digest_workload::Workload;
use rand::RngCore;
use std::collections::BTreeMap;

/// Run parameters.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Ticks to simulate (capped by the workload's duration when
    /// `respect_duration` is set).
    pub ticks: u64,
    /// Stop at the workload's own duration even if `ticks` is larger.
    pub respect_duration: bool,
    /// Worker threads for sampling-walk batches (`None` keeps the
    /// system's own setting). Results are byte-identical for every
    /// value; only wall-clock time changes.
    pub sampling_workers: Option<usize>,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            ticks: u64::MAX,
            respect_duration: true,
            sampling_workers: None,
        }
    }
}

impl RunConfig {
    /// Run for exactly `ticks` ticks (still capped by workload duration).
    #[must_use]
    pub fn for_ticks(ticks: u64) -> Self {
        Self {
            ticks,
            respect_duration: true,
            sampling_workers: None,
        }
    }
}

/// Runs `system` against `workload`, recording a per-tick trace.
///
/// The querying node is picked as the workload's first live node and
/// re-elected if churn removes it (the paper issues queries from random
/// nodes; any live node is equivalent for counting purposes).
///
/// Per tick, the order is: advance the workload (apply this tick's
/// updates/churn), let the system react, then record the oracle truth
/// next to the system's estimate.
///
/// # Errors
///
/// * [`CoreError::EmptyWorkload`] if the workload's graph has no live
///   nodes (at start, or after churn drained it mid-run).
/// * Propagates any engine error.
pub fn run<W: Workload, S: QuerySystem + ?Sized>(
    workload: &mut W,
    system: &mut S,
    config: RunConfig,
    delta: f64,
    epsilon: f64,
    rng: &mut dyn RngCore,
) -> Result<RunReport> {
    run_observed(
        workload,
        system,
        config,
        delta,
        epsilon,
        rng,
        &mut NoopObserver,
    )
}

/// [`run`] with a [`TickObserver`] attached: the observer sees every tick
/// (after the system reacted, with the oracle truth) without perturbing
/// the run — it consumes no randomness and the trace/report are
/// byte-identical to an unobserved run.
///
/// # Errors
///
/// As for [`run`].
#[allow(clippy::too_many_arguments)]
pub fn run_observed<W: Workload, S: QuerySystem + ?Sized>(
    workload: &mut W,
    system: &mut S,
    config: RunConfig,
    delta: f64,
    epsilon: f64,
    rng: &mut dyn RngCore,
    observer: &mut dyn TickObserver,
) -> Result<RunReport> {
    if let Some(workers) = config.sampling_workers {
        system.set_sampling_workers(workers);
    }

    let mut origin = workload
        .graph()
        .nodes()
        .next()
        .ok_or(CoreError::EmptyWorkload)?;

    let horizon = if config.respect_duration {
        config.ticks.min(workload.duration())
    } else {
        config.ticks
    };

    // Capacity is only a hint; a clamped value is fine on 32-bit targets.
    let mut records = Vec::with_capacity(usize::try_from(horizon).unwrap_or(0));
    for tick in 0..horizon {
        step_tick(
            workload,
            system,
            tick,
            &mut origin,
            rng,
            observer,
            &mut records,
        )?;
    }

    Ok(RunReport {
        system: system.name().to_owned(),
        workload: workload.name().to_owned(),
        records,
        delta,
        epsilon,
    })
}

/// [`run_observed`], but driven by a calendar [`EventQueue`] instead of
/// a dense `0..horizon` loop: after each executed tick the workload's
/// [`Workload::next_activity`] and the system's `next_due` hints decide
/// the next due tick, and the spans in between are skipped outright —
/// per-run cost is proportional to due ticks, not to the horizon.
///
/// With the default (dense) hints every tick is due and this is
/// byte-identical to [`run_observed`] — same RNG stream, same trace —
/// which the test suite and `cargo xtask determinism` pin down. Sparse
/// hints only skip ticks both sides promised were pure idle holds, so
/// the recorded trace still matches the dense run on every executed
/// tick; skipped ticks simply produce no [`TraceRecord`].
///
/// # Errors
///
/// As for [`run`].
#[allow(clippy::too_many_arguments)]
pub fn run_events<W: Workload, S: QuerySystem + ?Sized>(
    workload: &mut W,
    system: &mut S,
    config: RunConfig,
    delta: f64,
    epsilon: f64,
    rng: &mut dyn RngCore,
    observer: &mut dyn TickObserver,
) -> Result<RunReport> {
    if let Some(workers) = config.sampling_workers {
        system.set_sampling_workers(workers);
    }

    let mut origin = workload
        .graph()
        .nodes()
        .next()
        .ok_or(CoreError::EmptyWorkload)?;

    let horizon = if config.respect_duration {
        config.ticks.min(workload.duration())
    } else {
        config.ticks
    };

    let mut records = Vec::new();
    let mut queue = EventQueue::new();
    if horizon > 0 {
        queue.schedule(0);
    }
    while let Some(tick) = queue.pop_next() {
        if tick >= horizon {
            break;
        }
        step_tick(
            workload,
            system,
            tick,
            &mut origin,
            rng,
            observer,
            &mut records,
        )?;
        // Subscribe the next due tick: the earliest of the workload's
        // and the system's own schedules; either side saying "no
        // schedule" (None) keeps the run dense from here.
        let next = match (workload.next_activity(), system.next_due(tick)) {
            (None, _) | (_, None) => tick + 1,
            (Some(w), Some(s)) => w.min(s).max(tick + 1),
        };
        if next < horizon {
            queue.schedule(next);
        }
    }

    Ok(RunReport {
        system: system.name().to_owned(),
        workload: workload.name().to_owned(),
        records,
        delta,
        epsilon,
    })
}

/// One full simulation tick — the body both drivers share, so the
/// event-driven and dense loops cannot drift apart: advance the
/// workload through `tick`, re-elect the origin if churn took it, let
/// the system react, observe, emit, record.
fn step_tick<W: Workload, S: QuerySystem + ?Sized>(
    workload: &mut W,
    system: &mut S,
    tick: u64,
    origin: &mut NodeId,
    rng: &mut dyn RngCore,
    observer: &mut dyn TickObserver,
    records: &mut Vec<TraceRecord>,
) -> Result<()> {
    digest_telemetry::set_tick(tick);
    telemetry::SIM_TICKS.inc();
    {
        let _span = digest_telemetry::span(Stage::WorkloadAdvance);
        // On consecutive ticks this is exactly one `advance` call (the
        // workload sits at `current_tick == tick` here), so the dense
        // driver's byte stream is unchanged; after a skipped span it
        // catches the workload up per its `next_activity` contract.
        workload.advance_to(tick, rng);
    }

    // Re-elect the querying node if churn removed it.
    if !workload.graph().contains(*origin) {
        *origin = elect_origin(workload, rng)?;
    }

    let (outcome, exact) = {
        let ctx = TickContext {
            tick,
            graph: workload.graph(),
            db: workload.db(),
            origin: *origin,
        };
        let outcome = system.on_tick(&ctx, rng)?;
        // Ground truth for the *system's* query when it can provide
        // one (COUNT/SUM/MEDIAN/WHERE); plain-AVG oracle otherwise.
        let exact = system
            .oracle_truth(&ctx)
            .unwrap_or_else(|| workload.exact_aggregate());
        // Stamp this tick's remaining events (and the observer's
        // audit events) with the occasion that produced the current
        // estimate.
        digest_telemetry::set_trace(system.trace_id());
        observer.observe(&ctx, &outcome, exact);
        (outcome, exact)
    };

    if digest_telemetry::events_enabled() {
        digest_telemetry::emit(
            "tick",
            &[
                ("estimate", Field::F64(outcome.estimate)),
                ("exact", Field::F64(exact)),
                ("snapshot", Field::Bool(outcome.snapshot_executed)),
                ("samples", Field::U64(outcome.samples_this_tick)),
                ("fresh", Field::U64(outcome.fresh_samples_this_tick)),
                ("messages", Field::U64(outcome.messages_this_tick)),
                ("updated", Field::U64(u64::from(outcome.updated))),
            ],
        );
    }

    records.push(TraceRecord {
        tick,
        exact,
        estimate: outcome.estimate,
        updated: outcome.updated,
        snapshot: outcome.snapshot_executed,
        samples: outcome.samples_this_tick,
        fresh_samples: outcome.fresh_samples_this_tick,
        messages: outcome.messages_this_tick,
    });
    Ok(())
}

/// Runs a [`QueryMux`] against `workload`, recording one per-tick trace
/// *per member query* (ascending query id). Mirrors [`run_observed`], but
/// each member gets its own oracle truth (its query's exact aggregate),
/// its own `tick` event (disambiguated by a `query` field), and its own
/// observer callback — with the coalesced round's trace id attached when
/// the member's occasion was served from a shared sampling round.
///
/// The member set must stay fixed for the duration of the run (register
/// before calling; dynamic arrival/departure workloads drive the mux
/// directly).
///
/// # Errors
///
/// As for [`run`]; additionally [`CoreError::EmptyWorkload`] if the mux
/// has no registered queries.
pub fn run_mux<W: Workload>(
    workload: &mut W,
    mux: &mut QueryMux,
    config: RunConfig,
    rng: &mut dyn RngCore,
    observer: &mut dyn MuxObserver,
) -> Result<Vec<RunReport>> {
    if mux.is_empty() {
        return Err(CoreError::EmptyWorkload);
    }
    if let Some(workers) = config.sampling_workers {
        mux.set_sampling_workers(workers);
    }

    let mut origin = workload
        .graph()
        .nodes()
        .next()
        .ok_or(CoreError::EmptyWorkload)?;

    let horizon = if config.respect_duration {
        config.ticks.min(workload.duration())
    } else {
        config.ticks
    };

    let ids = mux.query_ids();
    let mut records: BTreeMap<u64, Vec<TraceRecord>> = ids
        .iter()
        .map(|&id| {
            (
                id,
                Vec::with_capacity(usize::try_from(horizon).unwrap_or(0)),
            )
        })
        .collect();

    for tick in 0..horizon {
        digest_telemetry::set_tick(tick);
        telemetry::SIM_TICKS.inc();
        {
            let _span = digest_telemetry::span(Stage::WorkloadAdvance);
            workload.advance(rng);
        }
        if !workload.graph().contains(origin) {
            origin = elect_origin(workload, rng)?;
        }

        let ctx = TickContext {
            tick,
            graph: workload.graph(),
            db: workload.db(),
            origin,
        };
        let outcomes = mux.on_tick_mux(&ctx, rng)?;
        for o in &outcomes {
            // Each member's ground truth is its own query's oracle.
            let exact = mux
                .query(o.query)
                .and_then(|q| q.oracle(ctx.db))
                .unwrap_or_else(|| workload.exact_aggregate());
            // Attribute the member's tick/audit events to the occasion
            // that produced its current estimate.
            digest_telemetry::set_trace(o.trace);
            observer.observe_query(o.query, &ctx, &o.outcome, exact, o.round);
            if digest_telemetry::events_enabled() {
                digest_telemetry::emit(
                    "tick",
                    &[
                        ("estimate", Field::F64(o.outcome.estimate)),
                        ("exact", Field::F64(exact)),
                        ("snapshot", Field::Bool(o.outcome.snapshot_executed)),
                        ("samples", Field::U64(o.outcome.samples_this_tick)),
                        ("fresh", Field::U64(o.outcome.fresh_samples_this_tick)),
                        ("messages", Field::U64(o.outcome.messages_this_tick)),
                        ("updated", Field::U64(u64::from(o.outcome.updated))),
                        ("query", Field::U64(o.query)),
                    ],
                );
            }
            if let Some(trace) = records.get_mut(&o.query) {
                trace.push(TraceRecord {
                    tick,
                    exact,
                    estimate: o.outcome.estimate,
                    updated: o.outcome.updated,
                    snapshot: o.outcome.snapshot_executed,
                    samples: o.outcome.samples_this_tick,
                    fresh_samples: o.outcome.fresh_samples_this_tick,
                    messages: o.outcome.messages_this_tick,
                });
            }
        }
    }

    let workload_name = workload.name().to_owned();
    Ok(ids
        .iter()
        .filter_map(|&id| {
            let query = mux.query(id)?;
            Some(RunReport {
                system: format!("{}[q{id}]", mux.name()),
                workload: workload_name.clone(),
                records: records.remove(&id).unwrap_or_default(),
                delta: query.precision.delta,
                epsilon: query.precision.epsilon,
            })
        })
        .collect())
}

fn elect_origin<W: Workload>(workload: &W, rng: &mut dyn RngCore) -> Result<NodeId> {
    workload
        .graph()
        .random_node(rng)
        .map_err(|_| CoreError::EmptyWorkload)
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use digest_core::{
        ContinuousQuery, DigestEngine, EngineConfig, EstimatorKind, Precision, SchedulerKind,
    };
    use digest_db::Expr;
    use digest_workload::{MemoryConfig, MemoryWorkload, TemperatureConfig, TemperatureWorkload};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn temp_workload() -> TemperatureWorkload {
        TemperatureWorkload::new(TemperatureConfig::reduced(400, 5, 8, 60))
    }

    fn avg_query(w: &impl Workload, delta: f64, epsilon: f64) -> ContinuousQuery {
        ContinuousQuery::avg(
            Expr::first_attr(w.db().schema()),
            Precision::new(delta, epsilon, 0.95).unwrap(),
        )
    }

    #[test]
    fn digest_run_produces_full_trace_and_respects_precision() {
        let mut w = temp_workload();
        let q = avg_query(&w, 8.0, 2.0);
        let mut engine = DigestEngine::new(
            q,
            EngineConfig {
                scheduler: SchedulerKind::Pred(3),
                estimator: EstimatorKind::Repeated,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let report = run(
            &mut w,
            &mut engine,
            RunConfig::for_ticks(60),
            8.0,
            2.0,
            &mut rng,
        )
        .unwrap();

        assert_eq!(report.ticks(), 60);
        assert_eq!(report.system, "PRED3+RPT");
        assert_eq!(report.workload, "TEMPERATURE");
        assert!(
            report.total_snapshots() >= 4,
            "bootstrap alone gives several"
        );
        assert!(report.total_snapshots() < 60, "PRED must skip some ticks");
        // Precision: ε-violations ≤ ~3× the nominal 5% (finite-sample
        // slack), and resolution violations rare.
        assert!(
            report.confidence_violation_rate() < 0.15,
            "ε-violations = {}",
            report.confidence_violation_rate()
        );
        assert!(
            report.resolution_violation_rate() < 0.10,
            "δ-violations = {}",
            report.resolution_violation_rate()
        );
    }

    #[test]
    fn run_caps_at_workload_duration() {
        let mut w = temp_workload(); // duration 60
        let q = avg_query(&w, 8.0, 2.0);
        let mut engine = DigestEngine::new(
            q,
            EngineConfig {
                scheduler: SchedulerKind::All,
                estimator: EstimatorKind::Independent,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let report = run(
            &mut w,
            &mut engine,
            RunConfig::default(),
            8.0,
            2.0,
            &mut rng,
        )
        .unwrap();
        assert_eq!(report.ticks(), 60);
    }

    #[test]
    fn run_survives_churn_taking_the_origin() {
        let mut w = MemoryWorkload::new(MemoryConfig {
            leave_prob: 0.05,
            join_rate: 2.0,
            ..MemoryConfig::reduced(80, 40, 2_000)
        });
        let q = avg_query(&w, 10.0, 3.0);
        let mut engine = DigestEngine::new(
            q,
            EngineConfig {
                scheduler: SchedulerKind::All,
                estimator: EstimatorKind::Repeated,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let report = run(
            &mut w,
            &mut engine,
            RunConfig::for_ticks(50),
            10.0,
            3.0,
            &mut rng,
        )
        .expect("run must survive origin churn");
        assert_eq!(report.ticks(), 50);
    }

    /// The event-driven driver must replay the dense driver's byte
    /// stream exactly on existing scenarios (default hints = every tick
    /// due), including under churn that re-elects the origin.
    #[test]
    fn event_driven_run_is_byte_identical_to_dense_run() {
        let make_engine = || {
            DigestEngine::new(
                ContinuousQuery::avg(
                    Expr::first_attr(temp_workload().db().schema()),
                    Precision::new(8.0, 2.0, 0.95).unwrap(),
                ),
                EngineConfig {
                    scheduler: SchedulerKind::Pred(3),
                    estimator: EstimatorKind::Repeated,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let dense = {
            let mut w = temp_workload();
            let mut engine = make_engine();
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            run(
                &mut w,
                &mut engine,
                RunConfig::for_ticks(60),
                8.0,
                2.0,
                &mut rng,
            )
            .unwrap()
        };
        let evented = {
            let mut w = temp_workload();
            let mut engine = make_engine();
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            run_events(
                &mut w,
                &mut engine,
                RunConfig::for_ticks(60),
                8.0,
                2.0,
                &mut rng,
                &mut NoopObserver,
            )
            .unwrap()
        };
        assert_eq!(dense.records.len(), evented.records.len());
        for (a, b) in dense.records.iter().zip(evented.records.iter()) {
            assert_eq!(a.tick, b.tick);
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
            assert_eq!(a.exact.to_bits(), b.exact.to_bits());
            assert_eq!(a.samples, b.samples);
            assert_eq!(a.messages, b.messages);
            assert_eq!(a.snapshot, b.snapshot);
        }
    }

    /// A frozen scenario whose `next_activity` hint declares it idle
    /// forever — the sparse side of the event-driven contract.
    struct FrozenWorkload {
        graph: digest_net::Graph,
        db: digest_db::P2PDatabase,
        expr: Expr,
        tick: u64,
    }

    impl FrozenWorkload {
        fn new() -> Self {
            let graph = digest_net::topology::complete(8).unwrap();
            let mut db = digest_db::P2PDatabase::new(digest_db::Schema::single("a"));
            let mut rng = ChaCha8Rng::seed_from_u64(21);
            for v in 0..8u32 {
                db.register_node(NodeId(v));
                for _ in 0..20 {
                    use rand::Rng;
                    let value: f64 = 40.0 + rng.gen_range(-5.0..5.0);
                    db.insert(NodeId(v), digest_db::Tuple::single(value))
                        .unwrap();
                }
            }
            let expr = Expr::first_attr(db.schema());
            Self {
                graph,
                db,
                expr,
                tick: 0,
            }
        }
    }

    impl Workload for FrozenWorkload {
        fn name(&self) -> &str {
            "FROZEN"
        }
        fn graph(&self) -> &digest_net::Graph {
            &self.graph
        }
        fn db(&self) -> &digest_db::P2PDatabase {
            &self.db
        }
        fn expr(&self) -> &Expr {
            &self.expr
        }
        fn current_tick(&self) -> u64 {
            self.tick
        }
        fn duration(&self) -> u64 {
            u64::MAX
        }
        fn advance(&mut self, _rng: &mut dyn rand::RngCore) {
            self.tick += 1;
        }
        fn next_activity(&self) -> Option<u64> {
            Some(u64::MAX) // never active again
        }
        fn exact_aggregate(&self) -> f64 {
            self.db.exact_avg(&self.expr).unwrap()
        }
        fn sigma_ref(&self) -> f64 {
            3.0
        }
        fn rho_ref(&self) -> f64 {
            1.0
        }
    }

    /// With a sparse workload and a PRED engine, the event loop must
    /// actually skip idle spans — fewer executed ticks than the horizon
    /// — while every executed tick matches the dense run bit-for-bit.
    #[test]
    fn event_driven_run_skips_idle_spans_on_sparse_workloads() {
        let make_engine = || {
            DigestEngine::new(
                ContinuousQuery::avg(
                    Expr::first_attr(&digest_db::Schema::single("a")),
                    Precision::new(16.0, 4.0, 0.9).unwrap(),
                ),
                EngineConfig {
                    scheduler: SchedulerKind::Pred(3),
                    estimator: EstimatorKind::Repeated,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        const TICKS: u64 = 200;
        let dense = {
            let mut w = FrozenWorkload::new();
            let mut engine = make_engine();
            let mut rng = ChaCha8Rng::seed_from_u64(22);
            run(
                &mut w,
                &mut engine,
                RunConfig::for_ticks(TICKS),
                16.0,
                4.0,
                &mut rng,
            )
            .unwrap()
        };
        let evented = {
            let mut w = FrozenWorkload::new();
            let mut engine = make_engine();
            let mut rng = ChaCha8Rng::seed_from_u64(22);
            run_events(
                &mut w,
                &mut engine,
                RunConfig::for_ticks(TICKS),
                16.0,
                4.0,
                &mut rng,
                &mut NoopObserver,
            )
            .unwrap()
        };
        assert_eq!(dense.records.len() as u64, TICKS);
        assert!(
            (evented.records.len() as u64) < TICKS / 2,
            "PRED on a frozen signal must skip most ticks; executed {}",
            evented.records.len()
        );
        // Every executed tick matches the dense run's record exactly.
        let dense_by_tick: BTreeMap<u64, &TraceRecord> =
            dense.records.iter().map(|r| (r.tick, r)).collect();
        for r in &evented.records {
            let d = dense_by_tick[&r.tick];
            assert_eq!(r.estimate.to_bits(), d.estimate.to_bits());
            assert_eq!(r.samples, d.samples);
            assert_eq!(r.messages, d.messages);
            assert_eq!(r.snapshot, d.snapshot);
            assert!(r.snapshot, "only occasion ticks should execute");
        }
        // And the skipped ticks were pure idle holds in the dense run.
        for r in &dense.records {
            if !evented.records.iter().any(|e| e.tick == r.tick) {
                assert!(!r.snapshot);
                assert_eq!(r.messages, 0);
            }
        }
    }

    /// Same equivalence on a churning workload (origin re-election
    /// consumes randomness mid-run — both drivers must do it at the
    /// same stream positions).
    #[test]
    fn event_driven_run_matches_dense_under_churn() {
        let make_workload = || {
            MemoryWorkload::new(MemoryConfig {
                leave_prob: 0.05,
                join_rate: 2.0,
                ..MemoryConfig::reduced(80, 40, 2_000)
            })
        };
        let make_engine = |w: &MemoryWorkload| {
            DigestEngine::new(
                ContinuousQuery::avg(
                    Expr::first_attr(w.db().schema()),
                    Precision::new(10.0, 3.0, 0.95).unwrap(),
                ),
                EngineConfig {
                    scheduler: SchedulerKind::All,
                    estimator: EstimatorKind::Repeated,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let dense = {
            let mut w = make_workload();
            let mut engine = make_engine(&w);
            let mut rng = ChaCha8Rng::seed_from_u64(13);
            run(
                &mut w,
                &mut engine,
                RunConfig::for_ticks(50),
                10.0,
                3.0,
                &mut rng,
            )
            .unwrap()
        };
        let evented = {
            let mut w = make_workload();
            let mut engine = make_engine(&w);
            let mut rng = ChaCha8Rng::seed_from_u64(13);
            run_events(
                &mut w,
                &mut engine,
                RunConfig::for_ticks(50),
                10.0,
                3.0,
                &mut rng,
                &mut NoopObserver,
            )
            .unwrap()
        };
        assert_eq!(dense.records.len(), evented.records.len());
        for (a, b) in dense.records.iter().zip(evented.records.iter()) {
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
            assert_eq!(a.exact.to_bits(), b.exact.to_bits());
            assert_eq!(a.messages, b.messages);
        }
    }

    #[test]
    fn pred_uses_fewer_snapshots_than_all() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mk = || temp_workload();
        let run_with = |scheduler, rng: &mut ChaCha8Rng| {
            let mut w = mk();
            let q = avg_query(&w, 16.0, 2.0); // generous δ = 2σ
            let mut engine = DigestEngine::new(
                q,
                EngineConfig {
                    scheduler,
                    estimator: EstimatorKind::Repeated,
                    ..Default::default()
                },
            )
            .unwrap();
            run(
                &mut w,
                &mut engine,
                RunConfig::for_ticks(60),
                16.0,
                2.0,
                rng,
            )
            .unwrap()
            .total_snapshots()
        };
        let all = run_with(SchedulerKind::All, &mut rng);
        let pred = run_with(SchedulerKind::Pred(3), &mut rng);
        assert_eq!(all, 60);
        assert!(
            pred < all / 2,
            "PRED3 {pred} should be well under ALL {all}"
        );
    }
}
