//! Driving one query system over one workload.

use crate::trace::{RunReport, TraceRecord};
use digest_core::{
    CoreError, MuxObserver, NoopObserver, QueryMux, QuerySystem, Result, TickContext, TickObserver,
};
use digest_net::NodeId;
use digest_telemetry::{registry as telemetry, Field, Stage};
use digest_workload::Workload;
use rand::RngCore;
use std::collections::BTreeMap;

/// Run parameters.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Ticks to simulate (capped by the workload's duration when
    /// `respect_duration` is set).
    pub ticks: u64,
    /// Stop at the workload's own duration even if `ticks` is larger.
    pub respect_duration: bool,
    /// Worker threads for sampling-walk batches (`None` keeps the
    /// system's own setting). Results are byte-identical for every
    /// value; only wall-clock time changes.
    pub sampling_workers: Option<usize>,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            ticks: u64::MAX,
            respect_duration: true,
            sampling_workers: None,
        }
    }
}

impl RunConfig {
    /// Run for exactly `ticks` ticks (still capped by workload duration).
    #[must_use]
    pub fn for_ticks(ticks: u64) -> Self {
        Self {
            ticks,
            respect_duration: true,
            sampling_workers: None,
        }
    }
}

/// Runs `system` against `workload`, recording a per-tick trace.
///
/// The querying node is picked as the workload's first live node and
/// re-elected if churn removes it (the paper issues queries from random
/// nodes; any live node is equivalent for counting purposes).
///
/// Per tick, the order is: advance the workload (apply this tick's
/// updates/churn), let the system react, then record the oracle truth
/// next to the system's estimate.
///
/// # Errors
///
/// * [`CoreError::EmptyWorkload`] if the workload's graph has no live
///   nodes (at start, or after churn drained it mid-run).
/// * Propagates any engine error.
pub fn run<W: Workload, S: QuerySystem + ?Sized>(
    workload: &mut W,
    system: &mut S,
    config: RunConfig,
    delta: f64,
    epsilon: f64,
    rng: &mut dyn RngCore,
) -> Result<RunReport> {
    run_observed(
        workload,
        system,
        config,
        delta,
        epsilon,
        rng,
        &mut NoopObserver,
    )
}

/// [`run`] with a [`TickObserver`] attached: the observer sees every tick
/// (after the system reacted, with the oracle truth) without perturbing
/// the run — it consumes no randomness and the trace/report are
/// byte-identical to an unobserved run.
///
/// # Errors
///
/// As for [`run`].
#[allow(clippy::too_many_arguments)]
pub fn run_observed<W: Workload, S: QuerySystem + ?Sized>(
    workload: &mut W,
    system: &mut S,
    config: RunConfig,
    delta: f64,
    epsilon: f64,
    rng: &mut dyn RngCore,
    observer: &mut dyn TickObserver,
) -> Result<RunReport> {
    if let Some(workers) = config.sampling_workers {
        system.set_sampling_workers(workers);
    }

    let mut origin = workload
        .graph()
        .nodes()
        .next()
        .ok_or(CoreError::EmptyWorkload)?;

    let horizon = if config.respect_duration {
        config.ticks.min(workload.duration())
    } else {
        config.ticks
    };

    // Capacity is only a hint; a clamped value is fine on 32-bit targets.
    let mut records = Vec::with_capacity(usize::try_from(horizon).unwrap_or(0));
    for tick in 0..horizon {
        digest_telemetry::set_tick(tick);
        telemetry::SIM_TICKS.inc();
        {
            let _span = digest_telemetry::span(Stage::WorkloadAdvance);
            workload.advance(rng);
        }

        // Re-elect the querying node if churn removed it.
        if !workload.graph().contains(origin) {
            origin = elect_origin(workload, rng)?;
        }

        let (outcome, exact) = {
            let ctx = TickContext {
                tick,
                graph: workload.graph(),
                db: workload.db(),
                origin,
            };
            let outcome = system.on_tick(&ctx, rng)?;
            // Ground truth for the *system's* query when it can provide
            // one (COUNT/SUM/MEDIAN/WHERE); plain-AVG oracle otherwise.
            let exact = system
                .oracle_truth(&ctx)
                .unwrap_or_else(|| workload.exact_aggregate());
            // Stamp this tick's remaining events (and the observer's
            // audit events) with the occasion that produced the current
            // estimate.
            digest_telemetry::set_trace(system.trace_id());
            observer.observe(&ctx, &outcome, exact);
            (outcome, exact)
        };

        if digest_telemetry::events_enabled() {
            digest_telemetry::emit(
                "tick",
                &[
                    ("estimate", Field::F64(outcome.estimate)),
                    ("exact", Field::F64(exact)),
                    ("snapshot", Field::Bool(outcome.snapshot_executed)),
                    ("samples", Field::U64(outcome.samples_this_tick)),
                    ("fresh", Field::U64(outcome.fresh_samples_this_tick)),
                    ("messages", Field::U64(outcome.messages_this_tick)),
                    ("updated", Field::U64(u64::from(outcome.updated))),
                ],
            );
        }

        records.push(TraceRecord {
            tick,
            exact,
            estimate: outcome.estimate,
            updated: outcome.updated,
            snapshot: outcome.snapshot_executed,
            samples: outcome.samples_this_tick,
            fresh_samples: outcome.fresh_samples_this_tick,
            messages: outcome.messages_this_tick,
        });
    }

    Ok(RunReport {
        system: system.name().to_owned(),
        workload: workload.name().to_owned(),
        records,
        delta,
        epsilon,
    })
}

/// Runs a [`QueryMux`] against `workload`, recording one per-tick trace
/// *per member query* (ascending query id). Mirrors [`run_observed`], but
/// each member gets its own oracle truth (its query's exact aggregate),
/// its own `tick` event (disambiguated by a `query` field), and its own
/// observer callback — with the coalesced round's trace id attached when
/// the member's occasion was served from a shared sampling round.
///
/// The member set must stay fixed for the duration of the run (register
/// before calling; dynamic arrival/departure workloads drive the mux
/// directly).
///
/// # Errors
///
/// As for [`run`]; additionally [`CoreError::EmptyWorkload`] if the mux
/// has no registered queries.
pub fn run_mux<W: Workload>(
    workload: &mut W,
    mux: &mut QueryMux,
    config: RunConfig,
    rng: &mut dyn RngCore,
    observer: &mut dyn MuxObserver,
) -> Result<Vec<RunReport>> {
    if mux.is_empty() {
        return Err(CoreError::EmptyWorkload);
    }
    if let Some(workers) = config.sampling_workers {
        mux.set_sampling_workers(workers);
    }

    let mut origin = workload
        .graph()
        .nodes()
        .next()
        .ok_or(CoreError::EmptyWorkload)?;

    let horizon = if config.respect_duration {
        config.ticks.min(workload.duration())
    } else {
        config.ticks
    };

    let ids = mux.query_ids();
    let mut records: BTreeMap<u64, Vec<TraceRecord>> = ids
        .iter()
        .map(|&id| {
            (
                id,
                Vec::with_capacity(usize::try_from(horizon).unwrap_or(0)),
            )
        })
        .collect();

    for tick in 0..horizon {
        digest_telemetry::set_tick(tick);
        telemetry::SIM_TICKS.inc();
        {
            let _span = digest_telemetry::span(Stage::WorkloadAdvance);
            workload.advance(rng);
        }
        if !workload.graph().contains(origin) {
            origin = elect_origin(workload, rng)?;
        }

        let ctx = TickContext {
            tick,
            graph: workload.graph(),
            db: workload.db(),
            origin,
        };
        let outcomes = mux.on_tick_mux(&ctx, rng)?;
        for o in &outcomes {
            // Each member's ground truth is its own query's oracle.
            let exact = mux
                .query(o.query)
                .and_then(|q| q.oracle(ctx.db))
                .unwrap_or_else(|| workload.exact_aggregate());
            // Attribute the member's tick/audit events to the occasion
            // that produced its current estimate.
            digest_telemetry::set_trace(o.trace);
            observer.observe_query(o.query, &ctx, &o.outcome, exact, o.round);
            if digest_telemetry::events_enabled() {
                digest_telemetry::emit(
                    "tick",
                    &[
                        ("estimate", Field::F64(o.outcome.estimate)),
                        ("exact", Field::F64(exact)),
                        ("snapshot", Field::Bool(o.outcome.snapshot_executed)),
                        ("samples", Field::U64(o.outcome.samples_this_tick)),
                        ("fresh", Field::U64(o.outcome.fresh_samples_this_tick)),
                        ("messages", Field::U64(o.outcome.messages_this_tick)),
                        ("updated", Field::U64(u64::from(o.outcome.updated))),
                        ("query", Field::U64(o.query)),
                    ],
                );
            }
            if let Some(trace) = records.get_mut(&o.query) {
                trace.push(TraceRecord {
                    tick,
                    exact,
                    estimate: o.outcome.estimate,
                    updated: o.outcome.updated,
                    snapshot: o.outcome.snapshot_executed,
                    samples: o.outcome.samples_this_tick,
                    fresh_samples: o.outcome.fresh_samples_this_tick,
                    messages: o.outcome.messages_this_tick,
                });
            }
        }
    }

    let workload_name = workload.name().to_owned();
    Ok(ids
        .iter()
        .filter_map(|&id| {
            let query = mux.query(id)?;
            Some(RunReport {
                system: format!("{}[q{id}]", mux.name()),
                workload: workload_name.clone(),
                records: records.remove(&id).unwrap_or_default(),
                delta: query.precision.delta,
                epsilon: query.precision.epsilon,
            })
        })
        .collect())
}

fn elect_origin<W: Workload>(workload: &W, rng: &mut dyn RngCore) -> Result<NodeId> {
    workload
        .graph()
        .random_node(rng)
        .map_err(|_| CoreError::EmptyWorkload)
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use digest_core::{
        ContinuousQuery, DigestEngine, EngineConfig, EstimatorKind, Precision, SchedulerKind,
    };
    use digest_db::Expr;
    use digest_workload::{MemoryConfig, MemoryWorkload, TemperatureConfig, TemperatureWorkload};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn temp_workload() -> TemperatureWorkload {
        TemperatureWorkload::new(TemperatureConfig::reduced(400, 5, 8, 60))
    }

    fn avg_query(w: &impl Workload, delta: f64, epsilon: f64) -> ContinuousQuery {
        ContinuousQuery::avg(
            Expr::first_attr(w.db().schema()),
            Precision::new(delta, epsilon, 0.95).unwrap(),
        )
    }

    #[test]
    fn digest_run_produces_full_trace_and_respects_precision() {
        let mut w = temp_workload();
        let q = avg_query(&w, 8.0, 2.0);
        let mut engine = DigestEngine::new(
            q,
            EngineConfig {
                scheduler: SchedulerKind::Pred(3),
                estimator: EstimatorKind::Repeated,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let report = run(
            &mut w,
            &mut engine,
            RunConfig::for_ticks(60),
            8.0,
            2.0,
            &mut rng,
        )
        .unwrap();

        assert_eq!(report.ticks(), 60);
        assert_eq!(report.system, "PRED3+RPT");
        assert_eq!(report.workload, "TEMPERATURE");
        assert!(
            report.total_snapshots() >= 4,
            "bootstrap alone gives several"
        );
        assert!(report.total_snapshots() < 60, "PRED must skip some ticks");
        // Precision: ε-violations ≤ ~3× the nominal 5% (finite-sample
        // slack), and resolution violations rare.
        assert!(
            report.confidence_violation_rate() < 0.15,
            "ε-violations = {}",
            report.confidence_violation_rate()
        );
        assert!(
            report.resolution_violation_rate() < 0.10,
            "δ-violations = {}",
            report.resolution_violation_rate()
        );
    }

    #[test]
    fn run_caps_at_workload_duration() {
        let mut w = temp_workload(); // duration 60
        let q = avg_query(&w, 8.0, 2.0);
        let mut engine = DigestEngine::new(
            q,
            EngineConfig {
                scheduler: SchedulerKind::All,
                estimator: EstimatorKind::Independent,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let report = run(
            &mut w,
            &mut engine,
            RunConfig::default(),
            8.0,
            2.0,
            &mut rng,
        )
        .unwrap();
        assert_eq!(report.ticks(), 60);
    }

    #[test]
    fn run_survives_churn_taking_the_origin() {
        let mut w = MemoryWorkload::new(MemoryConfig {
            leave_prob: 0.05,
            join_rate: 2.0,
            ..MemoryConfig::reduced(80, 40, 2_000)
        });
        let q = avg_query(&w, 10.0, 3.0);
        let mut engine = DigestEngine::new(
            q,
            EngineConfig {
                scheduler: SchedulerKind::All,
                estimator: EstimatorKind::Repeated,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let report = run(
            &mut w,
            &mut engine,
            RunConfig::for_ticks(50),
            10.0,
            3.0,
            &mut rng,
        )
        .expect("run must survive origin churn");
        assert_eq!(report.ticks(), 50);
    }

    #[test]
    fn pred_uses_fewer_snapshots_than_all() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mk = || temp_workload();
        let run_with = |scheduler, rng: &mut ChaCha8Rng| {
            let mut w = mk();
            let q = avg_query(&w, 16.0, 2.0); // generous δ = 2σ
            let mut engine = DigestEngine::new(
                q,
                EngineConfig {
                    scheduler,
                    estimator: EstimatorKind::Repeated,
                    ..Default::default()
                },
            )
            .unwrap();
            run(
                &mut w,
                &mut engine,
                RunConfig::for_ticks(60),
                16.0,
                2.0,
                rng,
            )
            .unwrap()
            .total_snapshots()
        };
        let all = run_with(SchedulerKind::All, &mut rng);
        let pred = run_with(SchedulerKind::Pred(3), &mut rng);
        assert_eq!(all, 60);
        assert!(
            pred < all / 2,
            "PRED3 {pred} should be well under ALL {all}"
        );
    }
}
