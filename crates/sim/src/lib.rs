//! # digest-sim
//!
//! The discrete-time simulation harness (the stand-in for the paper's
//! multithreaded C++ simulator on two Sun Enterprise 250s — our metrics
//! are deterministic *counts*, so a single-process simulator reproduces
//! them exactly, minus the hardware noise).
//!
//! [`parallel::run_replications`] replays a scenario under many seeds on
//! worker threads for statistically reliable (error-barred) metrics;
//! [`runner::run`] drives one [`digest_core::QuerySystem`] against one
//! [`digest_workload::Workload`] for a span of ticks, collecting a
//! [`trace::RunReport`]: per-tick records of the exact aggregate (oracle)
//! versus the system's running estimate, plus totals of snapshots, samples
//! and messages, and the realised precision-violation rates that verify
//! the `(δ, ε, p)` guarantee.
//!
//! For million-node overlays, [`runner::run_events`] swaps the dense tick
//! loop for a calendar [`events::EventQueue`] (cost ∝ due ticks, not the
//! horizon), and [`flat::run_flat`] runs a sharded deterministic
//! simulation directly over the flat [`digest_net::NodeStore`] —
//! per-shard counter-split RNG streams, lock-free claim/publish, ordered
//! merge — so worker counts {1, k} produce byte-identical reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod events;
pub mod flat;
pub mod parallel;
pub mod runner;
mod sync;
pub mod trace;

pub use events::EventQueue;
pub use flat::{run_flat, FlatReport, FlatSimConfig};
pub use parallel::{run_replications, summarize, MetricSummary};
pub use runner::{run, run_events, run_mux, run_observed, RunConfig};
pub use trace::{RunReport, TraceRecord};
