//! Run traces and summary reports.

/// One tick of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// The tick.
    pub tick: u64,
    /// Oracle exact aggregate `X[t]`.
    pub exact: f64,
    /// The system's running estimate `X̂[t]` (held between snapshots).
    pub estimate: f64,
    /// Whether the system reported an update this tick.
    pub updated: bool,
    /// Whether a snapshot query executed this tick.
    pub snapshot: bool,
    /// Samples evaluated this tick (fresh + revisited).
    pub samples: u64,
    /// Fresh samples drawn through the sampling operator this tick.
    pub fresh_samples: u64,
    /// Messages spent this tick.
    pub messages: u64,
}

/// A full run of one system over one workload.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The system's name (`"PRED3+RPT"` …).
    pub system: String,
    /// The workload's name (`"TEMPERATURE"` …).
    pub workload: String,
    /// Per-tick records.
    pub records: Vec<TraceRecord>,
    /// The query's resolution `δ`.
    pub delta: f64,
    /// The query's confidence half-width `ε`.
    pub epsilon: f64,
}

impl RunReport {
    /// Ticks simulated.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.records.len() as u64
    }

    /// Total snapshot queries executed.
    #[must_use]
    pub fn total_snapshots(&self) -> u64 {
        self.records.iter().filter(|r| r.snapshot).count() as u64
    }

    /// Total samples (fresh + revisited).
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.records.iter().map(|r| r.samples).sum()
    }

    /// Total fresh samples.
    #[must_use]
    pub fn total_fresh_samples(&self) -> u64 {
        self.records.iter().map(|r| r.fresh_samples).sum()
    }

    /// Total messages.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.records.iter().map(|r| r.messages).sum()
    }

    /// Mean samples per executed snapshot (0 when no snapshot ran).
    #[must_use]
    pub fn samples_per_snapshot(&self) -> f64 {
        let snaps = self.total_snapshots();
        if snaps == 0 {
            0.0
        } else {
            self.total_samples() as f64 / snaps as f64
        }
    }

    /// Largest absolute estimate error at *snapshot* ticks.
    #[must_use]
    pub fn max_snapshot_error(&self) -> f64 {
        self.records
            .iter()
            .filter(|r| r.snapshot)
            .map(|r| (r.estimate - r.exact).abs())
            .fold(0.0, f64::max)
    }

    /// Fraction of snapshot ticks whose estimate missed the `±ε`
    /// confidence interval (should be ≲ 1 − p).
    #[must_use]
    pub fn confidence_violation_rate(&self) -> f64 {
        let snaps: Vec<_> = self.records.iter().filter(|r| r.snapshot).collect();
        if snaps.is_empty() {
            return 0.0;
        }
        let misses = snaps
            .iter()
            .filter(|r| (r.estimate - r.exact).abs() > self.epsilon)
            .count();
        misses as f64 / snaps.len() as f64
    }

    /// Fraction of *all* ticks where the held result had drifted more than
    /// `δ + ε` from the truth — a resolution violation: the scheduler
    /// failed to re-snapshot in time.
    #[must_use]
    pub fn resolution_violation_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let misses = self
            .records
            .iter()
            .filter(|r| (r.estimate - r.exact).abs() > self.delta + self.epsilon)
            .count();
        misses as f64 / self.records.len() as f64
    }

    /// Number of user-visible result updates.
    #[must_use]
    pub fn total_updates(&self) -> u64 {
        self.records.iter().filter(|r| r.updated).count() as u64
    }

    /// One formatted summary line (used by the experiment binaries).
    #[must_use]
    pub fn summary_row(&self) -> String {
        format!(
            "{:<14} {:<12} ticks={:<6} snaps={:<6} samples={:<8} fresh={:<8} msgs={:<10} viol(ε)={:.3} viol(δ)={:.3}",
            self.system,
            self.workload,
            self.ticks(),
            self.total_snapshots(),
            self.total_samples(),
            self.total_fresh_samples(),
            self.total_messages(),
            self.confidence_violation_rate(),
            self.resolution_violation_rate(),
        )
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    fn record(tick: u64, exact: f64, estimate: f64, snapshot: bool) -> TraceRecord {
        TraceRecord {
            tick,
            exact,
            estimate,
            updated: false,
            snapshot,
            samples: u64::from(snapshot) * 10,
            fresh_samples: u64::from(snapshot) * 6,
            messages: u64::from(snapshot) * 100,
        }
    }

    fn report(records: Vec<TraceRecord>) -> RunReport {
        RunReport {
            system: "TEST".into(),
            workload: "W".into(),
            records,
            delta: 2.0,
            epsilon: 1.0,
        }
    }

    #[test]
    fn totals() {
        let r = report(vec![
            record(0, 10.0, 10.1, true),
            record(1, 10.0, 10.1, false),
            record(2, 10.5, 10.4, true),
        ]);
        assert_eq!(r.ticks(), 3);
        assert_eq!(r.total_snapshots(), 2);
        assert_eq!(r.total_samples(), 20);
        assert_eq!(r.total_fresh_samples(), 12);
        assert_eq!(r.total_messages(), 200);
        assert_eq!(r.samples_per_snapshot(), 10.0);
    }

    #[test]
    fn violation_rates() {
        let r = report(vec![
            record(0, 10.0, 10.5, true),  // within ε
            record(1, 10.0, 12.0, true),  // ε-violation (2 > 1)
            record(2, 10.0, 14.0, false), // δ+ε violation (4 > 3)
        ]);
        assert!((r.confidence_violation_rate() - 0.5).abs() < 1e-12);
        assert!((r.resolution_violation_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.max_snapshot_error() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = report(vec![]);
        assert_eq!(r.confidence_violation_rate(), 0.0);
        assert_eq!(r.resolution_violation_rate(), 0.0);
        assert_eq!(r.samples_per_snapshot(), 0.0);
    }

    #[test]
    fn summary_row_contains_key_fields() {
        let r = report(vec![record(0, 1.0, 1.0, true)]);
        let row = r.summary_row();
        assert!(row.contains("TEST"));
        assert!(row.contains("snaps=1"));
    }
}
