//! Sync primitives for the parallel replication runner, swappable for
//! the vendored loom model checker under `RUSTFLAGS="--cfg loom"` (see
//! DESIGN.md §13).
//!
//! The runner's claim/publish/reassembly protocol
//! (`claim_replication` / `publish_report` in [`crate::parallel`]) is
//! written against these aliases, so the very functions the production
//! path runs are the ones the loom tests exhaustively interleave.

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
pub(crate) use std::sync::OnceLock;

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(loom)]
pub(crate) use loom::sync::OnceLock;
