//! Parallel replication of simulation runs.
//!
//! The paper averaged results over queries issued from random nodes "to
//! derive a statistically reliable estimation" (§VI-A); this module is
//! that device: it replays the same scenario under many seeds on worker
//! threads (the workloads and engines are deterministic per seed, so a
//! replication set is exactly reproducible) and summarises the
//! distribution of any per-run metric.
//!
//! The substrate is lock-free: workers claim replication seeds from an
//! atomic cursor (`claim_replication`) and publish reports into a
//! seed-indexed table of `OnceLock` cells (`publish_report`) — each
//! cell written by exactly one worker, drained in seed order after the
//! scope joins. The claim/publish protocol is model-checked against the
//! vendored loom stand-in under `RUSTFLAGS="--cfg loom"` (see the
//! crate's `sync` module and DESIGN.md §13).

use crate::runner::{run, RunConfig};
use crate::sync::{AtomicU64, OnceLock, Ordering};
use crate::trace::RunReport;
use digest_core::{QuerySystem, Result};
use digest_telemetry::{registry as telemetry, Field, Stage};
use digest_workload::Workload;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Summary of one metric across replications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSummary {
    /// Replications aggregated.
    pub replications: u64,
    /// Mean across replications.
    pub mean: f64,
    /// Sample standard deviation across replications.
    pub std: f64,
    /// Minimum observed.
    pub min: f64,
    /// Maximum observed.
    pub max: f64,
}

impl MetricSummary {
    /// Summarises a slice of per-replication values (zeros when empty).
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        let n = values.len();
        if n == 0 {
            return Self {
                replications: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        Self {
            replications: n as u64,
            mean,
            std: var.sqrt(),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Claims the next unprocessed replication seed from the batch cursor,
/// or `None` once all `0..replications` seeds are handed out. Lock-free
/// index stealing: each seed is given to exactly one caller because
/// `fetch_add` is atomic.
pub(crate) fn claim_replication(cursor: &AtomicU64, replications: u64) -> Option<u64> {
    // relaxed-ok: claim uniqueness needs only the atomicity of fetch_add;
    // reports are published through `OnceLock::set` and the scope join,
    // so no ordering rides on this counter.
    let seed = cursor.fetch_add(1, Ordering::Relaxed);
    (seed < replications).then_some(seed)
}

/// Publishes one replication's report into its reassembly cell. Returns
/// `false` when the cell was already filled — impossible while
/// [`claim_replication`] hands out each seed once (model-checked under
/// `--cfg loom`), and surfaced as a run error rather than a panic if the
/// protocol is ever broken.
pub(crate) fn publish_report<T>(cell: &OnceLock<T>, value: T) -> bool {
    cell.set(value).is_ok()
}

/// Runs `replications` independent simulations in parallel and returns the
/// reports in seed order (`0..replications`).
///
/// `make_workload(seed)` and `make_system(seed)` build a fresh world and a
/// fresh query system per replication; each replication drives its own
/// ChaCha RNG seeded with the replication index, so results are
/// reproducible regardless of thread scheduling.
///
/// # Errors
///
/// The first engine error from any replication (remaining replications
/// still complete).
pub fn run_replications<W, S, FW, FS>(
    replications: u64,
    make_workload: FW,
    make_system: FS,
    config: RunConfig,
    delta: f64,
    epsilon: f64,
) -> Result<Vec<RunReport>>
where
    W: Workload,
    S: QuerySystem,
    FW: Fn(u64) -> W + Sync,
    FS: Fn(u64) -> S + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    run_replications_with_workers(
        workers,
        replications,
        make_workload,
        make_system,
        config,
        delta,
        epsilon,
    )
}

/// [`run_replications`] with an explicit worker-thread count.
///
/// Results are identical for any `workers >= 1` — each replication is
/// seeded by its index, workers only steal indices, and reports are
/// re-assembled in seed order — which the test suite pins down.
///
/// # Errors
///
/// The first engine error from any replication (remaining replications
/// still complete).
#[allow(clippy::too_many_arguments)]
pub fn run_replications_with_workers<W, S, FW, FS>(
    workers: usize,
    replications: u64,
    make_workload: FW,
    make_system: FS,
    config: RunConfig,
    delta: f64,
    epsilon: f64,
) -> Result<Vec<RunReport>>
where
    W: Workload,
    S: QuerySystem,
    FW: Fn(u64) -> W + Sync,
    FS: Fn(u64) -> S + Sync,
{
    let workers = workers
        .max(1)
        .min(usize::try_from(replications.max(1)).unwrap_or(usize::MAX));

    let next = AtomicU64::new(0);
    let mut results: Vec<OnceLock<std::result::Result<RunReport, digest_core::CoreError>>> =
        (0..replications).map(|_| OnceLock::new()).collect();
    let table = &results;

    // `std::thread::scope` joins every worker before returning and re-raises
    // any worker panic, replacing the old crossbeam scope.
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                while let Some(seed) = claim_replication(&next, replications) {
                    let mut workload = make_workload(seed);
                    let mut system = make_system(seed);
                    let mut rng =
                        ChaCha8Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
                    // Workers would interleave per-tick events nondeterministically,
                    // so event emission is suppressed inside the replication; the
                    // deterministic rollups are emitted post-join in seed order.
                    let _quiet = digest_telemetry::suppress_events();
                    let _span = digest_telemetry::span(Stage::Replication);
                    let outcome = run(&mut workload, &mut system, config, delta, epsilon, &mut rng);
                    // `seed < replications`, whose range built the table, so
                    // the index is always in bounds (and fits usize for the
                    // same reason); the publish always succeeds because
                    // `claim_replication` hands each seed to one worker.
                    if let Some(cell) = usize::try_from(seed).ok().and_then(|i| table.get(i)) {
                        let _ = publish_report(cell, outcome);
                    }
                }
            });
        }
    });

    let mut reports = Vec::with_capacity(usize::try_from(replications).unwrap_or(0));
    for cell in results.iter_mut() {
        match cell.take() {
            Some(outcome) => reports.push(outcome?),
            // Unreachable by construction (the scope joins all workers and
            // every index below `replications` is claimed exactly once), but
            // surfaced as an error instead of a panic per the panic policy.
            None => {
                return Err(digest_core::CoreError::InvalidConfig {
                    reason: "replication worker exited without reporting a result",
                })
            }
        }
    }
    // Worker-side engines bump the global trace counter in a thread-
    // dependent order; their events were suppressed, but the *current*
    // trace register would leak a nondeterministic id into the post-join
    // rollups below. Clear it: replication summaries belong to no single
    // occasion.
    digest_telemetry::set_trace(0);
    for (seed, report) in reports.iter().enumerate() {
        telemetry::SIM_REPLICATIONS.inc();
        if digest_telemetry::events_enabled() {
            digest_telemetry::emit(
                "replication",
                &[
                    ("seed", Field::U64(seed as u64)),
                    ("ticks", Field::U64(report.ticks())),
                    ("snapshots", Field::U64(report.total_snapshots())),
                    ("samples", Field::U64(report.total_samples())),
                    ("messages", Field::U64(report.total_messages())),
                ],
            );
        }
    }
    Ok(reports)
}

/// Summarises a metric over a replication set.
#[must_use]
pub fn summarize<F: Fn(&RunReport) -> f64>(reports: &[RunReport], metric: F) -> MetricSummary {
    let values: Vec<f64> = reports.iter().map(metric).collect();
    MetricSummary::of(&values)
}

#[cfg(all(test, loom))]
#[allow(clippy::unwrap_used)]
mod loom_tests {
    use super::{claim_replication, publish_report};
    use crate::sync::{AtomicU64, OnceLock};
    use loom::sync::Arc;
    use loom::thread;

    /// Exhaustively interleaves two workers draining a three-replication
    /// run through the production `claim_replication` / `publish_report`
    /// protocol: under every schedule each seed is claimed exactly once,
    /// every publish lands in an empty cell, and the seed-order drain
    /// finds every report.
    #[test]
    fn loom_claim_publish_fills_every_seed_exactly_once() {
        loom::model(|| {
            const REPLICATIONS: u64 = 3;
            let cursor = Arc::new(AtomicU64::new(0));
            let table: Arc<Vec<OnceLock<u64>>> =
                Arc::new((0..REPLICATIONS).map(|_| OnceLock::new()).collect());

            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let cursor = Arc::clone(&cursor);
                    let table = Arc::clone(&table);
                    thread::spawn(move || {
                        while let Some(seed) = claim_replication(&cursor, REPLICATIONS) {
                            let cell = &table[usize::try_from(seed).unwrap()];
                            assert!(
                                publish_report(cell, seed * 7),
                                "seed {seed} was claimed twice"
                            );
                        }
                    })
                })
                .collect();
            for handle in handles {
                handle.join().unwrap();
            }

            let mut table = Arc::try_unwrap(table).ok().unwrap();
            for (seed, cell) in table.iter_mut().enumerate() {
                assert_eq!(cell.take(), Some(seed as u64 * 7), "seed {seed} missing");
            }
        });
    }
}

#[cfg(all(test, not(loom)))]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use digest_core::{
        ContinuousQuery, DigestEngine, EngineConfig, EstimatorKind, Precision, SchedulerKind,
    };
    use digest_db::Expr;
    use digest_workload::{TemperatureConfig, TemperatureWorkload};

    fn make_workload(seed: u64) -> TemperatureWorkload {
        TemperatureWorkload::new(TemperatureConfig {
            seed,
            ..TemperatureConfig::reduced(300, 5, 6, 40)
        })
    }

    fn make_system(_seed: u64) -> DigestEngine {
        let w = make_workload(0);
        let query = ContinuousQuery::avg(
            Expr::first_attr(w.db().schema()),
            Precision::new(8.0, 2.0, 0.95).unwrap(),
        );
        DigestEngine::new(
            query,
            EngineConfig {
                scheduler: SchedulerKind::Pred(2),
                estimator: EstimatorKind::Repeated,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn replications_complete_and_are_seed_deterministic() {
        let run_set = || {
            run_replications(
                6,
                make_workload,
                make_system,
                RunConfig::for_ticks(40),
                8.0,
                2.0,
            )
            .unwrap()
        };
        let a = run_set();
        let b = run_set();
        assert_eq!(a.len(), 6);
        for (ra, rb) in a.iter().zip(b.iter()) {
            assert_eq!(ra.total_samples(), rb.total_samples());
            assert_eq!(ra.total_messages(), rb.total_messages());
        }
        // Different seeds actually differ.
        let samples: std::collections::HashSet<u64> =
            a.iter().map(RunReport::total_samples).collect();
        assert!(samples.len() > 1, "replications should vary across seeds");
    }

    #[test]
    fn summaries_are_sane() {
        let reports = run_replications(
            4,
            make_workload,
            make_system,
            RunConfig::for_ticks(30),
            8.0,
            2.0,
        )
        .unwrap();
        let s = summarize(&reports, |r| r.total_samples() as f64);
        assert_eq!(s.replications, 4);
        assert!(s.min <= s.mean && s.mean <= s.max);
        assert!(s.std >= 0.0);
    }

    #[test]
    fn metric_summary_edge_cases() {
        let empty = MetricSummary::of(&[]);
        assert_eq!(empty.replications, 0);
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.std, 0.0);
        let single = MetricSummary::of(&[3.5]);
        assert_eq!(single.mean, 3.5);
        assert_eq!(single.std, 0.0);
        assert_eq!(single.min, 3.5);
        assert_eq!(single.max, 3.5);
    }

    #[test]
    fn metric_summary_of_constant_slice_has_zero_std() {
        let s = MetricSummary::of(&[7.0, 7.0, 7.0, 7.0]);
        assert_eq!(s.replications, 4);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std, 0.0, "constant values must have zero spread");
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn results_do_not_depend_on_worker_count() {
        let run_with = |workers: usize| {
            run_replications_with_workers(
                workers,
                5,
                make_workload,
                make_system,
                RunConfig::for_ticks(30),
                8.0,
                2.0,
            )
            .unwrap()
        };
        let serial = run_with(1);
        for workers in [2, 4, 16] {
            let parallel = run_with(workers);
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(parallel.iter()) {
                assert_eq!(a.total_samples(), b.total_samples(), "{workers} workers");
                assert_eq!(a.total_messages(), b.total_messages(), "{workers} workers");
                assert_eq!(
                    a.total_snapshots(),
                    b.total_snapshots(),
                    "{workers} workers"
                );
                for (ra, rb) in a.records.iter().zip(b.records.iter()) {
                    assert_eq!(ra.estimate.to_bits(), rb.estimate.to_bits());
                }
            }
        }
    }
}
