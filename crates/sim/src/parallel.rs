//! Parallel replication of simulation runs.
//!
//! The paper averaged results over queries issued from random nodes "to
//! derive a statistically reliable estimation" (§VI-A); this module is
//! that device: it replays the same scenario under many seeds on worker
//! threads (the workloads and engines are deterministic per seed, so a
//! replication set is exactly reproducible) and summarises the
//! distribution of any per-run metric.

use crate::runner::{run, RunConfig};
use crate::trace::RunReport;
use digest_core::{QuerySystem, Result};
use digest_workload::Workload;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Summary of one metric across replications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSummary {
    /// Replications aggregated.
    pub replications: u64,
    /// Mean across replications.
    pub mean: f64,
    /// Sample standard deviation across replications.
    pub std: f64,
    /// Minimum observed.
    pub min: f64,
    /// Maximum observed.
    pub max: f64,
}

impl MetricSummary {
    /// Summarises a slice of per-replication values (zeros when empty).
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        let n = values.len();
        if n == 0 {
            return Self {
                replications: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        Self {
            replications: n as u64,
            mean,
            std: var.sqrt(),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Runs `replications` independent simulations in parallel and returns the
/// reports in seed order (`0..replications`).
///
/// `make_workload(seed)` and `make_system(seed)` build a fresh world and a
/// fresh query system per replication; each replication drives its own
/// ChaCha RNG seeded with the replication index, so results are
/// reproducible regardless of thread scheduling.
///
/// # Errors
///
/// The first engine error from any replication (remaining replications
/// still complete).
pub fn run_replications<W, S, FW, FS>(
    replications: u64,
    make_workload: FW,
    make_system: FS,
    config: RunConfig,
    delta: f64,
    epsilon: f64,
) -> Result<Vec<RunReport>>
where
    W: Workload,
    S: QuerySystem,
    FW: Fn(u64) -> W + Sync,
    FS: Fn(u64) -> S + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(replications.max(1) as usize);

    let next = AtomicU64::new(0);
    let results: Mutex<Vec<Option<std::result::Result<RunReport, digest_core::CoreError>>>> =
        Mutex::new((0..replications).map(|_| None).collect());

    // `std::thread::scope` joins every worker before returning and re-raises
    // any worker panic, replacing the old crossbeam scope.
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let seed = next.fetch_add(1, Ordering::Relaxed);
                if seed >= replications {
                    return;
                }
                let mut workload = make_workload(seed);
                let mut system = make_system(seed);
                let mut rng =
                    ChaCha8Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
                let outcome = run(&mut workload, &mut system, config, delta, epsilon, &mut rng);
                let mut slots = results
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                slots[seed as usize] = Some(outcome);
            });
        }
    });

    let slots = results
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut reports = Vec::with_capacity(replications as usize);
    for slot in slots {
        match slot {
            Some(outcome) => reports.push(outcome?),
            // Unreachable by construction (the scope joins all workers and
            // every index below `replications` is claimed exactly once), but
            // surfaced as an error instead of a panic per the panic policy.
            None => {
                return Err(digest_core::CoreError::InvalidConfig {
                    reason: "replication worker exited without reporting a result",
                })
            }
        }
    }
    Ok(reports)
}

/// Summarises a metric over a replication set.
#[must_use]
pub fn summarize<F: Fn(&RunReport) -> f64>(reports: &[RunReport], metric: F) -> MetricSummary {
    let values: Vec<f64> = reports.iter().map(metric).collect();
    MetricSummary::of(&values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use digest_core::{
        ContinuousQuery, DigestEngine, EngineConfig, EstimatorKind, Precision, SchedulerKind,
    };
    use digest_db::Expr;
    use digest_workload::{TemperatureConfig, TemperatureWorkload};

    fn make_workload(seed: u64) -> TemperatureWorkload {
        TemperatureWorkload::new(TemperatureConfig {
            seed,
            ..TemperatureConfig::reduced(300, 5, 6, 40)
        })
    }

    fn make_system(_seed: u64) -> DigestEngine {
        let w = make_workload(0);
        let query = ContinuousQuery::avg(
            Expr::first_attr(w.db().schema()),
            Precision::new(8.0, 2.0, 0.95).unwrap(),
        );
        DigestEngine::new(
            query,
            EngineConfig {
                scheduler: SchedulerKind::Pred(2),
                estimator: EstimatorKind::Repeated,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn replications_complete_and_are_seed_deterministic() {
        let run_set = || {
            run_replications(
                6,
                make_workload,
                make_system,
                RunConfig::for_ticks(40),
                8.0,
                2.0,
            )
            .unwrap()
        };
        let a = run_set();
        let b = run_set();
        assert_eq!(a.len(), 6);
        for (ra, rb) in a.iter().zip(b.iter()) {
            assert_eq!(ra.total_samples(), rb.total_samples());
            assert_eq!(ra.total_messages(), rb.total_messages());
        }
        // Different seeds actually differ.
        let samples: std::collections::HashSet<u64> =
            a.iter().map(RunReport::total_samples).collect();
        assert!(samples.len() > 1, "replications should vary across seeds");
    }

    #[test]
    fn summaries_are_sane() {
        let reports = run_replications(
            4,
            make_workload,
            make_system,
            RunConfig::for_ticks(30),
            8.0,
            2.0,
        )
        .unwrap();
        let s = summarize(&reports, |r| r.total_samples() as f64);
        assert_eq!(s.replications, 4);
        assert!(s.min <= s.mean && s.mean <= s.max);
        assert!(s.std >= 0.0);
    }

    #[test]
    fn metric_summary_edge_cases() {
        let empty = MetricSummary::of(&[]);
        assert_eq!(empty.replications, 0);
        let single = MetricSummary::of(&[3.5]);
        assert_eq!(single.mean, 3.5);
        assert_eq!(single.std, 0.0);
        assert_eq!(single.min, 3.5);
        assert_eq!(single.max, 3.5);
    }
}
